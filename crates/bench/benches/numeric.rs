//! Microbenchmarks for the exact-arithmetic substrate: the model counter's
//! hot operations (big-integer multiply/divide, binomial rows, rational
//! normalization).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pscds_numeric::{binomial::binomial_ubig, BinomialTable, Rational, UBig};

fn bench_ubig_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ubig");
    for bits in [64u32, 512, 4096] {
        let a = UBig::one().shl(bits).add(&UBig::from(987_654_321u64));
        let b = UBig::one().shl(bits / 2).add(&UBig::from(123_456_789u64));
        group.bench_with_input(BenchmarkId::new("mul", bits), &bits, |bench, _| {
            bench.iter(|| black_box(&a).mul(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("divrem", bits), &bits, |bench, _| {
            bench.iter(|| black_box(&a).divrem(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("add", bits), &bits, |bench, _| {
            bench.iter(|| black_box(&a).add(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("to_string", bits), &bits, |bench, _| {
            bench.iter(|| black_box(&a).to_string());
        });
    }
    group.finish();
}

fn bench_binomials(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial");
    for n in [64u64, 512, 2048] {
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |bench, &n| {
            bench.iter(|| binomial_ubig(black_box(n), black_box(n / 2)));
        });
        group.bench_with_input(BenchmarkId::new("full_row", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut t = BinomialTable::new();
                black_box(t.row(black_box(n)).len())
            });
        });
    }
    group.finish();
}

fn bench_rational(c: &mut Criterion) {
    let mut group = c.benchmark_group("rational");
    // Rationals of the size confidence computations produce at large m.
    let num = UBig::one().shl(2000).add(&UBig::from(17u64));
    let den = UBig::one().shl(2001).add(&UBig::from(5u64));
    group.bench_function("new_reduced_2000bit", |bench| {
        bench.iter(|| Rational::new(black_box(num.clone()), black_box(den.clone())));
    });
    let a = Rational::from_u64(6, 7);
    let b = Rational::from_u64(123, 1024);
    group.bench_function("prob_or_small", |bench| {
        bench.iter(|| black_box(&a).prob_or(black_box(&b)));
    });
    group.finish();
}

/// Quick profile: the suite has many benchmarks; keep each one short.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ubig_ops, bench_binomials, bench_rational
}
criterion_main!(benches);
