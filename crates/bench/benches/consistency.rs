//! Benchmarks for the CONSISTENCY deciders (experiment E2's timing side):
//! the identity-view signature solver vs the exhaustive possible-world
//! search, on planted (consistent) and adversarial random instances.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pscds_core::consistency::{decide_identity, find_witness_bounded};
use pscds_datagen::random_sources::{generate, RandomIdentityConfig};
use pscds_reductions::{hs_star_to_consistency, hs_to_hs_star, HittingSetInstance};
use std::collections::BTreeSet;

fn bench_identity_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_identity");
    for n_sources in [2usize, 4, 8] {
        let cfg = RandomIdentityConfig {
            n_sources,
            domain_size: 16,
            extension_density: 0.4,
            planted: true,
            world_density: 0.5,
            bound_denominator: 4,
            seed: 7,
        };
        let scenario = generate(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let padding = scenario.domain.len() as u64 - identity.all_tuples().len() as u64;
        group.bench_with_input(
            BenchmarkId::new("planted", n_sources),
            &n_sources,
            |bench, _| {
                bench.iter(|| decide_identity(black_box(&identity), padding).is_consistent());
            },
        );
        let cfg_adv = RandomIdentityConfig {
            planted: false,
            ..cfg
        };
        let scenario = generate(&cfg_adv).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        group.bench_with_input(
            BenchmarkId::new("adversarial", n_sources),
            &n_sources,
            |bench, _| {
                bench.iter(|| decide_identity(black_box(&identity), padding).is_consistent());
            },
        );
    }
    group.finish();
}

fn bench_exhaustive_vs_identity(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency_engines");
    for domain in [6usize, 8, 10] {
        let cfg = RandomIdentityConfig {
            n_sources: 3,
            domain_size: domain,
            extension_density: 0.4,
            planted: true,
            world_density: 0.5,
            bound_denominator: 4,
            seed: 5,
        };
        let scenario = generate(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let padding = scenario.domain.len() as u64 - identity.all_tuples().len() as u64;
        group.bench_with_input(
            BenchmarkId::new("signature", domain),
            &domain,
            |bench, _| {
                bench.iter(|| decide_identity(black_box(&identity), padding).is_consistent());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive_bounded", domain),
            &domain,
            |bench, _| {
                bench.iter(|| {
                    find_witness_bounded(black_box(&scenario.collection), &scenario.domain, None)
                        .expect("evaluates")
                        .is_some()
                });
            },
        );
    }
    group.finish();
}

fn bench_reduced_hs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduced_hs_consistency");
    for universe in [8u32, 16, 24] {
        // Deterministic moderately-hard instance: sliding-window sets.
        let sets: Vec<BTreeSet<u32>> = (0..universe)
            .map(|i| (0..3).map(|d| (i + d * 2) % universe).collect())
            .collect();
        let hs = HittingSetInstance::new(sets, (universe / 3) as usize);
        let (star, _) = hs_to_hs_star(&hs);
        let collection = hs_star_to_consistency(&star).expect("valid");
        let identity = collection.as_identity().expect("identity");
        group.bench_with_input(
            BenchmarkId::from_parameter(universe),
            &universe,
            |bench, _| {
                bench.iter(|| decide_identity(black_box(&identity), 0).is_consistent());
            },
        );
    }
    group.finish();
}

/// Quick profile: the suite has many benchmarks; keep each one short.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_identity_solver, bench_exhaustive_vs_identity, bench_reduced_hs
}
criterion_main!(benches);
