//! Benchmarks for the confidence engines (experiments E1/E5 timing side):
//! signature counter vs explicit-Γ brute force vs world oracle on
//! Example 5.1, and the compositional `conf_Q` evaluator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pscds_core::answers::conf_q::{conf_q, WorldsBaseTables};
use pscds_core::confidence::{ConfidenceAnalysis, LinearSystem, PossibleWorlds};
use pscds_core::paper::{example_5_1, example_5_1_domain};
use pscds_relational::algebra::RaExpr;

fn bench_engines_small_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("example51_engines");
    let collection = example_5_1();
    let identity = collection.as_identity().expect("identity");
    for m in [4usize, 6, 8] {
        let domain = example_5_1_domain(m);
        group.bench_with_input(BenchmarkId::new("world_oracle", m), &m, |bench, _| {
            bench.iter(|| {
                PossibleWorlds::enumerate(black_box(&collection), &domain)
                    .expect("small")
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("gamma_brute", m), &m, |bench, _| {
            let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid");
            bench.iter(|| gamma.count_solutions().expect("within cap"));
        });
        group.bench_with_input(BenchmarkId::new("signature", m), &m, |bench, &m| {
            bench.iter(|| {
                ConfidenceAnalysis::analyze(black_box(&identity), m as u64)
                    .world_count()
                    .clone()
            });
        });
    }
    group.finish();
}

fn bench_signature_large_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_large_m");
    let identity = example_5_1().as_identity().expect("identity");
    for m in [1_000u64, 100_000, 10_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, &m| {
            bench.iter(|| {
                ConfidenceAnalysis::analyze(black_box(&identity), m)
                    .world_count()
                    .clone()
            });
        });
    }
    group.finish();
}

fn bench_conf_q(c: &mut Criterion) {
    let mut group = c.benchmark_group("conf_q");
    let collection = example_5_1();
    let domain = example_5_1_domain(6);
    let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small");
    let base = WorldsBaseTables::new(&worlds);
    let queries = [
        ("base", RaExpr::rel("R")),
        ("project", RaExpr::rel("R").project([])),
        ("product", RaExpr::rel("R").product(RaExpr::rel("R"))),
        (
            "pi_over_product",
            RaExpr::rel("R").product(RaExpr::rel("R")).project([0]),
        ),
    ];
    for (name, q) in &queries {
        group.bench_function(*name, |bench| {
            bench.iter(|| conf_q(black_box(q), &base).expect("consistent"));
        });
    }
    group.finish();
}

/// Quick profile: the suite has many benchmarks; keep each one short.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_engines_small_m, bench_signature_large_m, bench_conf_q
}
criterion_main!(benches);
