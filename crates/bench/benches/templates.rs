//! Benchmarks for the Section 4 template machinery (experiment E4 timing
//! side): building `T^U`/`C^U`, `rep` membership checks, and the full
//! Theorem 4.1 verification.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pscds_core::paper::{example_5_1, example_5_1_domain};
use pscds_core::templates::{subset_combinations, template_for, templates_for, verify_theorem_4_1};
use pscds_relational::Database;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("template_construction");
    let collection = example_5_1();
    group.bench_function("subset_combinations", |bench| {
        bench.iter(|| {
            subset_combinations(black_box(&collection))
                .expect("within cap")
                .len()
        });
    });
    let combos = subset_combinations(&collection).expect("within cap");
    group.bench_function("template_for_one_combo", |bench| {
        bench.iter(|| template_for(black_box(&collection), &combos[0]).expect("constructs"));
    });
    group.bench_function("templates_for_all", |bench| {
        bench.iter(|| {
            templates_for(black_box(&collection))
                .expect("constructs")
                .len()
        });
    });
    group.finish();
}

fn bench_rep_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("rep_membership");
    let collection = example_5_1();
    let templates = templates_for(&collection).expect("constructs");
    let template = &templates[0];
    let member = Database::from_facts(
        pscds_relational::parser::parse_facts("R(a). R(b). R(c)").expect("parses"),
    );
    let non_member = Database::new();
    group.bench_function("member", |bench| {
        bench.iter(|| template.rep_contains(black_box(&member)).expect("checks"));
    });
    group.bench_function("non_member", |bench| {
        bench.iter(|| {
            template
                .rep_contains(black_box(&non_member))
                .expect("checks")
        });
    });
    group.finish();
}

fn bench_theorem_41(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_theorem_4_1");
    group.sample_size(10);
    let collection = example_5_1();
    for m in [0usize, 1] {
        let domain = example_5_1_domain(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| {
                let report = verify_theorem_4_1(black_box(&collection), &domain).expect("small");
                assert!(report.holds);
            });
        });
    }
    group.finish();
}

/// Quick profile: the suite has many benchmarks; keep each one short.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_construction, bench_rep_membership, bench_theorem_41
}
criterion_main!(benches);
