//! Property test for the trace toolchain: any observability report —
//! random span trees over the registered names, counters, histograms,
//! exemplars, and events, including attribute values that need JSON
//! escaping — must survive `render_record` → `parse_trace` with its
//! deterministic digest intact. The renderer lives in `pscds-obs`
//! (`sink.rs`) and the parser in `pscds_bench::trace`; this test pins
//! the two to the same schema.

use proptest::prelude::*;
use pscds_bench::trace::{diff_reports, parse_trace};
use pscds_core::obs::{names, Event, MetricSet, ObsReport, Record, Span, TRACE_VERSION};

/// Uniform choice out of a registry name list (the vendored proptest
/// has no `sample` module, so index-and-map).
fn pick(list: &'static [&'static str]) -> impl Strategy<Value = &'static str> {
    (0..list.len()).prop_map(move |i| list[i])
}

/// Strategy: an attribute value, biased toward characters the JSONL
/// escaper must handle (quotes, backslashes, newlines, control chars).
fn attr_values() -> impl Strategy<Value = String> {
    prop_oneof!["[a-z0-9_.]{0,12}", "[\"\\\\\n\r\t\u{1}a-z]{0,8}",]
}

const ATTR_KEYS: [&str; 4] = ["engine", "chunk", "mask", "phase"];

fn attrs() -> impl Strategy<Value = Vec<(&'static str, String)>> {
    proptest::collection::vec((pick(&ATTR_KEYS), attr_values()), 0..3)
}

/// Strategy: one leaf span (no children).
fn leaves() -> impl Strategy<Value = Span> {
    (
        pick(&names::SPANS),
        0u64..1_000,
        0u64..1_000,
        0u64..10_000,
        attrs(),
    )
        .prop_map(|(name, start, len, steps, attrs)| {
            let mut span = Span::new(name, start, start + len);
            span.self_steps = steps;
            span.attrs = attrs;
            span
        })
}

/// Strategy: one span with up to two levels of children (the vendored
/// proptest has no `prop_recursive`, so the nesting is spelled out).
fn spans() -> impl Strategy<Value = Span> {
    let mid =
        (leaves(), proptest::collection::vec(leaves(), 0..3)).prop_map(|(mut span, children)| {
            span.children = children;
            span
        });
    (leaves(), proptest::collection::vec(mid, 0..3)).prop_map(|(mut span, children)| {
        span.children = children;
        span
    })
}

fn metric_sets() -> impl Strategy<Value = MetricSet> {
    (
        proptest::collection::vec((pick(&names::COUNTERS), 1u64..u64::MAX / 2), 0..6),
        proptest::collection::vec((pick(&names::GAUGES), 0u64..1_000), 0..2),
        proptest::collection::vec(
            (
                pick(&names::HISTOGRAMS),
                proptest::collection::vec(0u64..100_000, 1..8),
            ),
            0..4,
        ),
        proptest::collection::vec(
            (
                pick(&names::COUNTERS),
                proptest::collection::vec("[a-z0-9.\"\\\\]{1,10}", 1..5),
            ),
            0..3,
        ),
    )
        .prop_map(|(counters, gauges, hists, exemplars)| {
            let mut metrics = MetricSet::new();
            for (name, v) in counters {
                metrics.counter_add(name, v);
            }
            for (name, v) in gauges {
                metrics.gauge_max(name, v);
            }
            for (name, values) in hists {
                for v in values {
                    metrics.histogram_record(name, v);
                }
            }
            for (name, keys) in exemplars {
                for key in keys {
                    metrics.exemplar_offer(name, &key);
                }
            }
            metrics
        })
}

fn reports() -> impl Strategy<Value = ObsReport> {
    (
        proptest::collection::vec(spans(), 0..4),
        metric_sets(),
        proptest::collection::vec((pick(&names::EVENTS), 0u64..1_000, attrs()), 0..4),
    )
        .prop_map(|(spans, metrics, events)| ObsReport {
            spans,
            metrics,
            events: events
                .into_iter()
                .map(|(name, at_ns, attrs)| Event { name, at_ns, attrs })
                .collect(),
        })
}

/// Renders a report exactly as `ObsSession::finish` streams it to a
/// `JsonlSink`: header first, then spans, events, counters, gauges,
/// histograms, exemplars.
fn render(report: &ObsReport) -> String {
    let mut lines = vec![pscds_core::obs::render_record(&Record::Header)];
    for span in &report.spans {
        lines.push(pscds_core::obs::render_record(&Record::Span(span)));
    }
    for event in &report.events {
        lines.push(pscds_core::obs::render_record(&Record::Event(event)));
    }
    for (name, value) in report.metrics.counters() {
        lines.push(pscds_core::obs::render_record(&Record::Counter {
            name,
            value,
        }));
    }
    for (name, value) in report.metrics.gauges() {
        lines.push(pscds_core::obs::render_record(&Record::Gauge {
            name,
            value,
        }));
    }
    for (name, hist) in report.metrics.histograms() {
        lines.push(pscds_core::obs::render_record(&Record::Histogram {
            name,
            hist,
        }));
    }
    for (name, keys) in report.metrics.exemplars() {
        lines.push(pscds_core::obs::render_record(&Record::Exemplar {
            name,
            keys,
        }));
    }
    lines.join("\n") + "\n"
}

fn span_digest(span: &Span) -> (String, u64, u64, u64, Vec<(String, String)>, usize) {
    (
        span.name.to_owned(),
        span.start_ns,
        span.end_ns,
        span.self_steps,
        span.attrs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
        span.children.len(),
    )
}

fn flatten<'a>(spans: &'a [Span], out: &mut Vec<&'a Span>) {
    for span in spans {
        out.push(span);
        flatten(&span.children, out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render → parse is the identity on the deterministic digest:
    /// span trees (names, clocks, attribution, attrs, shape), events,
    /// counters, gauges, histograms (bucket-exact), and exemplar keys.
    #[test]
    fn trace_render_parse_round_trip(report in reports()) {
        let text = render(&report);
        let parsed = parse_trace(&text)
            .map_err(|e| TestCaseError::fail(format!("round-trip parse failed: {e}")))?;

        let mut before = Vec::new();
        let mut after = Vec::new();
        flatten(&report.spans, &mut before);
        flatten(&parsed.spans, &mut after);
        prop_assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            prop_assert_eq!(span_digest(a), span_digest(b));
        }

        let events_before: Vec<_> = report
            .events
            .iter()
            .map(|e| (e.name, e.at_ns, e.attrs.clone()))
            .collect();
        let events_after: Vec<_> = parsed
            .events
            .iter()
            .map(|e| (e.name, e.at_ns, e.attrs.clone()))
            .collect();
        prop_assert_eq!(events_before, events_after);

        let counters_before: Vec<_> = report.metrics.counters().collect();
        let counters_after: Vec<_> = parsed.metrics.counters().collect();
        prop_assert_eq!(counters_before, counters_after);
        let gauges_before: Vec<_> = report.metrics.gauges().collect();
        let gauges_after: Vec<_> = parsed.metrics.gauges().collect();
        prop_assert_eq!(gauges_before, gauges_after);

        let hists_before: Vec<_> = report
            .metrics
            .histograms()
            .map(|(n, h)| (n, h.count(), h.sum(), h.buckets().collect::<Vec<_>>()))
            .collect();
        let hists_after: Vec<_> = parsed
            .metrics
            .histograms()
            .map(|(n, h)| (n, h.count(), h.sum(), h.buckets().collect::<Vec<_>>()))
            .collect();
        prop_assert_eq!(hists_before, hists_after);

        let ex_before: Vec<_> = report
            .metrics
            .exemplars()
            .map(|(n, k)| (n, k.keys().to_vec()))
            .collect();
        let ex_after: Vec<_> = parsed
            .metrics
            .exemplars()
            .map(|(n, k)| (n, k.keys().to_vec()))
            .collect();
        prop_assert_eq!(ex_before, ex_after);

        // A report diffed against its own round-trip has zero drift.
        prop_assert!(diff_reports(&report, &parsed).is_empty());
    }

    /// The header satellite: dropping the header line makes the parse
    /// fail with the legacy-trace diagnostic, never a wrong report.
    #[test]
    fn headerless_render_never_parses(report in reports()) {
        let text = render(&report);
        let headerless: String = text
            .lines()
            .filter(|l| !l.contains(&format!("\"pscds_trace\":{TRACE_VERSION}")))
            .collect::<Vec<_>>()
            .join("\n");
        prop_assert!(parse_trace(&headerless).is_err());
    }
}
