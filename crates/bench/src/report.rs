//! Small table-formatting helpers shared by the experiment binaries.

use std::fmt;

/// A table cell: anything displayable.
#[derive(Clone, Debug)]
pub struct Cell(pub String);

impl<T: fmt::Display> From<T> for Cell {
    fn from(v: T) -> Self {
        Cell(v.to_string())
    }
}

/// Renders rows as a GitHub-flavoured markdown table, padded for terminal
/// readability.
#[must_use]
pub fn markdown_table(headers: &[&str], rows: &[Vec<Cell>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.0.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, &w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| (*s).to_owned()).collect(),
        &widths,
    ));
    out.push_str(&fmt_row(
        widths.iter().map(|&w| "-".repeat(w)).collect(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|c| c.0.clone()).collect(), &widths));
    }
    out
}

/// Compact rendering for possibly-huge exact counts: full decimal up to 15
/// digits, `≈2^bits` beyond.
#[must_use]
pub fn ubig_brief(v: &pscds_numeric::UBig) -> String {
    if v.bit_len() <= 50 {
        v.to_string()
    } else {
        format!("≈2^{}", v.bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_table() {
        let t = markdown_table(
            &["m", "confidence"],
            &[
                vec![Cell::from(0), Cell::from("3/5")],
                vec![Cell::from(100), Cell::from("103/205")],
            ],
        );
        assert!(t.contains("| m   | confidence |"));
        assert!(t.contains("| 100 | 103/205    |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let _ = markdown_table(&["a", "b"], &[vec![Cell::from(1)]]);
    }
}
