//! `--trace-out` JSONL parsing and diffing — the reader half of the
//! step-attribution profiler, shared by the `pscds-trace` binary and
//! `bench_validate`.
//!
//! A trace file round-trips back into an [`ObsReport`]: every name is
//! validated against the `pscds_obs::names` registry on the way in (via
//! the registry-checked `MetricSet::ingest_*` entry points and the
//! `lookup_*` functions), so a trace written by a schema-drifted binary
//! is rejected with a line-numbered error instead of silently producing
//! a wrong profile. Files must start with the `{"pscds_trace":1}` header
//! line; headerless files are reported as legacy traces.

use crate::schema::{parse_json, Json};
use pscds_core::obs::{names, ObsReport, Span, StepHistogram, TRACE_VERSION};
use std::collections::BTreeMap;
use std::fmt;

/// A trace-file parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The first line is not the `{"pscds_trace":1}` schema header.
    MissingHeader {
        /// What the first line was instead (empty for an empty file).
        found: String,
    },
    /// The header names a schema version this reader does not speak.
    VersionMismatch {
        /// The version the file declared.
        version: u64,
    },
    /// A record line failed to parse or validate.
    Line {
        /// 1-based line number in the trace file.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingHeader { found } => write!(
                f,
                "missing {{\"pscds_trace\":{TRACE_VERSION}}} header on line 1 \
                 (got {found:?}): this looks like a legacy trace written before \
                 the schema header existed — re-record it with a current binary"
            ),
            TraceError::VersionMismatch { version } => write!(
                f,
                "trace schema version {version} is not supported (this reader \
                 speaks version {TRACE_VERSION})"
            ),
            TraceError::Line { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

/// Interns a span/event attribute key. Attribute keys in [`Span`] and
/// event records are `&'static str`; trace files carry a small closed
/// set of them ("engine", "chunk", "phase", …), so leaking each distinct
/// key once is bounded and keeps the parsed report type-identical to a
/// live session's.
fn intern(keys: &mut BTreeMap<String, &'static str>, key: &str) -> &'static str {
    if let Some(&interned) = keys.get(key) {
        return interned;
    }
    let leaked: &'static str = Box::leak(key.to_owned().into_boxed_str());
    keys.insert(key.to_owned(), leaked);
    leaked
}

/// Parses a whole trace file back into an [`ObsReport`].
///
/// Blank lines are ignored; the first non-blank line must be the schema
/// header. A file may concatenate several sessions (the experiment
/// binaries append one session per scale to a single `--trace-out`
/// handle): each later header line starts a new segment whose records
/// merge into the same report — counters add, histograms fold, spans
/// and events append. Every record name is validated against the
/// registry.
///
/// # Errors
/// [`TraceError`] with the offending line number; [`TraceError::MissingHeader`]
/// for legacy (headerless) files.
pub fn parse_trace(text: &str) -> Result<ObsReport, TraceError> {
    let mut report = ObsReport::default();
    let mut keys: BTreeMap<String, &'static str> = BTreeMap::new();
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let value = match parse_json(line) {
            Ok(value) => value,
            Err(_) if !saw_header => {
                return Err(TraceError::MissingHeader { found: clip(line) });
            }
            Err(e) => {
                return Err(TraceError::Line {
                    line: line_no,
                    message: e,
                });
            }
        };
        if let Some(version) = value.field("pscds_trace").and_then(Json::as_u64) {
            if version != TRACE_VERSION {
                return Err(TraceError::VersionMismatch { version });
            }
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(TraceError::MissingHeader { found: clip(line) });
        }
        ingest_record(&mut report, &mut keys, &value).map_err(|message| TraceError::Line {
            line: line_no,
            message,
        })?;
    }
    if !saw_header {
        return Err(TraceError::MissingHeader {
            found: String::new(),
        });
    }
    Ok(report)
}

/// First ~60 chars of a line, for error messages.
fn clip(line: &str) -> String {
    let mut s: String = line.chars().take(60).collect();
    if s.len() < line.len() {
        s.push('…');
    }
    s
}

fn ingest_record(
    report: &mut ObsReport,
    keys: &mut BTreeMap<String, &'static str>,
    value: &Json,
) -> Result<(), String> {
    let kind = value
        .field("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "record has no \"type\" field".to_owned())?;
    match kind {
        "span" => {
            let span = parse_span(keys, value)?;
            report.spans.push(span);
            Ok(())
        }
        "counter" => {
            let (name, v) = name_and_value(value)?;
            if report.metrics.ingest_counter(name, v) {
                Ok(())
            } else {
                Err(format!("unregistered counter name {name:?}"))
            }
        }
        "gauge" => {
            let (name, v) = name_and_value(value)?;
            if report.metrics.ingest_gauge(name, v) {
                Ok(())
            } else {
                Err(format!("unregistered gauge name {name:?}"))
            }
        }
        "histogram" => {
            let name = record_name(value)?;
            let hist = parse_histogram(value)?;
            if report.metrics.ingest_histogram(name, hist) {
                Ok(())
            } else {
                Err(format!("unregistered histogram name {name:?}"))
            }
        }
        "exemplar" => {
            let name = record_name(value)?;
            let Some(Json::Arr(items)) = value.field("keys") else {
                return Err("exemplar record has no \"keys\" array".to_owned());
            };
            let mut parsed = Vec::with_capacity(items.len());
            for item in items {
                parsed.push(
                    item.as_str()
                        .ok_or_else(|| "exemplar keys must be strings".to_owned())?,
                );
            }
            if report.metrics.ingest_exemplars(name, parsed) {
                Ok(())
            } else {
                Err(format!("unregistered exemplar counter name {name:?}"))
            }
        }
        "event" => {
            let name = record_name(value)?;
            let name = names::lookup_event(name)
                .ok_or_else(|| format!("unregistered event name {name:?}"))?;
            let at_ns = value
                .field("at_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| "event record has no numeric \"at_ns\"".to_owned())?;
            let attrs = parse_attrs(keys, value)?;
            report
                .events
                .push(pscds_core::obs::Event { name, at_ns, attrs });
            Ok(())
        }
        other => Err(format!("unknown record type {other:?}")),
    }
}

fn record_name(value: &Json) -> Result<&str, String> {
    value
        .field("name")
        .and_then(Json::as_str)
        .ok_or_else(|| "record has no string \"name\"".to_owned())
}

fn name_and_value(value: &Json) -> Result<(&str, u64), String> {
    let name = record_name(value)?;
    let v = value
        .field("value")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("record {name:?} has no numeric \"value\""))?;
    Ok((name, v))
}

fn parse_histogram(value: &Json) -> Result<StepHistogram, String> {
    let declared_count = value
        .field("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| "histogram record has no numeric \"count\"".to_owned())?;
    let sum = value
        .field("sum")
        .and_then(Json::as_u64)
        .ok_or_else(|| "histogram record has no numeric \"sum\"".to_owned())?;
    let Some(Json::Arr(buckets)) = value.field("buckets") else {
        return Err("histogram record has no \"buckets\" array".to_owned());
    };
    let mut hist = StepHistogram::new();
    for bucket in buckets {
        let Json::Arr(pair) = bucket else {
            return Err("histogram buckets must be [index, count] pairs".to_owned());
        };
        let (Some(index), Some(count)) = (
            pair.first().and_then(Json::as_u64),
            pair.get(1).and_then(Json::as_u64),
        ) else {
            return Err("histogram buckets must be [index, count] pairs".to_owned());
        };
        let index = usize::try_from(index)
            .ok()
            .filter(|&i| i < pscds_core::obs::HISTOGRAM_BUCKETS)
            .ok_or_else(|| format!("histogram bucket index {index} out of range"))?;
        hist.set_bucket(index, count);
    }
    hist.set_sum(sum);
    if hist.count() != declared_count {
        return Err(format!(
            "histogram declares count={declared_count} but its buckets sum to {}",
            hist.count()
        ));
    }
    Ok(hist)
}

fn parse_attrs(
    keys: &mut BTreeMap<String, &'static str>,
    value: &Json,
) -> Result<Vec<(&'static str, String)>, String> {
    let Some(Json::Obj(fields)) = value.field("attrs") else {
        return Err("record has no \"attrs\" object".to_owned());
    };
    let mut attrs = Vec::with_capacity(fields.len());
    for (k, v) in fields {
        let v = v
            .as_str()
            .ok_or_else(|| format!("attr {k:?} must be a string"))?;
        attrs.push((intern(keys, k), v.to_owned()));
    }
    Ok(attrs)
}

fn parse_span(keys: &mut BTreeMap<String, &'static str>, value: &Json) -> Result<Span, String> {
    let kind = value.field("type").and_then(Json::as_str);
    if kind != Some("span") {
        return Err("span children must be span records".to_owned());
    }
    let name = record_name(value)?;
    let name =
        names::lookup_span(name).ok_or_else(|| format!("unregistered span name {name:?}"))?;
    let start_ns = value
        .field("start_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| "span record has no numeric \"start_ns\"".to_owned())?;
    let end_ns = value
        .field("end_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| "span record has no numeric \"end_ns\"".to_owned())?;
    let mut span = Span::new(name, start_ns, end_ns);
    span.self_steps = value
        .field("self_steps")
        .and_then(Json::as_u64)
        .ok_or_else(|| "span record has no numeric \"self_steps\"".to_owned())?;
    span.attrs = parse_attrs(keys, value)?;
    let Some(Json::Arr(children)) = value.field("children") else {
        return Err("span record has no \"children\" array".to_owned());
    };
    for child in children {
        span.children.push(parse_span(keys, child)?);
    }
    Ok(span)
}

/// One drifted quantity in a trace diff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRow {
    /// `"counter"`, `"histogram.count"`, or `"histogram.sum"`.
    pub kind: &'static str,
    /// Registered metric name.
    pub name: &'static str,
    /// Value in the first trace.
    pub a: u64,
    /// Value in the second trace.
    pub b: u64,
}

impl DiffRow {
    /// `true` when the relative change from `a` to `b` exceeds
    /// `threshold_pct` percent (0 = any difference counts).
    #[must_use]
    pub fn exceeds(&self, threshold_pct: u64) -> bool {
        if self.a == self.b {
            return false;
        }
        if self.a == 0 {
            return true; // any growth from zero is beyond any percentage
        }
        let delta = self.a.abs_diff(self.b) as u128;
        delta * 100 > u128::from(self.a) * u128::from(threshold_pct)
    }
}

/// Compares the deterministic quantities of two parsed traces: counter
/// totals and histogram count/sum pairs, in name order. Gauges are
/// scheduling diagnostics and deliberately excluded (the same exclusion
/// `tests/obs_determinism.rs` makes).
#[must_use]
pub fn diff_reports(a: &ObsReport, b: &ObsReport) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let mut counters: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for (name, v) in a.metrics.counters() {
        counters.entry(name).or_insert((0, 0)).0 = v;
    }
    for (name, v) in b.metrics.counters() {
        counters.entry(name).or_insert((0, 0)).1 = v;
    }
    for (name, (va, vb)) in counters {
        if va != vb {
            rows.push(DiffRow {
                kind: "counter",
                name,
                a: va,
                b: vb,
            });
        }
    }
    // (count, sum) pair per side, keyed by histogram name.
    type HistPair = ((u64, u64), (u64, u64));
    let mut hists: BTreeMap<&'static str, HistPair> = BTreeMap::new();
    for (name, h) in a.metrics.histograms() {
        hists.entry(name).or_default().0 = (h.count(), h.sum());
    }
    for (name, h) in b.metrics.histograms() {
        hists.entry(name).or_default().1 = (h.count(), h.sum());
    }
    for (name, ((ca, sa), (cb, sb))) in hists {
        if ca != cb {
            rows.push(DiffRow {
                kind: "histogram.count",
                name,
                a: ca,
                b: cb,
            });
        }
        if sa != sb {
            rows.push(DiffRow {
                kind: "histogram.sum",
                name,
                a: sa,
                b: sb,
            });
        }
    }
    rows.sort_by(|x, y| x.name.cmp(y.name).then(x.kind.cmp(y.kind)));
    rows
}

/// Renders a diff byte-deterministically: one line per differing
/// quantity, `!` marking rows beyond the threshold.
#[must_use]
pub fn render_diff(rows: &[DiffRow], threshold_pct: u64) -> String {
    if rows.is_empty() {
        return "(no differences)\n".to_owned();
    }
    let mut out = String::new();
    for row in rows {
        let marker = if row.exceeds(threshold_pct) { "!" } else { " " };
        out.push_str(&format!(
            "{marker} {kind:<15} {name:<30} {a} -> {b}\n",
            kind = row.kind,
            name = row.name,
            a = row.a,
            b = row.b
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::obs::ObsSession;

    fn sample_trace() -> String {
        let mut obs = ObsSession::in_memory();
        obs.span_open(names::SPAN_DP_RUN, 5);
        obs.span_attr("engine", "dp");
        obs.span_open(names::SPAN_DP_CHUNK, 6);
        obs.span_attr("chunk", "0");
        obs.charge_steps(17);
        obs.span_close(8);
        obs.span_close(9);
        obs.histogram_record(names::DP_CHUNK_STEPS, 17);
        obs.exemplar(names::DP_FALLBACK_NODES, "l01.0000000000000002");
        obs.event(names::EVENT_BUDGET_TRIP, 7, &[("phase", "confidence::dp")]);
        let report = obs.finish();
        let mut lines = vec![pscds_core::obs::render_record(
            &pscds_core::obs::Record::Header,
        )];
        for span in &report.spans {
            lines.push(pscds_core::obs::render_record(
                &pscds_core::obs::Record::Span(span),
            ));
        }
        for event in &report.events {
            lines.push(pscds_core::obs::render_record(
                &pscds_core::obs::Record::Event(event),
            ));
        }
        for (name, value) in report.metrics.counters() {
            lines.push(pscds_core::obs::render_record(
                &pscds_core::obs::Record::Counter { name, value },
            ));
        }
        for (name, hist) in report.metrics.histograms() {
            lines.push(pscds_core::obs::render_record(
                &pscds_core::obs::Record::Histogram { name, hist },
            ));
        }
        for (name, keys) in report.metrics.exemplars() {
            lines.push(pscds_core::obs::render_record(
                &pscds_core::obs::Record::Exemplar { name, keys },
            ));
        }
        lines.join("\n") + "\n"
    }

    #[test]
    fn round_trips_a_rendered_session() {
        let text = sample_trace();
        let report = parse_trace(&text).expect("well-formed trace");
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, names::SPAN_DP_RUN);
        assert_eq!(report.spans[0].children[0].self_steps, 17);
        assert_eq!(report.metrics.counter(names::BUDGET_TICKS), 17);
        let (hname, hist) = report.metrics.histograms().next().expect("histogram");
        assert_eq!(hname, names::DP_CHUNK_STEPS);
        assert_eq!((hist.count(), hist.sum()), (1, 17));
        assert_eq!(report.events.len(), 1);
        assert_eq!(
            report.events[0].attrs[0],
            ("phase", "confidence::dp".to_owned())
        );
        let (_, keys) = report.metrics.exemplars().next().expect("exemplars");
        assert_eq!(keys.keys(), ["l01.0000000000000002"]);
    }

    #[test]
    fn headerless_files_are_reported_as_legacy() {
        let text = sample_trace();
        let headerless: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        let err = parse_trace(&headerless).unwrap_err();
        assert!(matches!(err, TraceError::MissingHeader { .. }));
        assert!(err.to_string().contains("legacy trace"), "{err}");
        let err = parse_trace("").unwrap_err();
        assert!(matches!(err, TraceError::MissingHeader { .. }));
    }

    #[test]
    fn future_versions_are_refused() {
        let err = parse_trace("{\"pscds_trace\":2}\n").unwrap_err();
        assert_eq!(err, TraceError::VersionMismatch { version: 2 });
    }

    #[test]
    fn unregistered_names_are_line_errors() {
        let text = "{\"pscds_trace\":1}\n\
                    {\"type\":\"counter\",\"name\":\"made.up\",\"value\":3}\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(
            err,
            TraceError::Line {
                line: 2,
                message: "unregistered counter name \"made.up\"".to_owned()
            }
        );
    }

    #[test]
    fn truncated_lines_carry_their_line_number() {
        let text = "{\"pscds_trace\":1}\n\
                    {\"type\":\"counter\",\"name\":\"budget.ticks\",\"value\":3}\n\
                    {\"type\":\"span\",\"name\":\"dp.run\",\"sta";
        let err = parse_trace(text).unwrap_err();
        assert!(matches!(err, TraceError::Line { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn histograms_validate_their_declared_count() {
        let text = "{\"pscds_trace\":1}\n\
                    {\"type\":\"histogram\",\"name\":\"dp.chunk_steps\",\
                     \"count\":5,\"sum\":6,\"buckets\":[[0,1],[2,2]]}\n";
        let err = parse_trace(text).unwrap_err();
        assert!(
            matches!(&err, TraceError::Line { line: 2, message } if message.contains("count=5")),
            "{err:?}"
        );
    }

    #[test]
    fn diffs_are_sorted_and_thresholded() {
        let a = parse_trace(&sample_trace()).unwrap();
        let mut b = parse_trace(&sample_trace()).unwrap();
        b.metrics.ingest_counter(names::BUDGET_TICKS, 3);
        b.metrics.ingest_counter(names::DP_CACHE_HITS, 1);
        let rows = diff_reports(&a, &b);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            (rows[0].name, rows[0].a, rows[0].b),
            (names::BUDGET_TICKS, 17, 20)
        );
        assert_eq!(rows[1].name, names::DP_CACHE_HITS);
        // 17 -> 20 is ~17.6%: beyond 10%, within 50%. 0 -> 1 beats any %.
        assert!(rows[0].exceeds(10));
        assert!(!rows[0].exceeds(50));
        assert!(rows[1].exceeds(1_000));
        let rendered = render_diff(&rows, 50);
        assert!(rendered.contains("budget.ticks"));
        assert!(rendered.starts_with("  counter"));
        assert_eq!(render_diff(&[], 0), "(no differences)\n");
    }

    #[test]
    fn identical_traces_diff_empty() {
        let a = parse_trace(&sample_trace()).unwrap();
        let b = parse_trace(&sample_trace()).unwrap();
        assert_eq!(diff_reports(&a, &b), Vec::new());
    }
}
