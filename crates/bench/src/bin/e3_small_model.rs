//! E3 — Lemma 3.1: the small-model bound in practice.
//!
//! For random consistent collections (identity views) and join-view
//! climate instances:
//!
//! * the minimal witness size (exhaustive smallest-first search, small
//!   instances only),
//! * the size produced by the constructive `G_i` shrinking of the lemma's
//!   proof (any instance),
//! * the bound `max_i|body(φ_i)|·Σ_i|v_i|` — never violated; the slack is
//!   reported.
//!
//! Run: `cargo run -p pscds-bench --release --bin e3_small_model`

use pscds_bench::{markdown_table, Cell};
use pscds_core::consistency::{lemma31_bound, minimal_witness, shrink_witness};
use pscds_core::measures::in_poss;
use pscds_datagen::climate::{generate as climate, ClimateConfig};
use pscds_datagen::random_sources::{generate, RandomIdentityConfig};
use pscds_relational::{Database, Fact};

fn main() {
    // ── (a) Identity views: minimal witness vs bound ──────────────────
    println!("E3.1  Minimal witness vs Lemma 3.1 bound (random planted identity collections):\n");
    let mut rows = Vec::new();
    let mut max_ratio = 0.0f64;
    for seed in 0..12u64 {
        let cfg = RandomIdentityConfig {
            n_sources: 3,
            domain_size: 6,
            extension_density: 0.5,
            planted: true,
            world_density: 0.5,
            bound_denominator: 4,
            seed,
        };
        let scenario = generate(&cfg).expect("valid config");
        let bound = lemma31_bound(&scenario.collection);
        let witness = minimal_witness(&scenario.collection, &scenario.domain)
            .expect("evaluable")
            .expect("planted instances are consistent");
        assert!(witness.len() <= bound || bound == 0, "bound violated");
        let ratio = if bound == 0 {
            0.0
        } else {
            witness.len() as f64 / bound as f64
        };
        max_ratio = max_ratio.max(ratio);
        rows.push(vec![
            Cell::from(seed),
            Cell::from(scenario.collection.total_extension_size()),
            Cell::from(bound),
            Cell::from(witness.len()),
            Cell::from(format!("{ratio:.2}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["seed", "Σ|v_i|", "bound", "min witness", "witness/bound"],
            &rows
        )
    );
    println!("  max observed witness/bound ratio: {max_ratio:.2} (≤ 1 required)\n");

    // ── (b) Join views: constructive shrinking on the climate world ───
    println!("E3.2  Constructive shrinking (Lemma 3.1 proof) on climate instances:\n");
    let mut rows = Vec::new();
    for (label, years, dropout) in [
        ("small", 2usize, 0.3f64),
        ("medium", 4, 0.2),
        ("large", 8, 0.1),
    ] {
        let cfg = ClimateConfig {
            countries: vec!["Canada".into(), "US".into()],
            stations_per_country: 3,
            first_year: 1900,
            years,
            months: 12,
            dropout,
            corruption: 0.05,
            seed: 5,
        };
        let scenario = climate(&cfg).expect("valid config");
        let bound = lemma31_bound(&scenario.collection);
        let g = &scenario.world;
        let d = shrink_witness(&scenario.collection, g).expect("evaluable");
        assert!(
            in_poss(&d, &scenario.collection).expect("evaluable"),
            "shrunk witness left poss(S)"
        );
        assert!(d.is_subset_of(g));
        assert!(d.len() <= bound, "bound violated: {} > {bound}", d.len());
        rows.push(vec![
            Cell::from(label),
            Cell::from(g.len()),
            Cell::from(d.len()),
            Cell::from(bound),
            Cell::from(format!("{:.2}", d.len() as f64 / bound as f64)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "instance",
                "|G| (ground truth)",
                "|D| (shrunk)",
                "bound",
                "|D|/bound"
            ],
            &rows
        )
    );

    // ── (c) Tightness: a family achieving the bound ───────────────────
    // Fully sound+complete sources over *disjoint relations* (one fact
    // each): every source needs its own fact in the witness, so the
    // minimal witness is exactly Σ|v_i| = the Lemma 3.1 bound (body
    // length 1) — ratio 1.
    println!("\nE3.3  Tight family (exact single-fact sources over disjoint relations):\n");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        use pscds_core::{SourceCollection, SourceDescriptor};
        use pscds_numeric::Frac;
        use pscds_relational::Value;
        let sources: Vec<SourceDescriptor> = (0..n)
            .map(|i| {
                SourceDescriptor::identity(
                    format!("S{i}"),
                    &format!("V{i}"),
                    &format!("R{i}"),
                    1,
                    [[Value::sym(&format!("x{i}"))]],
                    Frac::ONE,
                    Frac::ONE,
                )
                .expect("valid")
            })
            .collect();
        let c = SourceCollection::from_sources(sources);
        let bound = lemma31_bound(&c);
        let witness = Database::from_facts(
            (0..n).map(|i| Fact::new(format!("R{i}").as_str(), [Value::sym(&format!("x{i}"))])),
        );
        assert!(in_poss(&witness, &c).expect("evaluable"));
        // No smaller witness exists: each source needs its own fact.
        rows.push(vec![
            Cell::from(n),
            Cell::from(bound),
            Cell::from(witness.len()),
            Cell::from("1.00"),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["sources", "bound", "min witness", "ratio"], &rows)
    );

    println!("\nE3: Lemma 3.1 bound respected on every instance.");
}
