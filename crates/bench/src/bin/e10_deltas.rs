//! E10 — incremental maintenance vs from-scratch recompute over
//! streaming source deltas.
//!
//! The workload is the `pscds_datagen` cache-replacement stream: a
//! fleet of caches whose per-group object sets churn every batch by
//! signature-inheriting replacement (an evicted object leaves exactly
//! the caches the incoming one joins), so the class *structure* of the
//! collection never moves — the incremental engine's best case. The
//! recompute baseline pays signature analysis plus a full confidence
//! count every epoch; the [`DeltaSession`] route diffs the batch,
//! rebinds the maintained circuit, and reuses the cached numerators.
//!
//! Every epoch's answer is asserted bit-identical between the two
//! routes — verdict, world count, feasible-vector count, and every
//! per-tuple confidence — and at the highest update rate the speedup
//! must clear 5×, the acceptance bar of the incremental design. One
//! `incremental` / `recompute` record pair per update rate is appended
//! to `BENCH_history.jsonl`.
//!
//! Run: `cargo run -p pscds-bench --release --bin e10_deltas`

use pscds_bench::schema::BenchRecord;
use pscds_bench::{markdown_table, ubig_brief, Cell};
use pscds_core::confidence::ConfidenceAnalysis;
use pscds_core::delta::{analyze_incremental, apply_batch_to_catalog, DeltaSession};
use pscds_core::obs::MetricSet;
use pscds_datagen::deltas::{cache_sim_stream, CacheStreamConfig};
use std::io::Write as _;
use std::time::Instant;

fn main() {
    // `--batches N` sets the stream length (default 48; the ≥ 5×
    // speedup assertion is armed whenever N ≥ 32).
    let mut batches = 48usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--batches" => {
                batches = it
                    .next()
                    .expect("--batches needs a value")
                    .parse()
                    .expect("--batches needs a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!("E10  Incremental maintenance vs recompute over {batches}-batch update streams:\n");
    let rates = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut top_speedup = 0.0f64;
    for &rate in &rates {
        let stream = cache_sim_stream(&CacheStreamConfig {
            group_size: 4,
            n_caches: 3,
            batches,
            updates_per_batch: rate,
            drift: 0.0,
            seed: 10 + rate as u64,
        })
        .expect("valid stream config");

        let mut session =
            DeltaSession::new(&stream.initial, stream.padding).expect("identity views");
        let mut catalog = stream.initial.clone();
        let mut inc_ns = 0u128;
        let mut rec_ns = 0u128;
        let mut worlds = String::new();
        // Epoch 0 is the initial state: the incremental route pays its
        // one unavoidable full compile here, the baseline its first
        // recompute. Every later epoch applies one batch to both.
        for epoch in 0..=batches {
            let incremental = if epoch == 0 {
                let t = Instant::now();
                let analysis = analyze_incremental(&mut session);
                inc_ns += t.elapsed().as_nanos();
                analysis
            } else {
                let batch = &stream.batches[epoch - 1];
                let t = Instant::now();
                session.apply_batch(batch).expect("in-universe ops");
                let analysis = analyze_incremental(&mut session);
                inc_ns += t.elapsed().as_nanos();
                let t = Instant::now();
                catalog = apply_batch_to_catalog(&catalog, batch).expect("valid batch");
                rec_ns += t.elapsed().as_nanos();
                analysis
            };
            let t = Instant::now();
            let identity = catalog.as_identity().expect("identity views");
            let scratch = ConfidenceAnalysis::analyze(&identity, session.padding());
            rec_ns += t.elapsed().as_nanos();

            assert_eq!(
                incremental.is_consistent(),
                scratch.is_consistent(),
                "verdict diverged at rate {rate}, epoch {epoch}"
            );
            assert_eq!(
                incremental.world_count(),
                scratch.world_count(),
                "world count diverged at rate {rate}, epoch {epoch}"
            );
            assert_eq!(
                incremental.feasible_vectors(),
                scratch.feasible_vectors(),
                "feasible vectors diverged at rate {rate}, epoch {epoch}"
            );
            if scratch.is_consistent() {
                for tuple in identity.all_tuples() {
                    assert_eq!(
                        incremental
                            .confidence_of_tuple(&identity, &tuple)
                            .expect("consistent"),
                        scratch
                            .confidence_of_tuple(&identity, &tuple)
                            .expect("consistent"),
                        "confidence diverged at rate {rate}, epoch {epoch}"
                    );
                }
            }
            if worlds.is_empty() {
                worlds = ubig_brief(scratch.world_count());
            }
        }

        let stats = session.stats();
        let speedup = rec_ns as f64 / inc_ns.max(1) as f64;
        top_speedup = top_speedup.max(speedup);
        rows.push(vec![
            Cell::from(rate),
            Cell::from(worlds),
            Cell::from(format!(
                "{:?}",
                std::time::Duration::from_nanos((rec_ns / (batches as u128 + 1)) as u64)
            )),
            Cell::from(format!(
                "{:?}",
                std::time::Duration::from_nanos((inc_ns / (batches as u128 + 1)) as u64)
            )),
            Cell::from(format!("{speedup:.1}×")),
            Cell::from(format!(
                "{} reused / {} patched / {} recompiled",
                stats.results_reused, stats.nodes_patched, stats.recompiles_forced
            )),
        ]);
        // The schema's cache columns carry the maintenance discipline:
        // reused results are the incremental route's cache hits, forced
        // recompiles its misses; the recompute row kept no cache.
        records.push(BenchRecord {
            engine: "incremental".to_owned(),
            m: rate as u64,
            wall_ns: inc_ns,
            cache_hits: stats.results_reused,
            cache_misses: stats.recompiles_forced,
            peak_cache_entries: stats.states_invalidated,
            fallback_nodes: stats.nodes_patched,
            cross_subset_hits: stats.ops_applied,
        });
        records.push(BenchRecord::from_metrics(
            "recompute",
            rate as u64,
            rec_ns,
            &MetricSet::new(),
        ));
    }
    println!(
        "{}",
        markdown_table(
            &[
                "updates/batch",
                "|poss| (epoch 0)",
                "recompute/epoch",
                "incremental/epoch",
                "speedup",
                "maintenance",
            ],
            &rows
        )
    );
    if batches >= 32 {
        assert!(
            top_speedup >= 5.0,
            "incremental maintenance must beat per-epoch recompute by ≥ 5× on the \
             replacement-churn stream (got {top_speedup:.1}×)"
        );
    }

    let history_path = "BENCH_history.jsonl";
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history_path)
        .unwrap_or_else(|e| panic!("open {history_path}: {e}"));
    for r in &records {
        writeln!(history, "{}", r.to_json()).expect("append history");
    }
    println!("appended {} records to {history_path}", records.len());

    println!("\nE10: every epoch bit-identical across routes; best speedup {top_speedup:.1}×.");
}
