//! E7 — certain/possible answers and confidence ranking at scale, on the
//! Section 6 mirror workload.
//!
//! For fleets of partially stale / partially obsolete mirrors:
//!
//! * sizes of the certain and possible object sets as staleness and
//!   obsolescence vary,
//! * ranking quality: how well exact tuple confidence separates live
//!   objects from obsolete ones (pairwise ranking accuracy),
//! * scaling: analysis time vs number of objects and mirrors (the world
//!   oracle dies at ~20 objects; the signature engine keeps going).
//!
//! Run: `cargo run -p pscds-bench --release --bin e7_answers`

use pscds_bench::{markdown_table, ubig_brief, Cell};
use pscds_core::confidence::{ConfidenceAnalysis, PossibleWorlds};
use pscds_datagen::mirrors::{generate, MirrorConfig};
use pscds_numeric::Rational;
use pscds_relational::Value;
use std::time::Instant;

fn main() {
    // ── (a) Answer sizes vs data quality ──────────────────────────────
    println!(
        "E7.1  Certain/possible object sets vs mirror quality (8 live, 3 obsolete, 4 mirrors):\n"
    );
    let mut rows = Vec::new();
    for (staleness, obsolescence) in [(0.0, 0.0), (0.1, 0.1), (0.25, 0.25), (0.4, 0.4), (0.6, 0.6)]
    {
        let cfg = MirrorConfig {
            n_objects: 8,
            n_obsolete: 3,
            n_mirrors: 4,
            staleness,
            obsolescence,
            seed: 11,
        };
        let scenario = generate(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let analysis = ConfidenceAnalysis::analyze(&identity, 0);
        let certain = analysis.certain_tuples().expect("consistent");
        let possible = analysis.possible_tuples().expect("consistent");
        assert!(certain.len() <= possible.len());
        rows.push(vec![
            Cell::from(format!("{staleness:.2}/{obsolescence:.2}")),
            Cell::from(identity.all_tuples().len()),
            Cell::from(certain.len()),
            Cell::from(possible.len()),
            Cell::from(ubig_brief(analysis.world_count())),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "stale/obsolete",
                "mentioned",
                "certain",
                "possible",
                "|poss(S)|"
            ],
            &rows
        )
    );

    // ── (b) Ranking quality ───────────────────────────────────────────
    println!("\nE7.2  Confidence ranking: live vs obsolete separation (pairwise accuracy):\n");
    let mut rows = Vec::new();
    for n_mirrors in [1usize, 2, 4, 8] {
        let mut acc_sum = 0.0;
        let mut trials = 0usize;
        for seed in 0..10u64 {
            let cfg = MirrorConfig {
                n_objects: 10,
                n_obsolete: 5,
                n_mirrors,
                staleness: 0.25,
                obsolescence: 0.35,
                seed,
            };
            let scenario = generate(&cfg).expect("valid config");
            let identity = scenario.collection.as_identity().expect("identity");
            let analysis = ConfidenceAnalysis::analyze(&identity, 0);
            if !analysis.is_consistent() {
                continue;
            }
            let conf_of = |v: &Value| -> Rational {
                let tuple = vec![*v];
                if identity.signature_of(&tuple) == 0 {
                    Rational::zero() // mentioned by no mirror
                } else {
                    analysis
                        .confidence_of_tuple(&identity, &tuple)
                        .expect("consistent")
                }
            };
            // Pairwise accuracy: fraction of (live, obsolete) pairs where
            // the live object gets strictly higher confidence (ties = ½).
            let mut wins = 0.0;
            let mut pairs = 0.0;
            for live in &scenario.origin {
                for dead in &scenario.obsolete {
                    let cl = conf_of(live);
                    let cd = conf_of(dead);
                    pairs += 1.0;
                    if cl > cd {
                        wins += 1.0;
                    } else if cl == cd {
                        wins += 0.5;
                    }
                }
            }
            acc_sum += wins / pairs;
            trials += 1;
        }
        rows.push(vec![
            Cell::from(n_mirrors),
            Cell::from(trials),
            Cell::from(format!("{:.3}", acc_sum / trials.max(1) as f64)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["mirrors", "consistent trials", "pairwise ranking accuracy"],
            &rows
        )
    );

    // ── (c) Scaling: signature engine vs world oracle ─────────────────
    println!("\nE7.3  Analysis time vs object count (2 mirrors; exact counting is #P-hard,");
    println!("      so cost tracks the feasible-vector count, not the domain alone):\n");
    let mut rows = Vec::new();
    for n_objects in [8usize, 12, 16, 20, 50, 100, 200] {
        let cfg = MirrorConfig {
            n_objects,
            n_obsolete: n_objects / 3,
            n_mirrors: 2,
            staleness: 0.2,
            obsolescence: 0.3,
            seed: 3,
        };
        let scenario = generate(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let mentioned: Vec<Value> = identity.all_tuples().into_iter().map(|t| t[0]).collect();
        let oracle_time = if mentioned.len() <= 20 {
            let t = Instant::now();
            let worlds = PossibleWorlds::enumerate(&scenario.collection, &mentioned)
                .expect("small universe");
            let dt = t.elapsed();
            // Cross-check the counts while both engines run.
            let analysis = ConfidenceAnalysis::analyze(&identity, 0);
            assert_eq!(
                analysis.world_count().to_u64().map(|v| v as usize),
                Some(worlds.count()),
                "n_objects = {n_objects}"
            );
            format!("{dt:?}")
        } else {
            "(2^N too large)".to_owned()
        };
        let t = Instant::now();
        let analysis = ConfidenceAnalysis::analyze(&identity, 0);
        let _ = analysis.certain_tuples();
        let sig_time = t.elapsed();
        rows.push(vec![
            Cell::from(n_objects),
            Cell::from(mentioned.len()),
            Cell::from(oracle_time),
            Cell::from(format!("{sig_time:?}")),
            Cell::from(analysis.feasible_vectors()),
            Cell::from(ubig_brief(analysis.world_count())),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "objects",
                "mentioned",
                "world oracle",
                "signature engine",
                "feasible vectors",
                "|poss|"
            ],
            &rows
        )
    );

    // ── (d) Sampling beyond exact counting ────────────────────────────
    println!("\nE7.4  Metropolis sampling where exact counting explodes (4 mirrors):\n");
    use pscds_core::confidence::{sample_confidences, SamplerConfig, SignatureAnalysis};
    let mut rows = Vec::new();
    for n_objects in [100usize, 1_000, 10_000] {
        let cfg = MirrorConfig {
            n_objects,
            n_obsolete: n_objects / 3,
            n_mirrors: 4,
            staleness: 0.2,
            obsolescence: 0.3,
            seed: 3,
        };
        let scenario = generate(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let t = Instant::now();
        let sampler_cfg = SamplerConfig {
            burn_in: 500,
            samples: 4_000,
            seed: 1,
        };
        let sampled = sample_confidences(&identity, 0, &sampler_cfg).expect("consistent");
        let dt = t.elapsed();
        // Directional check: mean estimated confidence of live objects
        // must beat the obsolete ones.
        let analysis = SignatureAnalysis::new(&identity, 0);
        let mean_conf = |objs: &std::collections::BTreeSet<Value>| -> f64 {
            let mut sum = 0.0;
            let mut n = 0.0;
            for &o in objs {
                let t = vec![o];
                if identity.signature_of(&t) != 0 {
                    sum += sampled
                        .confidence_of_tuple(&analysis, &identity, &t)
                        .expect("in domain");
                    n += 1.0;
                }
            }
            if n == 0.0 {
                0.0
            } else {
                sum / n
            }
        };
        let live = mean_conf(&scenario.origin);
        let dead = mean_conf(&scenario.obsolete);
        assert!(live > dead, "live objects must outrank obsolete on average");
        rows.push(vec![
            Cell::from(n_objects),
            Cell::from(format!("{dt:?}")),
            Cell::from(format!("{:.3}", sampled.acceptance_rate)),
            Cell::from(sampled.distinct_vectors),
            Cell::from(format!("{live:.3} / {dead:.3}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "objects",
                "sampling time",
                "acceptance",
                "distinct vectors",
                "mean conf live/obsolete"
            ],
            &rows
        )
    );

    println!("\nE7: certain ⊆ possible on every instance; engine cross-checks passed.");
}
