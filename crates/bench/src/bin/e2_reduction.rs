//! E2 — Theorem 3.2: NP-completeness of CONSISTENCY.
//!
//! (a) Round-trips random HITTING SET instances through the Lemma 3.3 and
//!     Theorem 3.2 reductions and cross-validates the answers of the
//!     direct HS solver and the consistency solver, mapping witnesses
//!     both ways.
//! (b) Measures consistency-decision time as instances grow, showing the
//!     exponential scaling the theorem predicts (on adversarial random
//!     instances) versus the benign scaling on planted ones.
//!
//! Run: `cargo run -p pscds-bench --release --bin e2_reduction`

use pscds_bench::{markdown_table, Cell};
use pscds_core::consistency::{decide_identity, decide_identity_parallel, IdentityConsistency};
use pscds_core::govern::Budget;
use pscds_core::ParallelConfig;
use pscds_datagen::random_sources::{generate, RandomIdentityConfig};
use pscds_reductions::{
    consistency_witness_to_hitting_set, hs_star_to_consistency, hs_to_hs_star,
    project_hs_star_solution, solve_hitting_set, HittingSetInstance,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;

fn random_hs(
    rng: &mut StdRng,
    universe: u32,
    n_sets: usize,
    max_set: usize,
    k: usize,
) -> HittingSetInstance {
    let sets: Vec<BTreeSet<u32>> = (0..n_sets)
        .map(|_| {
            let size = rng.gen_range(1..=max_set);
            (0..size).map(|_| rng.gen_range(0..universe)).collect()
        })
        .collect();
    HittingSetInstance::new(sets, k)
}

fn main() {
    // ── (a) Reduction round-trip validation ───────────────────────────
    println!("E2.1  HS → HS* → CONSISTENCY round-trips (200 random instances):\n");
    let mut rng = StdRng::seed_from_u64(32);
    let mut yes = 0usize;
    let mut no = 0usize;
    for trial in 0..200 {
        let k = rng.gen_range(1..4);
        let hs = random_hs(&mut rng, 8, 4, 3, k);
        let (star, fresh) = hs_to_hs_star(&hs);
        let collection = hs_star_to_consistency(&star).expect("non-empty sets, K ≥ 1");
        let identity = collection.as_identity().expect("identity views");
        let direct = solve_hitting_set(&hs);
        match decide_identity(&identity, 0) {
            IdentityConsistency::Consistent { witness, .. } => {
                assert!(
                    direct.is_some(),
                    "trial {trial}: solver disagreement (consistency says YES)"
                );
                let star_sol = consistency_witness_to_hitting_set(&witness);
                assert!(
                    star.is_solution(&star_sol),
                    "trial {trial}: invalid witness mapping"
                );
                let hs_sol = project_hs_star_solution(&star_sol, fresh);
                assert!(
                    hs.is_solution(&hs_sol),
                    "trial {trial}: invalid projected solution"
                );
                yes += 1;
            }
            IdentityConsistency::Inconsistent => {
                assert!(
                    direct.is_none(),
                    "trial {trial}: solver disagreement (consistency says NO)"
                );
                no += 1;
            }
        }
    }
    println!("  200/200 agreed: {yes} YES (witnesses round-tripped), {no} NO.\n");

    // ── (b) Scaling of the consistency decision ───────────────────────
    println!("E2.2  Consistency decision time vs #sources (domain 24, adversarial vs planted):\n");
    let mut rows = Vec::new();
    for n_sources in [2usize, 4, 6, 8, 10, 12] {
        let mut adv_total = std::time::Duration::ZERO;
        let mut planted_total = std::time::Duration::ZERO;
        let trials = 20;
        let mut adv_consistent = 0usize;
        for seed in 0..trials {
            for &planted in &[false, true] {
                let cfg = RandomIdentityConfig {
                    n_sources,
                    domain_size: 24,
                    extension_density: 0.4,
                    bound_denominator: 6,
                    planted,
                    world_density: 0.5,
                    seed: seed + n_sources as u64 * 1000,
                };
                let scenario = generate(&cfg).expect("valid config");
                let identity = scenario.collection.as_identity().expect("identity");
                let padding = scenario.domain.len() as u64 - identity.all_tuples().len() as u64;
                let t = Instant::now();
                let verdict = decide_identity(&identity, padding);
                let dt = t.elapsed();
                if planted {
                    assert!(verdict.is_consistent(), "planted instances are consistent");
                    planted_total += dt;
                } else {
                    adv_total += dt;
                    if verdict.is_consistent() {
                        adv_consistent += 1;
                    }
                }
            }
        }
        rows.push(vec![
            Cell::from(n_sources),
            Cell::from(format!("{:?}", adv_total / trials as u32)),
            Cell::from(format!("{:?}", planted_total / trials as u32)),
            Cell::from(format!("{adv_consistent}/{trials}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "sources",
                "adversarial avg",
                "planted avg",
                "adv. consistent"
            ],
            &rows
        )
    );

    // ── (c) Reduction-instance scaling (hard side) ────────────────────
    println!("\nE2.3  Decision time on reduced HS instances vs universe size:\n");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(99);
    for universe in [6u32, 10, 14, 18, 22] {
        let n_sets = universe as usize;
        let k = (universe / 3) as usize;
        let mut total = std::time::Duration::ZERO;
        let trials = 10;
        for _ in 0..trials {
            let hs = random_hs(&mut rng, universe, n_sets, 3, k.max(1));
            let (star, _) = hs_to_hs_star(&hs);
            if let Ok(collection) = hs_star_to_consistency(&star) {
                let identity = collection.as_identity().expect("identity");
                let t = Instant::now();
                let _ = decide_identity(&identity, 0);
                total += t.elapsed();
            }
        }
        rows.push(vec![
            Cell::from(universe),
            Cell::from(n_sets + 1),
            Cell::from(k),
            Cell::from(format!("{:?}", total / trials as u32)),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["|S|", "sets", "K", "avg decision time"], &rows)
    );

    // ── (d) Serial vs parallel on the largest adversarial instances ───
    println!("\nE2.4  Serial vs parallel identity solver (adversarial, domain 24, all cores):\n");
    let parallel = ParallelConfig::with_threads(0);
    println!("  worker threads: {}\n", parallel.threads());
    let mut rows = Vec::new();
    for n_sources in [10usize, 12, 14] {
        let trials = 10u64;
        let mut serial_total = std::time::Duration::ZERO;
        let mut parallel_total = std::time::Duration::ZERO;
        for seed in 0..trials {
            let cfg = RandomIdentityConfig {
                n_sources,
                domain_size: 24,
                extension_density: 0.4,
                bound_denominator: 6,
                planted: false,
                world_density: 0.5,
                seed: seed + n_sources as u64 * 7000,
            };
            let scenario = generate(&cfg).expect("valid config");
            let identity = scenario.collection.as_identity().expect("identity");
            let padding = scenario.domain.len() as u64 - identity.all_tuples().len() as u64;
            let t = Instant::now();
            let serial = decide_identity(&identity, padding);
            serial_total += t.elapsed();
            let t = Instant::now();
            let par = decide_identity_parallel(&identity, padding, &Budget::unlimited(), &parallel)
                .expect("unlimited budget");
            parallel_total += t.elapsed();
            assert_eq!(par, serial, "parallel verdict diverged (seed {seed})");
        }
        let speedup = serial_total.as_secs_f64() / parallel_total.as_secs_f64().max(1e-9);
        rows.push(vec![
            Cell::from(n_sources),
            Cell::from(format!("{:?}", serial_total / trials as u32)),
            Cell::from(format!("{:?}", parallel_total / trials as u32)),
            Cell::from(format!("{speedup:.2}x")),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["sources", "serial avg", "parallel avg", "speedup"], &rows)
    );

    println!("\nE2: all agreement checks passed.");
}
