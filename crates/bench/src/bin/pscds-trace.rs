//! Offline analyzer for `--trace-out` step-attribution traces.
//!
//! Subcommands:
//!
//! * `pscds-trace summary PATH` — per-phase self/total step table plus
//!   top exemplar keys, rendered exactly as the CLI's `--profile` flag
//!   renders a live session.
//! * `pscds-trace critical-path PATH` — the heaviest root-to-leaf span
//!   chain by inclusive (total) steps.
//! * `pscds-trace diff A B [--threshold PCT]` — counter and histogram
//!   deltas between two traces, byte-deterministic, exiting 1 when any
//!   quantity drifted beyond the threshold (default 0: any difference
//!   is drift). Gauges are scheduling diagnostics and excluded.
//!
//! Every subcommand validates the `{"pscds_trace":1}` header and each
//! record name against the `pscds_obs::names` registry, so a trace from
//! a schema-drifted binary fails loudly rather than profiling garbage.

use pscds_bench::trace::{diff_reports, parse_trace, render_diff};
use pscds_core::obs::{render_critical_path, render_summary, ObsReport};
use std::process::ExitCode;

const USAGE: &str = "usage: pscds-trace summary PATH\n       \
                     pscds-trace critical-path PATH\n       \
                     pscds-trace diff A B [--threshold PCT]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "summary" => load(path).map_or(ExitCode::from(2), |report| {
            print!("{}", render_summary(&report));
            ExitCode::SUCCESS
        }),
        [cmd, path] if cmd == "critical-path" => load(path).map_or(ExitCode::from(2), |report| {
            print!("{}", render_critical_path(&report));
            ExitCode::SUCCESS
        }),
        [cmd, a, b] if cmd == "diff" => diff(a, b, 0),
        [cmd, a, b, flag, pct] if cmd == "diff" && flag == "--threshold" => {
            match pct.parse::<u64>() {
                Ok(pct) => diff(a, b, pct),
                Err(_) => {
                    eprintln!("pscds-trace: threshold {pct:?} is not a percentage");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Reads and parses one trace file; reports errors to stderr.
fn load(path: &str) -> Option<ObsReport> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("pscds-trace: cannot read {path}: {e}");
            return None;
        }
    };
    match parse_trace(&text) {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("pscds-trace: {path}: {e}");
            None
        }
    }
}

fn diff(path_a: &str, path_b: &str, threshold_pct: u64) -> ExitCode {
    let (Some(a), Some(b)) = (load(path_a), load(path_b)) else {
        return ExitCode::from(2);
    };
    let rows = diff_reports(&a, &b);
    print!("{}", render_diff(&rows, threshold_pct));
    let drifted = rows.iter().filter(|r| r.exceeds(threshold_pct)).count();
    if drifted > 0 {
        eprintln!("pscds-trace: {drifted} quantity(ies) drifted beyond +{threshold_pct}%");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
