//! E4 — Theorem 4.1: `poss(S) = ∪_U rep(T^U(S))`.
//!
//! Verifies the template representation of the possible worlds by
//! exhaustive cross-checking against direct enumeration — on Example 5.1,
//! on join-view sources, and on a batch of random identity collections —
//! and reports how the template count `|𝒰|` grows.
//!
//! Run: `cargo run -p pscds-bench --release --bin e4_templates`

use pscds_bench::{markdown_table, Cell};
use pscds_core::paper::{example_5_1, example_5_1_domain};
use pscds_core::templates::{subset_combinations, verify_theorem_4_1};
use pscds_core::{SourceCollection, SourceDescriptor};
use pscds_datagen::random_sources::{generate, RandomIdentityConfig};
use pscds_numeric::Frac;
use pscds_relational::parser::{parse_facts, parse_rule};
use pscds_relational::Value;
use std::time::Instant;

fn main() {
    // ── (a) Example 5.1 ───────────────────────────────────────────────
    println!(
        "E4.1  Theorem 4.1 on Example 5.1 (poss vs ∪ rep, restricted to the finite universe):\n"
    );
    let mut rows = Vec::new();
    for m in 0..=3usize {
        let t = Instant::now();
        let report =
            verify_theorem_4_1(&example_5_1(), &example_5_1_domain(m)).expect("small instance");
        assert!(report.holds, "Theorem 4.1 must hold");
        rows.push(vec![
            Cell::from(m),
            Cell::from(report.template_count),
            Cell::from(report.poss_count),
            Cell::from(report.rep_union_count),
            Cell::from(if report.holds { "✓" } else { "✗" }),
            Cell::from(format!("{:?}", t.elapsed())),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["m", "|𝒰| (templates)", "|poss|", "|∪ rep|", "equal", "time"],
            &rows
        )
    );

    // ── (b) Join views ────────────────────────────────────────────────
    println!("\nE4.2  Theorem 4.1 on join-view sources:\n");
    let join_cases: Vec<(&str, SourceCollection, Vec<Value>)> = vec![
        (
            "path join, exact",
            SourceCollection::from_sources([SourceDescriptor::new(
                "J1",
                parse_rule("V(x) <- R(x, y), S(y)").expect("parses"),
                parse_facts("V(a)").expect("parses"),
                Frac::ONE,
                Frac::ONE,
            )
            .expect("valid")]),
            vec![Value::sym("a"), Value::sym("z")],
        ),
        (
            "path join, partial",
            SourceCollection::from_sources([SourceDescriptor::new(
                "J2",
                parse_rule("V(x) <- R(x, y), S(y)").expect("parses"),
                parse_facts("V(a). V(z)").expect("parses"),
                Frac::HALF,
                Frac::HALF,
            )
            .expect("valid")]),
            vec![Value::sym("a"), Value::sym("z")],
        ),
        (
            "two sources, mixed",
            SourceCollection::from_sources([
                SourceDescriptor::new(
                    "A",
                    parse_rule("V(x) <- R(x, y)").expect("parses"),
                    parse_facts("V(a)").expect("parses"),
                    Frac::HALF,
                    Frac::ONE,
                )
                .expect("valid"),
                SourceDescriptor::identity(
                    "B",
                    "W",
                    "S",
                    1,
                    [[Value::sym("a")]],
                    Frac::ONE,
                    Frac::HALF,
                )
                .expect("valid"),
            ]),
            vec![Value::sym("a"), Value::sym("b")],
        ),
    ];
    let mut rows = Vec::new();
    for (label, collection, domain) in &join_cases {
        let t = Instant::now();
        let report = verify_theorem_4_1(collection, domain).expect("small instance");
        assert!(report.holds, "{label}: Theorem 4.1 must hold");
        rows.push(vec![
            Cell::from(*label),
            Cell::from(report.template_count),
            Cell::from(report.poss_count),
            Cell::from(report.rep_union_count),
            Cell::from(format!("{:?}", t.elapsed())),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["case", "templates", "|poss|", "|∪ rep|", "time"], &rows)
    );

    // ── (c) Random identity collections ───────────────────────────────
    println!("\nE4.3  Theorem 4.1 on 30 random identity collections (domain 4):\n");
    let mut verified = 0usize;
    for seed in 0..30u64 {
        let cfg = RandomIdentityConfig {
            n_sources: 2,
            domain_size: 4,
            extension_density: 0.5,
            planted: seed % 2 == 0,
            world_density: 0.5,
            bound_denominator: 3,
            seed,
        };
        let scenario = generate(&cfg).expect("valid config");
        let report =
            verify_theorem_4_1(&scenario.collection, &scenario.domain).expect("small instance");
        assert!(report.holds, "seed {seed}: Theorem 4.1 must hold");
        verified += 1;
    }
    println!("  {verified}/30 random instances verified (poss ≡ ∪ rep on all).\n");

    // ── (d) Growth of |𝒰| ────────────────────────────────────────────
    println!("E4.4  Subset-combination count |𝒰| vs extension size (s = 1/2 sources):\n");
    let mut rows = Vec::new();
    for ext in [2usize, 4, 6, 8, 10] {
        let tuples: Vec<[Value; 1]> = (0..ext).map(|i| [Value::sym(&format!("t{i}"))]).collect();
        let src = SourceDescriptor::identity("S", "V", "R", 1, tuples, Frac::HALF, Frac::HALF)
            .expect("valid");
        let c = SourceCollection::from_sources([src]);
        let combos = subset_combinations(&c).expect("within cap");
        rows.push(vec![Cell::from(ext), Cell::from(combos.len())]);
    }
    println!("{}", markdown_table(&["|v|", "|𝒰|"], &rows));

    println!("\nE4: Theorem 4.1 verified on every instance.");
}
