//! E8 (extension) — consensus and liar detection, the paper's Section 6
//! future-work direction.
//!
//! Honest mirrors report measured-exact bounds about a shared origin; a
//! configurable number of *liars* report exact-sounding claims about a
//! fabricated object set. The consensus analysis (maximal consistent
//! subsets + support scores) should place the honest majority in one
//! large subset and flag the liars as outliers.
//!
//! Run: `cargo run -p pscds-bench --release --bin e8_consensus`

use pscds_bench::{markdown_table, Cell};
use pscds_core::consensus::{maximal_consistent_subsets, maximal_consistent_subsets_parallel};
use pscds_core::govern::Budget;
use pscds_core::ParallelConfig;
use pscds_core::{SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Builds `n_honest` noisy-but-truthful sources about origin {o0..o7} and
/// `n_liars` exact claims about disjoint fabricated objects.
fn scenario(n_honest: usize, n_liars: usize, noise: f64, seed: u64) -> SourceCollection {
    let mut rng = StdRng::seed_from_u64(seed);
    let origin: Vec<Value> = (0..8).map(|i| Value::sym(&format!("o{i}"))).collect();
    let mut sources = Vec::new();
    for h in 0..n_honest {
        let kept: Vec<Value> = origin
            .iter()
            .filter(|_| !rng.gen_bool(noise))
            .copied()
            .collect();
        let c = Frac::new(kept.len() as u64, origin.len() as u64);
        sources.push(
            SourceDescriptor::identity(
                format!("honest{h}"),
                &format!("H{h}"),
                "Object",
                1,
                kept.into_iter().map(|v| [v]),
                c,
                Frac::ONE, // honest tuples are all real
            )
            .expect("valid"),
        );
    }
    for l in 0..n_liars {
        let fake: Vec<Value> = (0..3)
            .map(|i| Value::sym(&format!("fake{l}_{i}")))
            .collect();
        sources.push(
            SourceDescriptor::identity(
                format!("liar{l}"),
                &format!("L{l}"),
                "Object",
                1,
                fake.into_iter().map(|v| [v]),
                Frac::ONE, // claims to be complete — contradicts everyone
                Frac::ONE,
            )
            .expect("valid"),
        );
    }
    SourceCollection::from_sources(sources)
}

fn main() {
    println!("E8  Consensus / liar detection (Section 6 future-work extension)\n");
    println!("E8.1  Detection quality vs honest-source count (1 liar, noise 0.2):\n");
    let mut rows = Vec::new();
    for n_honest in [2usize, 3, 5, 8] {
        let mut detected = 0usize;
        let trials = 10u64;
        let mut largest_is_honest = 0usize;
        for seed in 0..trials {
            let collection = scenario(n_honest, 1, 0.2, seed);
            let report = maximal_consistent_subsets(&collection, 0).expect("identity views");
            let liar_idx = n_honest; // liar appended last
            if report.outliers().contains(&liar_idx) {
                detected += 1;
            }
            let largest = report.largest_subset();
            if !largest.contains(&liar_idx) && largest.len() >= n_honest.min(2) {
                largest_is_honest += 1;
            }
        }
        rows.push(vec![
            Cell::from(n_honest),
            Cell::from(format!("{detected}/{trials}")),
            Cell::from(format!("{largest_is_honest}/{trials}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "honest sources",
                "liar flagged as outlier",
                "largest subset excludes liar"
            ],
            &rows
        )
    );

    println!("\nE8.2  Multiple liars (5 honest, noise 0.2):\n");
    let mut rows = Vec::new();
    for n_liars in [0usize, 1, 2, 3] {
        let mut all_detected = 0usize;
        let trials = 10u64;
        for seed in 0..trials {
            let collection = scenario(5, n_liars, 0.2, 100 + seed);
            let report = maximal_consistent_subsets(&collection, 0).expect("identity views");
            let outliers = report.outliers();
            let liars: Vec<usize> = (5..5 + n_liars).collect();
            if liars.iter().all(|l| outliers.contains(l))
                && outliers.iter().all(|o| liars.contains(o))
            {
                all_detected += 1;
            }
        }
        rows.push(vec![
            Cell::from(n_liars),
            Cell::from(format!("{all_detected}/{trials}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["liars", "exactly the liars flagged"], &rows)
    );

    println!("\nE8.3  Consensus cost vs source count (2^n consistency checks):\n");
    let mut rows = Vec::new();
    for n in [4usize, 8, 12, 16] {
        let collection = scenario(n - 1, 1, 0.2, 7);
        let t = Instant::now();
        let report = maximal_consistent_subsets(&collection, 0).expect("identity views");
        let dt = t.elapsed();
        rows.push(vec![
            Cell::from(n),
            Cell::from(report.maximal_subsets.len()),
            Cell::from(format!("{dt:?}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["sources", "maximal subsets", "time"], &rows)
    );

    println!("\nE8.4  Serial vs parallel consensus (all cores; reports must be identical):\n");
    let parallel = ParallelConfig::with_threads(0);
    println!("  worker threads: {}\n", parallel.threads());
    let mut rows = Vec::new();
    for n in [12usize, 14, 16] {
        let collection = scenario(n - 1, 1, 0.2, 7);
        let t = Instant::now();
        let serial = maximal_consistent_subsets(&collection, 0).expect("identity views");
        let serial_dt = t.elapsed();
        let t = Instant::now();
        let par =
            maximal_consistent_subsets_parallel(&collection, 0, &Budget::unlimited(), &parallel)
                .expect("identity views");
        let parallel_dt = t.elapsed();
        assert_eq!(par, serial, "parallel consensus diverged at n={n}");
        let speedup = serial_dt.as_secs_f64() / parallel_dt.as_secs_f64().max(1e-9);
        rows.push(vec![
            Cell::from(n),
            Cell::from(format!("{serial_dt:?}")),
            Cell::from(format!("{parallel_dt:?}")),
            Cell::from(format!("{speedup:.2}x")),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["sources", "serial", "parallel", "speedup"], &rows)
    );

    println!("\nE8: consensus analysis complete.");
}
