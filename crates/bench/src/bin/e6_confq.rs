//! E6 — Theorem 5.1 / Definition 5.1: compositional vs exact confidence.
//!
//! The paper claims `confidence_Q(t) = conf_Q(t)` for relational-algebra
//! queries. The claim is exact for base relations and selections; for
//! projections and products the compositional rules assume event
//! independence, which possible-world correlations can violate. This
//! harness measures the deviation per operator class over random planted
//! collections.
//!
//! Run: `cargo run -p pscds-bench --release --bin e6_confq`

use pscds_bench::{markdown_table, Cell};
use pscds_core::answers::compare_on_query;
use pscds_core::confidence::PossibleWorlds;
use pscds_datagen::random_sources::{generate, RandomIdentityConfig};
use pscds_relational::algebra::{CmpOp, Operand, Predicate, RaExpr};
use pscds_relational::Value;

struct OperatorStats {
    label: &'static str,
    instances: usize,
    tuples: usize,
    disagreements: usize,
    max_error: f64,
    mean_error_sum: f64,
}

impl OperatorStats {
    fn new(label: &'static str) -> Self {
        OperatorStats {
            label,
            instances: 0,
            tuples: 0,
            disagreements: 0,
            max_error: 0.0,
            mean_error_sum: 0.0,
        }
    }
}

type QueryFactory = Box<dyn Fn() -> RaExpr>;

fn main() {
    let queries: Vec<(&'static str, QueryFactory)> = vec![
        ("base R", Box::new(|| RaExpr::rel("R"))),
        (
            "selection σ",
            Box::new(|| {
                RaExpr::rel("R").select(Predicate::Cmp(
                    Operand::Col(0),
                    CmpOp::Neq,
                    Operand::Const(Value::sym("u0")),
                ))
            }),
        ),
        (
            "projection π (to 0 cols)",
            Box::new(|| RaExpr::rel("R").project([])),
        ),
        (
            "product ×",
            Box::new(|| RaExpr::rel("R").product(RaExpr::rel("R"))),
        ),
        (
            "π over ×",
            Box::new(|| RaExpr::rel("R").product(RaExpr::rel("R")).project([0])),
        ),
        (
            "union ∪ (self)",
            Box::new(|| RaExpr::rel("R").union(RaExpr::rel("R"))),
        ),
    ];

    let mut stats: Vec<OperatorStats> =
        queries.iter().map(|(l, _)| OperatorStats::new(l)).collect();

    let mut skipped = 0usize;
    for seed in 0..25u64 {
        let cfg = RandomIdentityConfig {
            n_sources: 2,
            domain_size: 4,
            extension_density: 0.6,
            planted: true,
            world_density: 0.5,
            bound_denominator: 4,
            seed,
        };
        let scenario = generate(&cfg).expect("valid config");
        let worlds = PossibleWorlds::enumerate(&scenario.collection, &scenario.domain)
            .expect("small universe");
        if !worlds.is_consistent() {
            skipped += 1;
            continue;
        }
        for ((_, make_query), stat) in queries.iter().zip(stats.iter_mut()) {
            let cmp = compare_on_query(&worlds, &make_query()).expect("consistent");
            stat.instances += 1;
            stat.tuples += cmp.tuples.len();
            stat.disagreements += cmp.disagreements();
            stat.max_error = stat.max_error.max(cmp.max_error());
            stat.mean_error_sum += cmp.mean_error();
        }
    }

    println!("E6  conf_Q (Definition 5.1) vs exact confidence_Q, per operator class");
    println!("    (25 random planted collections, domain 4, 2 sources; {skipped} skipped)\n");
    let rows: Vec<Vec<Cell>> = stats
        .iter()
        .map(|s| {
            vec![
                Cell::from(s.label),
                Cell::from(s.tuples),
                Cell::from(s.disagreements),
                Cell::from(format!("{:.4}", s.max_error)),
                Cell::from(format!(
                    "{:.4}",
                    s.mean_error_sum / s.instances.max(1) as f64
                )),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["operator", "tuples", "disagreements", "max |Δ|", "mean |Δ|"],
            &rows
        )
    );

    // The structural guarantees: base relations and selections are exact.
    assert_eq!(
        stats[0].disagreements, 0,
        "base-relation confidence must be exact"
    );
    assert_eq!(
        stats[1].disagreements, 0,
        "selection confidence must be exact"
    );

    // ── The cause, quantified: pairwise possible-world correlations ────
    // Definition 5.1's product rule writes Pr(t ∧ t') = Pr(t)·Pr(t');
    // the exact joint confidence shows how far that is from true, on the
    // paper's own Example 5.1.
    use pscds_core::confidence::ConfidenceAnalysis;
    use pscds_core::paper::example_5_1;
    println!("\nE6.2  Joint vs independent confidence on Example 5.1 (m = 2):\n");
    let identity = example_5_1().as_identity().expect("identity");
    let analysis = ConfidenceAnalysis::analyze(&identity, 2);
    let mut rows = Vec::new();
    for (x, y) in [("a", "b"), ("a", "c"), ("b", "c")] {
        let cx = analysis
            .confidence_of_tuple(&identity, &[Value::sym(x)])
            .expect("consistent");
        let cy = analysis
            .confidence_of_tuple(&identity, &[Value::sym(y)])
            .expect("consistent");
        let joint = analysis
            .joint_confidence_of(&identity, &[Value::sym(x)], &[Value::sym(y)])
            .expect("consistent");
        let indep = cx.mul(&cy);
        rows.push(vec![
            Cell::from(format!("({x}, {y})")),
            Cell::from(joint.to_string()),
            Cell::from(indep.to_string()),
            Cell::from(format!("{:+.4}", joint.to_f64() - indep.to_f64())),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["pair", "Pr(t ∧ t') exact", "Pr(t)·Pr(t')", "covariance"],
            &rows
        )
    );

    println!("\nE6: base/selection exactness confirmed; π and × deviations quantified above.");
    println!("    (Theorem 5.1 as stated holds under event independence; the measured");
    println!("    deviations and covariances show where possible-world correlations violate it.)");
}
