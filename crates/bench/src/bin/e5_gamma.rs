//! E5 — the linear system Γ of Section 5.1, made executable.
//!
//! Materializes Γ exactly as the paper writes it (two scaled inequalities
//! per source over 0/1 fact indicators), counts its solutions by brute
//! force, and shows the crossover against the signature counter: the
//! brute force is `Θ(2^N)` in the number of potential facts, the
//! signature counter is polynomial in the data for a fixed number of
//! sources.
//!
//! Run: `cargo run -p pscds-bench --release --bin e5_gamma`

use pscds_bench::{markdown_table, ubig_brief, Cell};
use pscds_core::confidence::{ConfidenceAnalysis, LinearSystem};
use pscds_core::paper::{example_5_1, example_5_1_domain};
use pscds_datagen::random_sources::{generate, RandomIdentityConfig};
use pscds_numeric::UBig;
use std::time::Instant;

fn main() {
    let identity = example_5_1().as_identity().expect("identity views");

    // ── (a) The system itself ─────────────────────────────────────────
    println!("E5.1  Γ for Example 5.1, m = 2 (coefficients as the paper scales them):\n");
    let gamma = LinearSystem::from_identity(&identity, &example_5_1_domain(2)).expect("valid");
    for ineq in gamma.inequalities() {
        println!("  {:<32} {:?} ≥ {}", ineq.label, ineq.coeffs, ineq.rhs);
    }
    println!(
        "\n  variables: {} (one per potential fact)\n",
        gamma.n_vars()
    );

    // ── (b) Counts agree with the signature counter ───────────────────
    println!("E5.2  N_sol(Γ) cross-check (brute force vs signature counter):\n");
    let mut rows = Vec::new();
    for m in [0usize, 4, 8, 12, 16, 20] {
        let domain = example_5_1_domain(m);
        let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid");
        let t = Instant::now();
        let brute = gamma.count_solutions().expect("within cap");
        let brute_time = t.elapsed();
        let t = Instant::now();
        let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);
        let sig_time = t.elapsed();
        assert_eq!(analysis.world_count(), &UBig::from(brute), "m = {m}");
        rows.push(vec![
            Cell::from(gamma.n_vars()),
            Cell::from(brute),
            Cell::from(format!("{brute_time:?}")),
            Cell::from(format!("{sig_time:?}")),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["N (vars)", "N_sol(Γ)", "brute force", "signature"], &rows)
    );

    // ── (c) Crossover on random instances ─────────────────────────────
    println!("\nE5.3  Scaling on random planted collections (3 sources):\n");
    let mut rows = Vec::new();
    for domain_size in [8usize, 12, 16, 20, 24, 200, 2_000] {
        let cfg = RandomIdentityConfig {
            n_sources: 3,
            domain_size,
            extension_density: 0.3_f64.min(6.0 / domain_size as f64),
            planted: true,
            world_density: 0.5,
            bound_denominator: 4,
            seed: domain_size as u64,
        };
        let scenario = generate(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let padding = scenario.domain.len() as u64 - identity.all_tuples().len() as u64;
        let brute = if domain_size <= 24 {
            let gamma = LinearSystem::from_identity(&identity, &scenario.domain).expect("valid");
            let t = Instant::now();
            let count = gamma.count_solutions().expect("within cap");
            let dt = t.elapsed();
            // Cross-check while we have both.
            let analysis = ConfidenceAnalysis::analyze(&identity, padding);
            assert_eq!(
                analysis.world_count(),
                &UBig::from(count),
                "domain {domain_size}"
            );
            format!("{dt:?}")
        } else {
            "(2^N too large)".to_owned()
        };
        let t = Instant::now();
        let analysis = ConfidenceAnalysis::analyze(&identity, padding);
        let sig_time = t.elapsed();
        rows.push(vec![
            Cell::from(domain_size),
            Cell::from(ubig_brief(analysis.world_count())),
            Cell::from(brute),
            Cell::from(format!("{sig_time:?}")),
            Cell::from(analysis.feasible_vectors()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "domain",
                "N_sol(Γ)",
                "brute force",
                "signature",
                "feasible vectors"
            ],
            &rows
        )
    );

    println!("\nE5: all counts agreed.");
}
