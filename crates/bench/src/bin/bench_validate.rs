//! Schema checker for the benchmark artifacts and `--trace-out` traces.
//!
//! Modes:
//!
//! * `bench_validate PATH` — `PATH` is a `BENCH_confidence.json` array;
//!   every record must satisfy the [`pscds_bench::schema`] contract.
//! * `bench_validate --history PATH` — `PATH` is a `BENCH_history.jsonl`
//!   append log; every line must be one schema-valid record.
//! * `bench_validate --jsonl PATH` — `PATH` is an observability trace;
//!   every line must parse as a JSON object with a known `type`
//!   (`span` / `counter` / `gauge` / `event`).
//! * `bench_validate --counters PATH` — reads a trace and prints the
//!   counter totals as sorted `name value` lines: a deterministic
//!   digest the CI diffs between serial and multi-threaded runs.
//!
//! Exits non-zero (with the offending line) on any violation.

use pscds_bench::schema::{parse_history_line, parse_json, parse_records, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [path] => ("records", path.as_str()),
        [flag, path] if flag == "--history" => ("history", path.as_str()),
        [flag, path] if flag == "--jsonl" => ("jsonl", path.as_str()),
        [flag, path] if flag == "--counters" => ("counters", path.as_str()),
        _ => {
            eprintln!("usage: bench_validate [--history | --jsonl | --counters] PATH");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match mode {
        "records" => validate_records(&text),
        "history" => validate_history(&text),
        "jsonl" => validate_trace(&text),
        _ => print_counters(&text),
    };
    match result {
        Ok(summary) => {
            if !summary.is_empty() {
                println!("{summary}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_validate: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn validate_records(text: &str) -> Result<String, String> {
    let records = parse_records(text)?;
    if records.is_empty() {
        return Err("no records".to_owned());
    }
    Ok(format!("ok: {} schema-valid records", records.len()))
}

fn validate_history(text: &str) -> Result<String, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse_history_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        count += 1;
    }
    if count == 0 {
        return Err("no history lines".to_owned());
    }
    Ok(format!("ok: {count} schema-valid history lines"))
}

/// The record types [`pscds_core::obs::render_record`] can emit.
const TRACE_TYPES: [&str; 4] = ["span", "counter", "gauge", "event"];

fn validate_trace(text: &str) -> Result<String, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = value
            .field("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", i + 1))?;
        if !TRACE_TYPES.contains(&kind) {
            return Err(format!("line {}: unknown record type {kind:?}", i + 1));
        }
        count += 1;
    }
    if count == 0 {
        return Err("no trace lines".to_owned());
    }
    Ok(format!("ok: {count} trace lines"))
}

fn print_counters(text: &str) -> Result<String, String> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if value.field("type").and_then(Json::as_str) != Some("counter") {
            continue;
        }
        let name = value
            .field("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: counter without a name", i + 1))?;
        let count = value
            .field("value")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: counter without a value", i + 1))?;
        let slot = totals.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(count);
    }
    let mut out = String::new();
    for (name, total) in &totals {
        out.push_str(&format!("{name} {total}\n"));
    }
    print!("{out}");
    Ok(String::new())
}
