//! Schema checker for the benchmark artifacts and `--trace-out` traces.
//!
//! Modes:
//!
//! * `bench_validate PATH` — `PATH` is a `BENCH_confidence.json` array;
//!   every record must satisfy the [`pscds_bench::schema`] contract.
//! * `bench_validate --history PATH` — `PATH` is a `BENCH_history.jsonl`
//!   append log; every line must be one schema-valid record.
//! * `bench_validate --regress PATH [PCT]` — reads a history log, groups
//!   records by `(engine, m)`, and compares the newest `wall_ns` per
//!   group against the previous one; exits non-zero when any group
//!   slowed down by more than `PCT` percent (default 25).
//! * `bench_validate --jsonl PATH` — `PATH` is an observability trace;
//!   the first line must be the `{"pscds_trace":1}` header and every
//!   later line must parse as a JSON object with a known `type`
//!   (`span` / `counter` / `gauge` / `histogram` / `exemplar` / `event`).
//! * `bench_validate --counters PATH` — reads a trace (header required)
//!   and prints the counter totals as sorted `name value` lines: a
//!   deterministic digest the CI diffs between serial and
//!   multi-threaded runs.
//!
//! Exits non-zero (with the offending line) on any violation.

use pscds_bench::schema::{parse_history_line, parse_json, parse_records, Json};
use pscds_core::obs::TRACE_VERSION;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path, threshold) = match args.as_slice() {
        [path] => ("records", path.as_str(), 0),
        [flag, path] if flag == "--history" => ("history", path.as_str(), 0),
        [flag, path] if flag == "--jsonl" => ("jsonl", path.as_str(), 0),
        [flag, path] if flag == "--counters" => ("counters", path.as_str(), 0),
        [flag, path] if flag == "--regress" => ("regress", path.as_str(), 25),
        [flag, path, pct] if flag == "--regress" => match pct.parse::<u64>() {
            Ok(pct) => ("regress", path.as_str(), pct),
            Err(_) => {
                eprintln!("bench_validate: threshold {pct:?} is not a percentage");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!(
                "usage: bench_validate [--history | --regress [PCT] | --jsonl | --counters] PATH"
            );
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match mode {
        "records" => validate_records(&text),
        "history" => validate_history(&text),
        "regress" => check_regressions(&text, threshold),
        "jsonl" => validate_trace(&text),
        _ => print_counters(&text),
    };
    match result {
        Ok(summary) => {
            if !summary.is_empty() {
                println!("{summary}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_validate: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn validate_records(text: &str) -> Result<String, String> {
    let records = parse_records(text)?;
    if records.is_empty() {
        return Err("no records".to_owned());
    }
    Ok(format!("ok: {} schema-valid records", records.len()))
}

fn validate_history(text: &str) -> Result<String, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse_history_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        count += 1;
    }
    if count == 0 {
        return Err("no history lines".to_owned());
    }
    Ok(format!("ok: {count} schema-valid history lines"))
}

/// Compares the newest history record per `(engine, m)` benchmark id
/// against the previous one and flags wall-clock regressions beyond
/// `threshold_pct` percent. Groups with fewer than two records pass
/// trivially (nothing to compare yet).
fn check_regressions(text: &str, threshold_pct: u64) -> Result<String, String> {
    let mut groups: BTreeMap<(String, u64), Vec<u128>> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_history_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        groups
            .entry((record.engine.clone(), record.m))
            .or_default()
            .push(record.wall_ns);
    }
    if groups.is_empty() {
        return Err("no history lines".to_owned());
    }
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for ((engine, m), walls) in &groups {
        let [.., old, new] = walls.as_slice() else {
            continue;
        };
        compared += 1;
        // new > old * (1 + pct/100), in integer arithmetic.
        if *new * 100 > *old * u128::from(100 + threshold_pct) {
            regressions.push(format!(
                "{engine}/m={m}: wall_ns {old} -> {new} (> +{threshold_pct}%)"
            ));
        }
    }
    if !regressions.is_empty() {
        return Err(format!(
            "{} wall-clock regression(s):\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ));
    }
    Ok(format!(
        "ok: {compared} of {} benchmark id(s) have history pairs, none regressed beyond +{threshold_pct}%",
        groups.len()
    ))
}

/// The record types [`pscds_core::obs::render_record`] can emit after
/// the header line.
const TRACE_TYPES: [&str; 6] = ["span", "counter", "gauge", "histogram", "exemplar", "event"];

/// `true` when a parsed trace line is a `{"pscds_trace":N}` header.
/// Experiment binaries append one session per scale to a single trace
/// file, so headers may recur mid-file as segment boundaries.
fn is_header(value: &Json) -> bool {
    value.field("pscds_trace").is_some()
}

/// Checks that the first non-blank line is the `{"pscds_trace":1}`
/// schema header; returns the header's line index.
fn require_header(text: &str) -> Result<usize, String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let version = parse_json(line)
            .ok()
            .and_then(|v| v.field("pscds_trace").and_then(Json::as_u64));
        return match version {
            Some(v) if v == TRACE_VERSION => Ok(i),
            Some(v) => Err(format!(
                "line {}: trace schema version {v} is not supported (expected {TRACE_VERSION})",
                i + 1
            )),
            None => Err(format!(
                "line {}: missing {{\"pscds_trace\":{TRACE_VERSION}}} header: this looks like a \
                 legacy trace written before the schema header existed — re-record it with a \
                 current binary",
                i + 1
            )),
        };
    }
    Err("empty trace (no header line)".to_owned())
}

fn validate_trace(text: &str) -> Result<String, String> {
    let header_at = require_header(text)?;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if i <= header_at || line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if is_header(&value) {
            continue;
        }
        let kind = value
            .field("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", i + 1))?;
        if !TRACE_TYPES.contains(&kind) {
            return Err(format!("line {}: unknown record type {kind:?}", i + 1));
        }
        count += 1;
    }
    if count == 0 {
        return Err("no trace lines".to_owned());
    }
    Ok(format!("ok: {count} trace lines"))
}

fn print_counters(text: &str) -> Result<String, String> {
    let header_at = require_header(text)?;
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if i <= header_at || line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if is_header(&value) || value.field("type").and_then(Json::as_str) != Some("counter") {
            continue;
        }
        let name = value
            .field("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: counter without a name", i + 1))?;
        let count = value
            .field("value")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: counter without a value", i + 1))?;
        let slot = totals.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(count);
    }
    let mut out = String::new();
    for (name, total) in &totals {
        out.push_str(&format!("{name} {total}\n"));
    }
    print!("{out}");
    Ok(String::new())
}
