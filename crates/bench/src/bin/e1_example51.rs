//! E1 — Example 5.1: tuple confidences as a function of the domain
//! padding `m`.
//!
//! Reproduces the paper's only printed numbers. Three independent exact
//! engines (possible-world oracle, explicit Γ counter, signature counter)
//! are cross-checked, then compared against the paper's closed forms and
//! our re-derived ones. See EXPERIMENTS.md for the documented erratum
//! (the paper's denominator `2m+3` vs the exact `2m+5`).
//!
//! Run: `cargo run -p pscds-bench --release --bin e1_example51`

use pscds_bench::{markdown_table, Cell};
use pscds_core::confidence::closed_form::{
    derived_confidence, derived_world_count, paper_confidence, paper_world_count, Example51Fact,
};
use pscds_core::confidence::{ConfidenceAnalysis, LinearSystem, PossibleWorlds};
use pscds_core::govern::Budget;
use pscds_core::paper::{example_5_1, example_5_1_domain};
use pscds_core::ParallelConfig;
use pscds_relational::{Fact, Value};
use std::time::Instant;

fn main() {
    let collection = example_5_1();
    let identity = collection.as_identity().expect("identity views");

    // ── Table 1: confidences, paper vs derived vs computed ────────────
    println!("E1.1  Example 5.1 confidences (computed = signature counter, exact):\n");
    let mut rows = Vec::new();
    for m in [0u64, 1, 2, 5, 10, 100] {
        let analysis = ConfidenceAnalysis::analyze(&identity, m);
        let conf = |sym: &str| {
            analysis
                .confidence_of_tuple(&identity, &[Value::sym(sym)])
                .expect("consistent")
        };
        rows.push(vec![
            Cell::from(m),
            Cell::from(format!(
                "{} (paper: {})",
                derived_world_count(m),
                paper_world_count(m)
            )),
            Cell::from(format!(
                "{} (paper: {})",
                conf("a"),
                paper_confidence(Example51Fact::A, m)
            )),
            Cell::from(format!(
                "{} (paper: {})",
                conf("b"),
                paper_confidence(Example51Fact::B, m)
            )),
            Cell::from(if m > 0 {
                format!(
                    "{} (paper: {})",
                    analysis.padding_confidence().expect("padding exists"),
                    paper_confidence(Example51Fact::D, m)
                )
            } else {
                "-".to_owned()
            }),
        ]);
        // The derived closed forms must match the computed values exactly.
        assert_eq!(conf("a"), derived_confidence(Example51Fact::A, m));
        assert_eq!(conf("b"), derived_confidence(Example51Fact::B, m));
        assert_eq!(conf("c"), derived_confidence(Example51Fact::C, m));
    }
    println!(
        "{}",
        markdown_table(
            &["m", "|poss(S)|", "conf(R(a))", "conf(R(b))", "conf(R(d_i))"],
            &rows
        )
    );

    // ── Table 2: three-engine agreement on small m ────────────────────
    println!("\nE1.2  Engine agreement (m ≤ 3; all values must be identical):\n");
    let mut rows = Vec::new();
    for m in 0..=3usize {
        let domain = example_5_1_domain(m);
        let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small universe");
        let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid domain");
        let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);
        let fact = Fact::new("R", [Value::sym("b")]);
        let w = worlds.fact_confidence(&fact).expect("consistent");
        let g = gamma
            .confidence(gamma.var_of(&fact).expect("in domain"))
            .expect("consistent");
        let s = analysis
            .confidence_of_tuple(&identity, &[Value::sym("b")])
            .expect("consistent");
        assert_eq!(w, g);
        assert_eq!(w, s);
        rows.push(vec![
            Cell::from(m),
            Cell::from(worlds.count()),
            Cell::from(w.to_string()),
            Cell::from(g.to_string()),
            Cell::from(s.to_string()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "m",
                "worlds",
                "oracle conf(b)",
                "Γ conf(b)",
                "signature conf(b)"
            ],
            &rows
        )
    );

    // ── Table 3: asymptotics (paper's qualitative claim) ──────────────
    println!("\nE1.3  Asymptotics: conf(b) → 1, conf(a) → 1/2, conf(d) → 0:\n");
    let mut rows = Vec::new();
    for m in [10u64, 1_000, 100_000, 10_000_000] {
        let analysis = ConfidenceAnalysis::analyze(&identity, m);
        let c = |sym: &str| {
            analysis
                .confidence_of_tuple(&identity, &[Value::sym(sym)])
                .expect("consistent")
                .to_f64()
        };
        rows.push(vec![
            Cell::from(m),
            Cell::from(format!("{:.7}", c("b"))),
            Cell::from(format!("{:.7}", c("a"))),
            Cell::from(format!(
                "{:.7}",
                analysis.padding_confidence().expect("padding").to_f64()
            )),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["m", "conf(b)", "conf(a)", "conf(d_i)"], &rows)
    );

    // ── Table 4: scaling — naive engines die, signature engine scales ─
    println!("\nE1.4  Time to compute conf(b) (naive engines capped at small m):\n");
    let mut rows = Vec::new();
    for m in [1usize, 5, 10, 14, 1_000, 1_000_000] {
        let domain = example_5_1_domain(m);
        let oracle_time = if m <= 14 {
            let t = Instant::now();
            let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small");
            let _ = worlds.fact_confidence(&Fact::new("R", [Value::sym("b")]));
            format!("{:?}", t.elapsed())
        } else {
            "(2^N too large)".to_owned()
        };
        let gamma_time = if m <= 14 {
            let t = Instant::now();
            let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid");
            let _ = gamma.confidence(
                gamma
                    .var_of(&Fact::new("R", [Value::sym("b")]))
                    .expect("in"),
            );
            format!("{:?}", t.elapsed())
        } else {
            "(2^N too large)".to_owned()
        };
        let t = Instant::now();
        let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);
        let _ = analysis.confidence_of_tuple(&identity, &[Value::sym("b")]);
        let sig_time = format!("{:?}", t.elapsed());
        rows.push(vec![
            Cell::from(m),
            Cell::from(oracle_time),
            Cell::from(gamma_time),
            Cell::from(sig_time),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["m", "world oracle", "Γ brute force", "signature counter"],
            &rows
        )
    );

    // ── Table 5: parallel counter cross-check ─────────────────────────
    println!("\nE1.5  Parallel signature counter (must be bit-identical to serial):\n");
    let mut rows = Vec::new();
    for m in [1u64, 100, 10_000] {
        let serial = ConfidenceAnalysis::analyze(&identity, m);
        let mut cells = vec![Cell::from(m)];
        for threads in [2usize, 8] {
            let config = ParallelConfig::with_threads(threads);
            let par =
                ConfidenceAnalysis::analyze_parallel(&identity, m, &Budget::unlimited(), &config)
                    .expect("unlimited budget");
            assert_eq!(par.world_count(), serial.world_count(), "m={m} t={threads}");
            for sym in ["a", "b", "c"] {
                assert_eq!(
                    par.confidence_of_tuple(&identity, &[Value::sym(sym)])
                        .expect("consistent"),
                    serial
                        .confidence_of_tuple(&identity, &[Value::sym(sym)])
                        .expect("consistent"),
                    "conf({sym}) m={m} t={threads}"
                );
            }
            cells.push(Cell::from(format!(
                "identical ({} worlds)",
                par.world_count()
            )));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(&["m", "2 threads", "8 threads"], &rows)
    );

    println!("\nE1: all cross-checks passed.");
}
