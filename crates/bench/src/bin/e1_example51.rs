//! E1 — Example 5.1: tuple confidences as a function of the domain
//! padding `m`.
//!
//! Reproduces the paper's only printed numbers. Three independent exact
//! engines (possible-world oracle, explicit Γ counter, signature counter)
//! are cross-checked, then compared against the paper's closed forms and
//! our re-derived ones. See EXPERIMENTS.md for the documented erratum
//! (the paper's denominator `2m+3` vs the exact `2m+5`).
//!
//! Run: `cargo run -p pscds-bench --release --bin e1_example51`

use pscds_bench::schema::{render_records, BenchRecord};
use pscds_bench::{markdown_table, Cell};
use pscds_core::confidence::closed_form::{
    derived_confidence, derived_world_count, paper_confidence, paper_world_count, Example51Fact,
};
use pscds_core::confidence::{
    count_dp_observed, ConfidenceAnalysis, DpConfig, LinearSystem, PossibleWorlds,
    SignatureAnalysis,
};
use pscds_core::govern::Budget;
use pscds_core::obs::{JsonlSink, MetricSet, ObsSession};
use pscds_core::paper::{example_5_1, example_5_1_domain, example_5_1_scaled};
use pscds_core::ParallelConfig;
use pscds_relational::{Fact, Value};
use std::io::Write as _;
use std::time::Instant;

fn main() {
    // `--dp-scale-max N` caps the E1.6 scaling ladder (the CI smoke run
    // uses 4; the default ladder is sized for an interactive run).
    // `--threads N` runs the instrumented DP through the work-partitioned
    // route; `--trace-out PATH` streams each run's spans, counters, and
    // events as JSONL (the same sink the `pscds` CLI exposes).
    let mut dp_scale_max = 128usize;
    let mut threads = 1usize;
    let mut trace_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dp-scale-max" => {
                dp_scale_max = it
                    .next()
                    .expect("--dp-scale-max needs a value")
                    .parse()
                    .expect("--dp-scale-max needs a number");
            }
            "--threads" => {
                threads = it
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads needs a number");
            }
            "--trace-out" => {
                trace_out = Some(it.next().expect("--trace-out needs a path").clone());
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let trace_file = trace_out
        .as_deref()
        .map(|path| std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}")));

    let collection = example_5_1();
    let identity = collection.as_identity().expect("identity views");

    // ── Table 1: confidences, paper vs derived vs computed ────────────
    println!("E1.1  Example 5.1 confidences (computed = signature counter, exact):\n");
    let mut rows = Vec::new();
    for m in [0u64, 1, 2, 5, 10, 100] {
        let analysis = ConfidenceAnalysis::analyze(&identity, m);
        let conf = |sym: &str| {
            analysis
                .confidence_of_tuple(&identity, &[Value::sym(sym)])
                .expect("consistent")
        };
        rows.push(vec![
            Cell::from(m),
            Cell::from(format!(
                "{} (paper: {})",
                derived_world_count(m),
                paper_world_count(m)
            )),
            Cell::from(format!(
                "{} (paper: {})",
                conf("a"),
                paper_confidence(Example51Fact::A, m)
            )),
            Cell::from(format!(
                "{} (paper: {})",
                conf("b"),
                paper_confidence(Example51Fact::B, m)
            )),
            Cell::from(if m > 0 {
                format!(
                    "{} (paper: {})",
                    analysis.padding_confidence().expect("padding exists"),
                    paper_confidence(Example51Fact::D, m)
                )
            } else {
                "-".to_owned()
            }),
        ]);
        // The derived closed forms must match the computed values exactly.
        assert_eq!(conf("a"), derived_confidence(Example51Fact::A, m));
        assert_eq!(conf("b"), derived_confidence(Example51Fact::B, m));
        assert_eq!(conf("c"), derived_confidence(Example51Fact::C, m));
    }
    println!(
        "{}",
        markdown_table(
            &["m", "|poss(S)|", "conf(R(a))", "conf(R(b))", "conf(R(d_i))"],
            &rows
        )
    );

    // ── Table 2: three-engine agreement on small m ────────────────────
    println!("\nE1.2  Engine agreement (m ≤ 3; all values must be identical):\n");
    let mut rows = Vec::new();
    for m in 0..=3usize {
        let domain = example_5_1_domain(m);
        let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small universe");
        let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid domain");
        let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);
        let fact = Fact::new("R", [Value::sym("b")]);
        let w = worlds.fact_confidence(&fact).expect("consistent");
        let g = gamma
            .confidence(gamma.var_of(&fact).expect("in domain"))
            .expect("consistent");
        let s = analysis
            .confidence_of_tuple(&identity, &[Value::sym("b")])
            .expect("consistent");
        assert_eq!(w, g);
        assert_eq!(w, s);
        rows.push(vec![
            Cell::from(m),
            Cell::from(worlds.count()),
            Cell::from(w.to_string()),
            Cell::from(g.to_string()),
            Cell::from(s.to_string()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "m",
                "worlds",
                "oracle conf(b)",
                "Γ conf(b)",
                "signature conf(b)"
            ],
            &rows
        )
    );

    // ── Table 3: asymptotics (paper's qualitative claim) ──────────────
    println!("\nE1.3  Asymptotics: conf(b) → 1, conf(a) → 1/2, conf(d) → 0:\n");
    let mut rows = Vec::new();
    for m in [10u64, 1_000, 100_000, 10_000_000] {
        let analysis = ConfidenceAnalysis::analyze(&identity, m);
        let c = |sym: &str| {
            analysis
                .confidence_of_tuple(&identity, &[Value::sym(sym)])
                .expect("consistent")
                .to_f64()
        };
        rows.push(vec![
            Cell::from(m),
            Cell::from(format!("{:.7}", c("b"))),
            Cell::from(format!("{:.7}", c("a"))),
            Cell::from(format!(
                "{:.7}",
                analysis.padding_confidence().expect("padding").to_f64()
            )),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["m", "conf(b)", "conf(a)", "conf(d_i)"], &rows)
    );

    // ── Table 4: scaling — naive engines die, signature engine scales ─
    println!("\nE1.4  Time to compute conf(b) (naive engines capped at small m):\n");
    let mut rows = Vec::new();
    for m in [1usize, 5, 10, 14, 1_000, 1_000_000] {
        let domain = example_5_1_domain(m);
        let oracle_time = if m <= 14 {
            let t = Instant::now();
            let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small");
            let _ = worlds.fact_confidence(&Fact::new("R", [Value::sym("b")]));
            format!("{:?}", t.elapsed())
        } else {
            "(2^N too large)".to_owned()
        };
        let gamma_time = if m <= 14 {
            let t = Instant::now();
            let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid");
            let _ = gamma.confidence(
                gamma
                    .var_of(&Fact::new("R", [Value::sym("b")]))
                    .expect("in"),
            );
            format!("{:?}", t.elapsed())
        } else {
            "(2^N too large)".to_owned()
        };
        let t = Instant::now();
        let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);
        let _ = analysis.confidence_of_tuple(&identity, &[Value::sym("b")]);
        let sig_time = format!("{:?}", t.elapsed());
        rows.push(vec![
            Cell::from(m),
            Cell::from(oracle_time),
            Cell::from(gamma_time),
            Cell::from(sig_time),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["m", "world oracle", "Γ brute force", "signature counter"],
            &rows
        )
    );

    // ── Table 5: parallel counter cross-check ─────────────────────────
    println!("\nE1.5  Parallel signature counter (must be bit-identical to serial):\n");
    let mut rows = Vec::new();
    for m in [1u64, 100, 10_000] {
        let serial = ConfidenceAnalysis::analyze(&identity, m);
        let mut cells = vec![Cell::from(m)];
        for threads in [2usize, 8] {
            let config = ParallelConfig::with_threads(threads);
            let par =
                ConfidenceAnalysis::analyze_parallel(&identity, m, &Budget::unlimited(), &config)
                    .expect("unlimited budget");
            assert_eq!(par.world_count(), serial.world_count(), "m={m} t={threads}");
            for sym in ["a", "b", "c"] {
                assert_eq!(
                    par.confidence_of_tuple(&identity, &[Value::sym(sym)])
                        .expect("consistent"),
                    serial
                        .confidence_of_tuple(&identity, &[Value::sym(sym)])
                        .expect("consistent"),
                    "conf({sym}) m={m} t={threads}"
                );
            }
            cells.push(Cell::from(format!(
                "identical ({} worlds)",
                par.world_count()
            )));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(&["m", "2 threads", "8 threads"], &rows)
    );

    // ── Table 6: exact DFS vs memoized DP on the scaled family ────────
    // Plain Example 5.1 has singleton classes, so its DFS tree is
    // *constant* in the padding — it cannot separate counting engines.
    // `example_5_1_scaled(m)` replicates every extension tuple `m` times
    // (four signature classes of size `m`, padding `m`): the DFS tree
    // grows polynomially in `m` with a steep exponent, while the
    // residual-state DP revisits cached suffixes. Both must agree
    // bit-for-bit on every aggregate at every `m`.
    println!("\nE1.6  Exact DFS vs memoized DP, scaled Example 5.1 (bit-identical results):\n");
    let parallel = ParallelConfig::with_threads(threads);
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 16, 32, 64, 128] {
        if m > dp_scale_max {
            println!("(scales above {dp_scale_max} skipped: --dp-scale-max)");
            break;
        }
        let scaled = example_5_1_scaled(m);
        let sid = scaled.as_identity().expect("identity views");
        let padding = m as u64;

        let t = Instant::now();
        let dfs = ConfidenceAnalysis::analyze(&sid, padding);
        let dfs_ns = t.elapsed().as_nanos();

        // The instrumented run: chunk spans and counters stream to
        // `--trace-out` (when given) and aggregate in the session either
        // way; the benchmark record is built *from* those merged metrics.
        let mut obs = match &trace_file {
            Some(f) => ObsSession::with_sink(Box::new(JsonlSink::new(
                f.try_clone().expect("clone trace handle"),
            ))),
            None => ObsSession::in_memory(),
        };
        let budget = Budget::unlimited();
        let t = Instant::now();
        let (dp, stats) = count_dp_observed(
            SignatureAnalysis::new(&sid, padding),
            &budget,
            &parallel,
            &DpConfig::default(),
            &mut obs,
        )
        .expect("unlimited budget");
        let dp_ns = t.elapsed().as_nanos();
        let report = obs.finish();

        // The acceptance bar: bit-identical total, vector count, and
        // every per-tuple confidence (including the padding class).
        assert_eq!(dp.world_count(), dfs.world_count(), "total at m={m}");
        assert_eq!(dp.feasible_vectors(), dfs.feasible_vectors(), "m={m}");
        for tuple in sid.all_tuples() {
            assert_eq!(
                dp.confidence_of_tuple(&sid, &tuple).expect("consistent"),
                dfs.confidence_of_tuple(&sid, &tuple).expect("consistent"),
                "conf({tuple:?}) at m={m}"
            );
        }
        assert_eq!(
            dp.padding_confidence().expect("padding exists"),
            dfs.padding_confidence().expect("padding exists"),
            "padding confidence at m={m}"
        );

        // The registry totals must agree with the engine's own statistics
        // — the drift the shared schema exists to prevent.
        assert_eq!(
            report
                .metrics
                .counter(pscds_core::obs::names::DP_CACHE_HITS),
            stats.cache_hits,
            "registry drift at m={m}"
        );
        records.push(BenchRecord::from_metrics(
            "exact",
            m as u64,
            dfs_ns,
            &MetricSet::new(),
        ));
        records.push(BenchRecord::from_metrics(
            "dp",
            m as u64,
            dp_ns,
            &report.metrics,
        ));
        rows.push(vec![
            Cell::from(m),
            Cell::from(dfs.feasible_vectors()),
            Cell::from(format!(
                "{:?}",
                std::time::Duration::from_nanos(dfs_ns as u64)
            )),
            Cell::from(format!(
                "{:?}",
                std::time::Duration::from_nanos(dp_ns as u64)
            )),
            Cell::from(format!("{:.1}×", dfs_ns as f64 / dp_ns.max(1) as f64)),
            Cell::from(format!("{}/{}", stats.cache_hits, stats.cache_misses)),
            Cell::from(stats.peak_cache_entries),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "m",
                "vectors",
                "exact DFS",
                "memoized DP",
                "speedup",
                "hits/misses",
                "peak cache"
            ],
            &rows
        )
    );
    let json_path = "BENCH_confidence.json";
    std::fs::write(json_path, render_records(&records)).expect("write benchmark JSON");
    println!("\nwrote {json_path} ({} records)", records.len());

    // The history log is append-only: one line per record per run, so
    // regressions stay diffable across sessions.
    let history_path = "BENCH_history.jsonl";
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history_path)
        .unwrap_or_else(|e| panic!("open {history_path}: {e}"));
    for r in &records {
        writeln!(history, "{}", r.to_json()).expect("append history");
    }
    println!("appended {} records to {history_path}", records.len());

    println!("\nE1: all cross-checks passed.");
}
