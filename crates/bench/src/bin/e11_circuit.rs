//! E11 — compile-once / query-many: the compiled confidence circuit
//! against a fresh residual-state DP per query.
//!
//! The workload is a stream of repeated per-tuple confidence queries
//! over one fixed collection (the `pscds_datagen` symmetric family, the
//! shape whose source-swap automorphisms the compiler's residual-key
//! canonicalization exploits). The DP baseline pays its full recursion
//! on every query; the circuit route pays one compile + one arena
//! traversal on the first query (the `CompiledCollection` cache miss),
//! after which every repeated query is a cache hit that reads the
//! traversal's class confidence. Every answer is asserted bit-identical
//! between the two routes, and the amortized speedup at ≥ 100 queries
//! must clear 5× — the acceptance bar of the compile-once design.
//!
//! Run: `cargo run -p pscds-bench --release --bin e11_circuit`

use pscds_bench::schema::BenchRecord;
use pscds_bench::{markdown_table, Cell};
use pscds_core::confidence::{
    analyze_circuit, count_dp, CircuitConfig, CompiledCollection, DpConfig, SignatureAnalysis,
};
use pscds_core::govern::Budget;
use pscds_core::obs::MetricSet;
use pscds_datagen::symmetric::{generate, SymmetricConfig};
use pscds_numeric::RowCache;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    // `--queries N` sets the stream length (default 200; the ≥ 5×
    // amortized-speedup assertion is armed whenever N ≥ 100).
    let mut queries = 200usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--queries" => {
                queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("--queries needs a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let scenario = generate(&SymmetricConfig {
        n_sources: 3,
        tuples_per_source: 8,
        completeness: (1, 4),
        soundness: (1, 4),
        padding: 16,
        seed: 11,
    })
    .expect("valid symmetric config");
    let identity = scenario.collection.as_identity().expect("identity views");
    let padding = scenario.padding;
    let tuples: Vec<_> = identity.all_tuples().into_iter().collect();
    let budget = Budget::unlimited();

    println!(
        "E11  compile-once/query-many: {queries} repeated confidence queries over a \
         symmetric 3-source collection ({} tuples, padding {padding}):\n",
        tuples.len()
    );

    // ── Baseline: a fresh DP recursion per query ──────────────────────
    let t = Instant::now();
    let mut dp_answers = Vec::with_capacity(queries);
    for q in 0..queries {
        let tuple = &tuples[q % tuples.len()];
        let mut rows = RowCache::new();
        let (analysis, _stats) = count_dp(
            SignatureAnalysis::new(&identity, padding),
            &budget,
            &DpConfig::default(),
            &mut rows,
        )
        .expect("unlimited budget");
        dp_answers.push(
            analysis
                .confidence_of_tuple(&identity, tuple)
                .expect("consistent"),
        );
    }
    let dp_ns = t.elapsed().as_nanos();

    // ── Circuit: compile + traverse on the first query (the cache
    // miss), then every repeated query re-fetches the compiled circuit
    // and reads its class confidence — the compile-once discipline. ────
    let t = Instant::now();
    let mut cache = CompiledCollection::new();
    let mut analysis_once = None;
    let mut circuit_answers = Vec::with_capacity(queries);
    for q in 0..queries {
        let tuple = &tuples[q % tuples.len()];
        let circuit = cache
            .get_or_compile(&identity, padding, &budget, &CircuitConfig::default())
            .expect("unlimited budget");
        let analysis = analysis_once.get_or_insert_with(|| analyze_circuit(&circuit));
        circuit_answers.push(
            analysis
                .confidence_of_tuple(&identity, tuple)
                .expect("consistent"),
        );
    }
    let circuit_ns = t.elapsed().as_nanos();

    // The harness bar: every answer bit-identical to the DP's.
    assert_eq!(dp_answers, circuit_answers, "circuit diverged from the DP");
    assert_eq!(cache.misses(), 1, "one structural compile expected");
    assert_eq!(cache.hits(), queries as u64 - 1);

    let circuit = cache
        .get_or_compile(&identity, padding, &budget, &CircuitConfig::default())
        .expect("cached");
    let stats = circuit.stats();
    let speedup = dp_ns as f64 / circuit_ns.max(1) as f64;
    println!(
        "{}",
        markdown_table(
            &["route", "total wall", "per query", "notes"],
            &[
                vec![
                    Cell::from("dp (fresh per query)"),
                    Cell::from(format!(
                        "{:?}",
                        std::time::Duration::from_nanos(dp_ns as u64)
                    )),
                    Cell::from(format!(
                        "{:?}",
                        std::time::Duration::from_nanos((dp_ns / queries as u128) as u64)
                    )),
                    Cell::from("full recursion every time"),
                ],
                vec![
                    Cell::from("circuit (compile once)"),
                    Cell::from(format!(
                        "{:?}",
                        std::time::Duration::from_nanos(circuit_ns as u64)
                    )),
                    Cell::from(format!(
                        "{:?}",
                        std::time::Duration::from_nanos((circuit_ns / queries as u128) as u64)
                    )),
                    Cell::from(format!(
                        "{} hits / {} miss; {} nodes ({} exact, {} shared), {} edges",
                        cache.hits(),
                        cache.misses(),
                        stats.canonical_nodes,
                        stats.exact_nodes,
                        stats.shared_nodes,
                        stats.edges
                    )),
                ],
            ]
        )
    );
    println!("\namortized speedup: {speedup:.1}× over {queries} queries");
    if queries >= 100 {
        assert!(
            speedup >= 5.0,
            "compile-once/query-many must beat per-query DP by ≥ 5× at \
             {queries} queries (got {speedup:.1}×)"
        );
    }

    // One history record per route. The schema's cache columns carry
    // each route's own cache discipline: the DP columns stay zero (every
    // query rebuilt from scratch); the circuit row reports the
    // compiled-collection hit/miss totals and its arena high-water mark.
    let mut circuit_metrics = MetricSet::new();
    stats.record_into(&mut circuit_metrics);
    cache.record_into(&mut circuit_metrics);
    let records = [
        BenchRecord::from_metrics("dp_per_query", queries as u64, dp_ns, &MetricSet::new()),
        BenchRecord {
            engine: "circuit".to_owned(),
            m: queries as u64,
            wall_ns: circuit_ns,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            peak_cache_entries: circuit.node_count() as u64,
            fallback_nodes: 0,
            cross_subset_hits: 0,
        },
    ];
    let history_path = "BENCH_history.jsonl";
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history_path)
        .unwrap_or_else(|e| panic!("open {history_path}: {e}"));
    for r in &records {
        writeln!(history, "{}", r.to_json()).expect("append history");
    }
    println!("appended {} records to {history_path}", records.len());

    println!("\nE11: all cross-checks passed.");
}
