//! E9 (extension) — confidence decay under cache staleness.
//!
//! The Section 6 cache application made dynamic: an origin whose objects
//! churn each epoch, and caches holding snapshots of various *lags*. The
//! exact semantics then answers operational questions:
//!
//! * how fast do a lagging cache's measured completeness/soundness decay?
//! * given a fleet of caches at mixed lags, how well does tuple
//!   confidence identify the objects that are *currently* live?
//!
//! Run: `cargo run -p pscds-bench --release --bin e9_cache_lag`

use pscds_bench::{markdown_table, ubig_brief, Cell};
use pscds_core::confidence::ConfidenceAnalysis;
use pscds_datagen::cache_sim::{simulate, CacheSimConfig};
use pscds_numeric::Rational;
use pscds_relational::Value;

fn main() {
    // ── (a) Measure decay vs lag ──────────────────────────────────────
    println!("E9.1  Measured completeness/soundness vs cache lag (mean over 20 runs):\n");
    let epochs = 8usize;
    let mut rows = Vec::new();
    for lag in 0..epochs {
        let mut c_sum = 0.0;
        let mut s_sum = 0.0;
        let runs = 20u64;
        for seed in 0..runs {
            let h = simulate(&CacheSimConfig {
                initial_objects: 20,
                epochs,
                churn_delete: 0.12,
                churn_create: 3,
                seed,
            });
            let (c, s) = h.measures_at_lag(lag);
            c_sum += c.to_f64();
            s_sum += s.to_f64();
        }
        rows.push(vec![
            Cell::from(lag),
            Cell::from(format!("{:.3}", c_sum / runs as f64)),
            Cell::from(format!("{:.3}", s_sum / runs as f64)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["lag (epochs)", "mean completeness", "mean soundness"],
            &rows
        )
    );

    // ── (b) Live-object identification from a mixed-lag fleet ─────────
    println!("\nE9.2  Ranking live vs deleted objects from a mixed-lag cache fleet:\n");
    let mut rows = Vec::new();
    for lags in [vec![0usize], vec![2, 2], vec![1, 3, 5], vec![2, 4, 6, 7]] {
        let mut acc_sum = 0.0;
        let mut trials = 0usize;
        let mut worlds_product = String::new();
        for seed in 0..10u64 {
            let h = simulate(&CacheSimConfig {
                initial_objects: 14,
                epochs: 8,
                churn_delete: 0.15,
                churn_create: 2,
                seed: 100 + seed,
            });
            let Ok(collection) = h.caches_at_lags(&lags) else {
                continue;
            };
            let identity = collection.as_identity().expect("identity views");
            let analysis = ConfidenceAnalysis::analyze(&identity, 0);
            if !analysis.is_consistent() {
                continue;
            }
            if worlds_product.is_empty() {
                worlds_product = ubig_brief(analysis.world_count());
            }
            let current = h.current();
            // Objects some cache still holds but the origin deleted.
            let mentioned = identity.all_tuples();
            let conf_of = |v: &Value| -> Rational {
                let t = vec![*v];
                if identity.signature_of(&t) == 0 {
                    Rational::zero()
                } else {
                    analysis
                        .confidence_of_tuple(&identity, &t)
                        .expect("consistent")
                }
            };
            let mut wins = 0.0;
            let mut pairs = 0.0;
            for held in &mentioned {
                let obj = held[0];
                if current.contains(&obj) {
                    continue;
                }
                // deleted object: compare against every live object.
                for live in current {
                    let cl = conf_of(live);
                    let cd = conf_of(&obj);
                    pairs += 1.0;
                    if cl > cd {
                        wins += 1.0;
                    } else if cl == cd {
                        wins += 0.5;
                    }
                }
            }
            if pairs > 0.0 {
                acc_sum += wins / pairs;
                trials += 1;
            }
        }
        rows.push(vec![
            Cell::from(format!("{lags:?}")),
            Cell::from(trials),
            Cell::from(format!("{:.3}", acc_sum / trials.max(1) as f64)),
            Cell::from(worlds_product),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "cache lags",
                "trials",
                "live-vs-deleted ranking accuracy",
                "|poss| (sample)"
            ],
            &rows
        )
    );
    println!(
        "\n  Note: a fleet of *identical* lags can rank below 0.5 — objects deleted\n\
         since the shared snapshot sit in every cache (high confidence), while\n\
         objects created since sit in none (zero confidence). Lag *diversity*,\n\
         not cache count, is what recovers the live set; the [1,3,5] row shows it."
    );

    println!("\nE9: staleness decay and live-object ranking measured.");
}
