//! # pscds-bench
//!
//! Experiment harnesses and Criterion benchmarks reproducing every
//! quantitative artifact of the paper (experiments E1–E7; see DESIGN.md
//! for the index and EXPERIMENTS.md for the paper-vs-measured record).
//!
//! Each experiment has a binary (`cargo run -p pscds-bench --release
//! --bin eN_…`) that prints the tables, and a Criterion bench
//! (`cargo bench -p pscds-bench`) that measures the timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod schema;
pub mod trace;

pub use report::{markdown_table, ubig_brief, Cell};
pub use schema::{
    parse_history_line, parse_json, parse_records, render_records, BenchRecord, Json,
};
pub use trace::{diff_reports, parse_trace, render_diff, DiffRow, TraceError};
