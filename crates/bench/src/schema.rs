//! The `BENCH_confidence.json` record schema — defined **once**, here.
//!
//! Every producer (`e1_example51`) and consumer (`bench_validate`, the
//! CI bench smoke) goes through [`BenchRecord`], so the benchmark
//! artifact cannot drift between the writer and its checkers. Records
//! are built *from the metrics registry* ([`BenchRecord::from_metrics`])
//! rather than from ad-hoc struct plumbing: the counters a benchmark
//! reports are exactly the counters the engines emitted.
//!
//! The module also carries a small hand-rolled JSON reader (the
//! workspace's vendored `serde` is an offline stub with no JSON back
//! end): enough to validate `BENCH_confidence.json`, the appended
//! `BENCH_history.jsonl`, and `--trace-out` JSONL traces.

use pscds_core::obs::{names, MetricSet};
use std::fmt::Write as _;

/// The field names of one benchmark record, in serialization order.
pub const FIELDS: [&str; 8] = [
    "engine",
    "m",
    "wall_ns",
    "cache_hits",
    "cache_misses",
    "peak_cache_entries",
    "fallback_nodes",
    "cross_subset_hits",
];

/// One machine-readable benchmark record (a row of
/// `BENCH_confidence.json`, a line of `BENCH_history.jsonl`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Engine label (`"exact"`, `"dp"`, …).
    pub engine: String,
    /// Scale parameter of the instance (E1.6's padding `m`).
    pub m: u64,
    /// Wall-clock nanoseconds for the run.
    pub wall_ns: u128,
    /// `dp.cache_hits` counter total.
    pub cache_hits: u64,
    /// `dp.cache_misses` counter total.
    pub cache_misses: u64,
    /// `dp.cache_peak` gauge (0 when the engine kept no cache).
    pub peak_cache_entries: u64,
    /// `dp.fallback_nodes` counter total.
    pub fallback_nodes: u64,
    /// `dp.cross_subset_hits` counter total.
    pub cross_subset_hits: u64,
}

impl BenchRecord {
    /// Builds a record from a merged metric set — the only constructor
    /// the experiment binaries use, so the JSON columns always mirror
    /// the registry.
    #[must_use]
    pub fn from_metrics(engine: &str, m: u64, wall_ns: u128, metrics: &MetricSet) -> Self {
        BenchRecord {
            engine: engine.to_owned(),
            m,
            wall_ns,
            cache_hits: metrics.counter(names::DP_CACHE_HITS),
            cache_misses: metrics.counter(names::DP_CACHE_MISSES),
            peak_cache_entries: metrics.gauge(names::DP_CACHE_PEAK).unwrap_or(0),
            fallback_nodes: metrics.counter(names::DP_FALLBACK_NODES),
            cross_subset_hits: metrics.counter(names::DP_CROSS_SUBSET_HITS),
        }
    }

    /// One-line JSON object form (a `BENCH_history.jsonl` line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"engine\": \"{}\"", escape(&self.engine));
        let _ = write!(out, ", \"m\": {}", self.m);
        let _ = write!(out, ", \"wall_ns\": {}", self.wall_ns);
        let _ = write!(out, ", \"cache_hits\": {}", self.cache_hits);
        let _ = write!(out, ", \"cache_misses\": {}", self.cache_misses);
        let _ = write!(out, ", \"peak_cache_entries\": {}", self.peak_cache_entries);
        let _ = write!(out, ", \"fallback_nodes\": {}", self.fallback_nodes);
        let _ = write!(out, ", \"cross_subset_hits\": {}", self.cross_subset_hits);
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// Renders records as the pretty JSON array written to
/// `BENCH_confidence.json`.
#[must_use]
pub fn render_records(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Parses and schema-validates a `BENCH_confidence.json` array.
///
/// # Errors
/// Malformed JSON, a non-array root, or any record violating the schema
/// (missing/extra/mistyped fields).
pub fn parse_records(json: &str) -> Result<Vec<BenchRecord>, String> {
    let value = parse_json(json)?;
    let Json::Arr(items) = value else {
        return Err("BENCH_confidence.json root must be an array".to_owned());
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| record_from_json(item).map_err(|e| format!("record {i}: {e}")))
        .collect()
}

/// Parses and schema-validates one `BENCH_history.jsonl` line.
///
/// # Errors
/// As [`parse_records`], for a single object.
pub fn parse_history_line(line: &str) -> Result<BenchRecord, String> {
    record_from_json(&parse_json(line)?)
}

fn record_from_json(value: &Json) -> Result<BenchRecord, String> {
    let Json::Obj(fields) = value else {
        return Err("record must be an object".to_owned());
    };
    for (key, _) in fields {
        if !FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?}"));
        }
    }
    let get = |name: &str| -> Result<&Json, String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let str_field = |name: &str| -> Result<String, String> {
        match get(name)? {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("{name} must be a string, got {other:?}")),
        }
    };
    let u64_field = |name: &str| -> Result<u64, String> {
        match get(name)? {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{name} must be a non-negative integer, got {raw}")),
            other => Err(format!("{name} must be a number, got {other:?}")),
        }
    };
    let wall_ns = match get("wall_ns")? {
        Json::Num(raw) => raw
            .parse::<u128>()
            .map_err(|_| format!("wall_ns must be a non-negative integer, got {raw}"))?,
        other => return Err(format!("wall_ns must be a number, got {other:?}")),
    };
    Ok(BenchRecord {
        engine: str_field("engine")?,
        m: u64_field("m")?,
        wall_ns,
        cache_hits: u64_field("cache_hits")?,
        cache_misses: u64_field("cache_misses")?,
        peak_cache_entries: u64_field("peak_cache_entries")?,
        fallback_nodes: u64_field("fallback_nodes")?,
        cross_subset_hits: u64_field("cross_subset_hits")?,
    })
}

/// A parsed JSON value. Numbers keep their raw literal so `u128` widths
/// survive round trips.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw literal text.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object field.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is an integer in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// Any syntax error, with a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word} at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
    if raw.parse::<f64>().is_err() {
        return Err(format!("malformed number {raw:?} at byte {start}"));
    }
    Ok(Json::Num(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}", pos = *pos))?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a field name at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            engine: "dp".to_owned(),
            m: 8,
            wall_ns: 123_456,
            cache_hits: 10,
            cache_misses: 4,
            peak_cache_entries: 4,
            fallback_nodes: 0,
            cross_subset_hits: 0,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![sample(), {
            let mut r = sample();
            r.engine = "exact".to_owned();
            r.wall_ns = u128::from(u64::MAX) + 17;
            r
        }];
        let text = render_records(&records);
        assert_eq!(parse_records(&text).unwrap(), records);
    }

    #[test]
    fn history_lines_round_trip() {
        let r = sample();
        assert_eq!(parse_history_line(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn from_metrics_reads_the_registry() {
        let mut metrics = MetricSet::new();
        metrics.counter_add(names::DP_CACHE_HITS, 7);
        metrics.counter_add(names::DP_CACHE_MISSES, 3);
        metrics.counter_add(names::DP_CROSS_SUBSET_HITS, 2);
        metrics.gauge_max(names::DP_CACHE_PEAK, 5);
        let r = BenchRecord::from_metrics("dp", 4, 99, &metrics);
        assert_eq!(
            (
                r.cache_hits,
                r.cache_misses,
                r.peak_cache_entries,
                r.fallback_nodes,
                r.cross_subset_hits
            ),
            (7, 3, 5, 0, 2)
        );
    }

    #[test]
    fn schema_violations_are_rejected() {
        // Missing field.
        assert!(parse_records(r#"[{"engine": "dp"}]"#)
            .unwrap_err()
            .contains("missing field"));
        // Unknown field.
        let mut json = sample().to_json();
        json.insert_str(json.len() - 1, ", \"bogus\": 1");
        assert!(parse_history_line(&json)
            .unwrap_err()
            .contains("unknown field"));
        // Type error.
        let bad = sample().to_json().replace("\"m\": 8", "\"m\": \"eight\"");
        assert!(parse_history_line(&bad)
            .unwrap_err()
            .contains("must be a number"));
        // Negative count.
        let bad = sample()
            .to_json()
            .replace("\"cache_hits\": 10", "\"cache_hits\": -1");
        assert!(parse_history_line(&bad)
            .unwrap_err()
            .contains("non-negative"));
    }

    #[test]
    fn json_parser_handles_structure_and_escapes() {
        let v = parse_json(r#"{"a": [1, {"b": "x\ny"}, null, true], "c": 2.5}"#).unwrap();
        assert_eq!(
            v.field("a").and_then(|a| match a {
                Json::Arr(items) => items[1]
                    .field("b")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                _ => None,
            }),
            Some("x\ny".to_owned())
        );
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[] trailing").is_err());
    }

    #[test]
    fn trace_lines_parse_as_typed_objects() {
        let line = "{\"type\":\"counter\",\"name\":\"dp.cache_hits\",\"value\":42}";
        let v = parse_json(line).unwrap();
        assert_eq!(v.field("type").and_then(Json::as_str), Some("counter"));
        assert_eq!(v.field("value").and_then(Json::as_u64), Some(42));
    }
}
