//! The metric-name registry.
//!
//! Every counter and gauge the engine ladder emits is declared here,
//! once, as a `&'static str` constant. [`crate::MetricSet`] debug-asserts
//! that recorded names are registered, and the L6 `obs-api` lint rejects
//! string-literal metric names at call sites outside this crate — both
//! together guarantee the JSONL schema cannot drift per call site.
//!
//! **Counters** are deterministic: merged by summation in chunk order at
//! `run_chunks` join points, their totals are bit-identical at any
//! thread count and are diffed by CI between serial and `--threads 4`
//! runs. **Gauges** are diagnostics (high-water marks, scheduling
//! observations); they merge by maximum and sit outside the cross-thread
//! identity contract.

/// Counter: cooperative budget steps consumed (`Budget::steps()` deltas
/// observed per instrumented phase or chunk).
pub const BUDGET_TICKS: &str = "budget.ticks";

/// Counter: budget trip events (`BudgetExceeded` raised by `govern`).
pub const BUDGET_TRIPS: &str = "budget.trips";

/// Counter: residual-DP cache hits.
pub const DP_CACHE_HITS: &str = "dp.cache_hits";

/// Counter: residual-DP cache misses (nodes computed).
pub const DP_CACHE_MISSES: &str = "dp.cache_misses";

/// Counter: residual-DP nodes recomputed without memoization after the
/// cache hit its entry cap.
pub const DP_FALLBACK_NODES: &str = "dp.fallback_nodes";

/// Counter: shared-cache hits on nodes inserted by an *earlier* subset
/// run of the consensus sweep (the cross-subset sharing win).
pub const DP_CROSS_SUBSET_HITS: &str = "dp.cross_subset_hits";

/// Counter: chunks planned by the partitioner for one engine run.
pub const CHUNKS_PLANNED: &str = "chunks.planned";

/// Counter: chunks whose workers ran to completion.
pub const CHUNKS_COMPLETED: &str = "chunks.completed";

/// Counter: chunks skipped after a first-hit short-circuit.
pub const CHUNKS_SHORT_CIRCUITED: &str = "chunks.short_circuited";

/// Counter: Metropolis sampler proposals drawn.
pub const SAMPLER_PROPOSED: &str = "sampler.proposed";

/// Counter: Metropolis sampler proposals accepted.
pub const SAMPLER_ACCEPTED: &str = "sampler.accepted";

/// Counter: ladder-degradation events (one per engine downgrade taken by
/// the `resilient` front end; the chosen `Engine` rides in the event
/// attributes).
pub const LADDER_DEGRADATIONS: &str = "ladder.degradations";

/// Counter: source fetch attempts issued through the access layer
/// (first tries and retries alike; breaker denials are not attempts).
pub const SOURCE_FETCH_ATTEMPTS: &str = "source.fetch_attempts";

/// Counter: retries scheduled after a failed fetch attempt.
pub const SOURCE_RETRIES: &str = "source.retries";

/// Counter: faulted fetch attempts (failures, timeouts, truncations).
pub const SOURCE_FAULTS: &str = "source.faults";

/// Counter: deterministic backoff ticks charged against the budget
/// between retries (exponential per retry, no wall clock).
pub const SOURCE_BACKOFF_TICKS: &str = "source.backoff_ticks";

/// Counter: circuit-breaker trips (threshold consecutive failures, or a
/// failed half-open probe re-opening the breaker).
pub const BREAKER_TRIPS: &str = "breaker.trips";

/// Counter: half-open probe attempts granted after a quarantine expired.
pub const BREAKER_HALF_OPEN_PROBES: &str = "breaker.half_open_probes";

/// Counter: fetch admissions denied by an open (quarantining) breaker.
pub const BREAKER_DENIALS: &str = "breaker.denials";

/// Counter: tuples for which a partial-availability confidence interval
/// was reported.
pub const INTERVAL_TUPLES: &str = "interval.tuples";

/// Counter: interval tuples whose bracket provably contains the
/// catalog point answer (the all-sources-at-claimed-bounds scenario);
/// CI asserts this equals `interval.tuples`.
pub const INTERVAL_POINT_CONTAINED: &str = "interval.point_contained";

/// Counter: summed interval widths in parts-per-million — a
/// deterministic aggregate of how much availability loss widened the
/// answers.
pub const INTERVAL_WIDTH_PPM: &str = "interval.width_ppm";

/// Counter: distinct canonical residual skeletons in a compiled
/// confidence circuit (the circuit's shared-node count).
pub const CIRCUIT_NODES: &str = "circuit.nodes";

/// Counter: interior circuit nodes keyed on exact residual states
/// (before canonical sharing; comparable to `dp.cache_misses`).
pub const CIRCUIT_EXACT_NODES: &str = "circuit.exact_nodes";

/// Counter: weighted edges (Or-disjuncts) across a compiled circuit.
pub const CIRCUIT_EDGES: &str = "circuit.edges";

/// Counter: circuit nodes whose canonicalized residual key collided
/// with an earlier node — the sharing won on symmetric instances.
pub const CIRCUIT_SHARED_NODES: &str = "circuit.shared_nodes";

/// Counter: compiled-collection cache hits (queries answered without
/// recompiling).
pub const CIRCUIT_COMPILE_HITS: &str = "circuit.compile_hits";

/// Counter: compiled-collection cache misses (fresh compiles).
pub const CIRCUIT_COMPILE_MISSES: &str = "circuit.compile_misses";

/// Counter: compiled-collection cross-collection hits — instance misses
/// answered by rebinding another collection's structurally identical
/// skeleton instead of compiling.
pub const CIRCUIT_CROSS_HITS: &str = "circuit.cross_hits";

/// Counter: delta batches applied to a `DeltaSession`.
pub const DELTA_BATCHES_APPLIED: &str = "delta.batches_applied";

/// Counter: individual insert/delete operations applied across batches
/// (after dropping no-ops against the current extensions).
pub const DELTA_OPS_APPLIED: &str = "delta.ops_applied";

/// Counter: signature classes touched (size changed, created, or
/// emptied) by applied delta batches.
pub const DELTA_CLASSES_TOUCHED: &str = "delta.classes_touched";

/// Counter: memoized residual states invalidated by delta-scoped
/// prefix invalidation (levels at or below the deepest touched class).
pub const DELTA_STATES_INVALIDATED: &str = "delta.states_invalidated";

/// Counter: circuit nodes patched (freshly compiled onto the retained
/// arena) by incremental maintenance.
pub const DELTA_NODES_PATCHED: &str = "delta.nodes_patched";

/// Counter: full recompiles forced because a delta changed a source's
/// bounds, the class-signature sequence, or the patched arena outgrew
/// its garbage threshold.
pub const DELTA_RECOMPILES_FORCED: &str = "delta.recompiles_forced";

/// Counter: analyses answered entirely from maintained state (the
/// projected structure was unchanged, so no compile or traversal ran).
pub const DELTA_RESULTS_REUSED: &str = "delta.results_reused";

/// Histogram: budget ticks charged by each DP chunk worker.
pub const DP_CHUNK_STEPS: &str = "dp.chunk_steps";

/// Histogram: budget ticks charged by each consensus subset sweep.
pub const CONSENSUS_SWEEP_STEPS: &str = "consensus.sweep_steps";

/// Histogram: budget ticks charged compiling a confidence circuit.
pub const CIRCUIT_COMPILE_STEPS: &str = "circuit.compile_steps";

/// Histogram: budget ticks charged traversing a compiled circuit.
pub const CIRCUIT_TRAVERSE_STEPS: &str = "circuit.traverse_steps";

/// Histogram: budget ticks charged analysing one availability scenario
/// of a partial-availability interval run.
pub const INTERVAL_SCENARIO_STEPS: &str = "interval.scenario_steps";

/// Histogram: budget ticks charged by each incremental-maintenance
/// epoch of a delta-stream replay.
pub const DELTA_EPOCH_STEPS: &str = "delta.epoch_steps";

/// Histogram: backoff ticks charged before each fetch retry (the
/// distribution behind the `source.backoff_ticks` total).
pub const SOURCE_BACKOFF_STEPS: &str = "source.backoff_steps";

/// Span: one resilient consistency-check ladder run.
pub const SPAN_RESILIENT_CHECK: &str = "resilient.check";

/// Span: one resilient confidence ladder run.
pub const SPAN_RESILIENT_CONFIDENCE: &str = "resilient.confidence";

/// Span: the partial-availability interval phase of a faulted run.
pub const SPAN_RESILIENT_PARTIAL: &str = "resilient.partial";

/// Span: one delta-stream maintenance replay.
pub const SPAN_RESILIENT_STREAM: &str = "resilient.stream";

/// Span: one ladder rung attempt (`engine` attribute carries the rung).
pub const SPAN_LADDER_RUNG: &str = "ladder.rung";

/// Span: one chunked DP engine run.
pub const SPAN_DP_RUN: &str = "dp.run";

/// Span: one DP chunk executed by a `run_chunks` worker.
pub const SPAN_DP_CHUNK: &str = "dp.chunk";

/// Span: compiling a confidence circuit.
pub const SPAN_CIRCUIT_COMPILE: &str = "circuit.compile";

/// Span: traversing a compiled confidence circuit.
pub const SPAN_CIRCUIT_TRAVERSE: &str = "circuit.traverse";

/// Span: one partial-availability interval analysis over all scenarios.
pub const SPAN_INTERVAL_RUN: &str = "interval.run";

/// Span: one availability scenario analysed by an interval worker.
pub const SPAN_INTERVAL_SCENARIO: &str = "interval.scenario";

/// Span: one source-catalog fetch pass through the recovery stack.
pub const SPAN_SOURCE_FETCH: &str = "source.fetch";

/// Span: the consensus subset sweep over the shared DP cache.
pub const SPAN_CONSENSUS_SWEEP: &str = "consensus.dp_sweep";

/// Event: a resilient ladder degraded to a lower rung.
pub const EVENT_LADDER_DEGRADE: &str = "ladder.degrade";

/// Event: a budget trip observed by an instrumented phase.
pub const EVENT_BUDGET_TRIP: &str = "budget.trip";

/// Event: a fetch was denied by an open (quarantining) breaker.
pub const EVENT_SOURCE_QUARANTINED: &str = "source.quarantined";

/// Event: a circuit breaker tripped open.
pub const EVENT_BREAKER_TRIP: &str = "breaker.trip";

/// Gauge: residual-DP peak live cache entries (high-water mark).
pub const DP_CACHE_PEAK: &str = "dp.cache_peak";

/// Gauge: chunks executed on a worker other than the first — a
/// scheduling observation that legitimately varies with thread count.
pub const CHUNKS_STOLEN: &str = "chunks.stolen";

/// All registered counter names, in stable reporting order.
pub const COUNTERS: [&str; 36] = [
    BUDGET_TICKS,
    BUDGET_TRIPS,
    DP_CACHE_HITS,
    DP_CACHE_MISSES,
    DP_FALLBACK_NODES,
    DP_CROSS_SUBSET_HITS,
    CHUNKS_PLANNED,
    CHUNKS_COMPLETED,
    CHUNKS_SHORT_CIRCUITED,
    SAMPLER_PROPOSED,
    SAMPLER_ACCEPTED,
    LADDER_DEGRADATIONS,
    SOURCE_FETCH_ATTEMPTS,
    SOURCE_RETRIES,
    SOURCE_FAULTS,
    SOURCE_BACKOFF_TICKS,
    BREAKER_TRIPS,
    BREAKER_HALF_OPEN_PROBES,
    BREAKER_DENIALS,
    INTERVAL_TUPLES,
    INTERVAL_POINT_CONTAINED,
    INTERVAL_WIDTH_PPM,
    CIRCUIT_NODES,
    CIRCUIT_EXACT_NODES,
    CIRCUIT_EDGES,
    CIRCUIT_SHARED_NODES,
    CIRCUIT_COMPILE_HITS,
    CIRCUIT_COMPILE_MISSES,
    CIRCUIT_CROSS_HITS,
    DELTA_BATCHES_APPLIED,
    DELTA_OPS_APPLIED,
    DELTA_CLASSES_TOUCHED,
    DELTA_STATES_INVALIDATED,
    DELTA_NODES_PATCHED,
    DELTA_RECOMPILES_FORCED,
    DELTA_RESULTS_REUSED,
];

/// All registered gauge names, in stable reporting order.
pub const GAUGES: [&str; 2] = [DP_CACHE_PEAK, CHUNKS_STOLEN];

/// All registered histogram names, in stable reporting order.
pub const HISTOGRAMS: [&str; 7] = [
    DP_CHUNK_STEPS,
    CONSENSUS_SWEEP_STEPS,
    CIRCUIT_COMPILE_STEPS,
    CIRCUIT_TRAVERSE_STEPS,
    INTERVAL_SCENARIO_STEPS,
    DELTA_EPOCH_STEPS,
    SOURCE_BACKOFF_STEPS,
];

/// All registered span names, in stable reporting order.
pub const SPANS: [&str; 13] = [
    SPAN_RESILIENT_CHECK,
    SPAN_RESILIENT_CONFIDENCE,
    SPAN_RESILIENT_PARTIAL,
    SPAN_RESILIENT_STREAM,
    SPAN_LADDER_RUNG,
    SPAN_DP_RUN,
    SPAN_DP_CHUNK,
    SPAN_CIRCUIT_COMPILE,
    SPAN_CIRCUIT_TRAVERSE,
    SPAN_INTERVAL_RUN,
    SPAN_INTERVAL_SCENARIO,
    SPAN_SOURCE_FETCH,
    SPAN_CONSENSUS_SWEEP,
];

/// All registered event names, in stable reporting order.
pub const EVENTS: [&str; 4] = [
    EVENT_LADDER_DEGRADE,
    EVENT_BUDGET_TRIP,
    EVENT_SOURCE_QUARANTINED,
    EVENT_BREAKER_TRIP,
];

/// Is `name` a registered counter?
#[must_use]
pub fn is_counter(name: &str) -> bool {
    COUNTERS.contains(&name)
}

/// Is `name` a registered gauge?
#[must_use]
pub fn is_gauge(name: &str) -> bool {
    GAUGES.contains(&name)
}

/// Is `name` a registered histogram?
#[must_use]
pub fn is_histogram(name: &str) -> bool {
    HISTOGRAMS.contains(&name)
}

/// Is `name` a registered span?
#[must_use]
pub fn is_span(name: &str) -> bool {
    SPANS.contains(&name)
}

/// Is `name` a registered event?
#[must_use]
pub fn is_event(name: &str) -> bool {
    EVENTS.contains(&name)
}

/// Resolves a dynamic counter name to its registry constant — the trace
/// parser's way back from JSONL text to `&'static str` names.
#[must_use]
pub fn lookup_counter(name: &str) -> Option<&'static str> {
    COUNTERS.iter().find(|&&c| c == name).copied()
}

/// Resolves a dynamic gauge name to its registry constant.
#[must_use]
pub fn lookup_gauge(name: &str) -> Option<&'static str> {
    GAUGES.iter().find(|&&g| g == name).copied()
}

/// Resolves a dynamic histogram name to its registry constant.
#[must_use]
pub fn lookup_histogram(name: &str) -> Option<&'static str> {
    HISTOGRAMS.iter().find(|&&h| h == name).copied()
}

/// Resolves a dynamic span name to its registry constant.
#[must_use]
pub fn lookup_span(name: &str) -> Option<&'static str> {
    SPANS.iter().find(|&&s| s == name).copied()
}

/// Resolves a dynamic event name to its registry constant.
#[must_use]
pub fn lookup_event(name: &str) -> Option<&'static str> {
    EVENTS.iter().find(|&&e| e == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_names() -> impl Iterator<Item = &'static str> {
        COUNTERS
            .iter()
            .chain(GAUGES.iter())
            .chain(HISTOGRAMS.iter())
            .chain(SPANS.iter())
            .chain(EVENTS.iter())
            .copied()
    }

    #[test]
    fn registries_are_disjoint_and_duplicate_free() {
        let mut all: Vec<&str> = all_names().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "metric names must be unique across kinds");
        for c in COUNTERS {
            assert!(is_counter(c) && !is_gauge(c) && !is_histogram(c));
        }
        for g in GAUGES {
            assert!(is_gauge(g) && !is_counter(g));
        }
        for h in HISTOGRAMS {
            assert!(is_histogram(h) && !is_counter(h) && !is_gauge(h));
        }
        for s in SPANS {
            assert!(is_span(s) && !is_counter(s) && !is_event(s));
        }
        for e in EVENTS {
            assert!(is_event(e) && !is_span(e) && !is_counter(e));
        }
    }

    #[test]
    fn names_use_the_dotted_lowercase_convention() {
        for name in all_names() {
            assert!(
                name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{name} breaks the `component.metric_name` convention"
            );
        }
    }

    #[test]
    fn lookup_round_trips_every_registered_name() {
        for c in COUNTERS {
            assert_eq!(lookup_counter(c), Some(c));
        }
        for g in GAUGES {
            assert_eq!(lookup_gauge(g), Some(g));
        }
        for h in HISTOGRAMS {
            assert_eq!(lookup_histogram(h), Some(h));
        }
        for s in SPANS {
            assert_eq!(lookup_span(s), Some(s));
        }
        for e in EVENTS {
            assert_eq!(lookup_event(e), Some(e));
        }
        assert_eq!(lookup_counter("made.up"), None);
        assert_eq!(lookup_span(DP_CACHE_HITS), None);
    }
}
