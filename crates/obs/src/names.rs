//! The metric-name registry.
//!
//! Every counter and gauge the engine ladder emits is declared here,
//! once, as a `&'static str` constant. [`crate::MetricSet`] debug-asserts
//! that recorded names are registered, and the L6 `obs-api` lint rejects
//! string-literal metric names at call sites outside this crate — both
//! together guarantee the JSONL schema cannot drift per call site.
//!
//! **Counters** are deterministic: merged by summation in chunk order at
//! `run_chunks` join points, their totals are bit-identical at any
//! thread count and are diffed by CI between serial and `--threads 4`
//! runs. **Gauges** are diagnostics (high-water marks, scheduling
//! observations); they merge by maximum and sit outside the cross-thread
//! identity contract.

/// Counter: cooperative budget steps consumed (`Budget::steps()` deltas
/// observed per instrumented phase or chunk).
pub const BUDGET_TICKS: &str = "budget.ticks";

/// Counter: budget trip events (`BudgetExceeded` raised by `govern`).
pub const BUDGET_TRIPS: &str = "budget.trips";

/// Counter: residual-DP cache hits.
pub const DP_CACHE_HITS: &str = "dp.cache_hits";

/// Counter: residual-DP cache misses (nodes computed).
pub const DP_CACHE_MISSES: &str = "dp.cache_misses";

/// Counter: residual-DP nodes recomputed without memoization after the
/// cache hit its entry cap.
pub const DP_FALLBACK_NODES: &str = "dp.fallback_nodes";

/// Counter: shared-cache hits on nodes inserted by an *earlier* subset
/// run of the consensus sweep (the cross-subset sharing win).
pub const DP_CROSS_SUBSET_HITS: &str = "dp.cross_subset_hits";

/// Counter: chunks planned by the partitioner for one engine run.
pub const CHUNKS_PLANNED: &str = "chunks.planned";

/// Counter: chunks whose workers ran to completion.
pub const CHUNKS_COMPLETED: &str = "chunks.completed";

/// Counter: chunks skipped after a first-hit short-circuit.
pub const CHUNKS_SHORT_CIRCUITED: &str = "chunks.short_circuited";

/// Counter: Metropolis sampler proposals drawn.
pub const SAMPLER_PROPOSED: &str = "sampler.proposed";

/// Counter: Metropolis sampler proposals accepted.
pub const SAMPLER_ACCEPTED: &str = "sampler.accepted";

/// Counter: ladder-degradation events (one per engine downgrade taken by
/// the `resilient` front end; the chosen `Engine` rides in the event
/// attributes).
pub const LADDER_DEGRADATIONS: &str = "ladder.degradations";

/// Counter: source fetch attempts issued through the access layer
/// (first tries and retries alike; breaker denials are not attempts).
pub const SOURCE_FETCH_ATTEMPTS: &str = "source.fetch_attempts";

/// Counter: retries scheduled after a failed fetch attempt.
pub const SOURCE_RETRIES: &str = "source.retries";

/// Counter: faulted fetch attempts (failures, timeouts, truncations).
pub const SOURCE_FAULTS: &str = "source.faults";

/// Counter: deterministic backoff ticks charged against the budget
/// between retries (exponential per retry, no wall clock).
pub const SOURCE_BACKOFF_TICKS: &str = "source.backoff_ticks";

/// Counter: circuit-breaker trips (threshold consecutive failures, or a
/// failed half-open probe re-opening the breaker).
pub const BREAKER_TRIPS: &str = "breaker.trips";

/// Counter: half-open probe attempts granted after a quarantine expired.
pub const BREAKER_HALF_OPEN_PROBES: &str = "breaker.half_open_probes";

/// Counter: fetch admissions denied by an open (quarantining) breaker.
pub const BREAKER_DENIALS: &str = "breaker.denials";

/// Counter: tuples for which a partial-availability confidence interval
/// was reported.
pub const INTERVAL_TUPLES: &str = "interval.tuples";

/// Counter: interval tuples whose bracket provably contains the
/// catalog point answer (the all-sources-at-claimed-bounds scenario);
/// CI asserts this equals `interval.tuples`.
pub const INTERVAL_POINT_CONTAINED: &str = "interval.point_contained";

/// Counter: summed interval widths in parts-per-million — a
/// deterministic aggregate of how much availability loss widened the
/// answers.
pub const INTERVAL_WIDTH_PPM: &str = "interval.width_ppm";

/// Counter: distinct canonical residual skeletons in a compiled
/// confidence circuit (the circuit's shared-node count).
pub const CIRCUIT_NODES: &str = "circuit.nodes";

/// Counter: interior circuit nodes keyed on exact residual states
/// (before canonical sharing; comparable to `dp.cache_misses`).
pub const CIRCUIT_EXACT_NODES: &str = "circuit.exact_nodes";

/// Counter: weighted edges (Or-disjuncts) across a compiled circuit.
pub const CIRCUIT_EDGES: &str = "circuit.edges";

/// Counter: circuit nodes whose canonicalized residual key collided
/// with an earlier node — the sharing won on symmetric instances.
pub const CIRCUIT_SHARED_NODES: &str = "circuit.shared_nodes";

/// Counter: compiled-collection cache hits (queries answered without
/// recompiling).
pub const CIRCUIT_COMPILE_HITS: &str = "circuit.compile_hits";

/// Counter: compiled-collection cache misses (fresh compiles).
pub const CIRCUIT_COMPILE_MISSES: &str = "circuit.compile_misses";

/// Counter: compiled-collection cross-collection hits — instance misses
/// answered by rebinding another collection's structurally identical
/// skeleton instead of compiling.
pub const CIRCUIT_CROSS_HITS: &str = "circuit.cross_hits";

/// Counter: delta batches applied to a `DeltaSession`.
pub const DELTA_BATCHES_APPLIED: &str = "delta.batches_applied";

/// Counter: individual insert/delete operations applied across batches
/// (after dropping no-ops against the current extensions).
pub const DELTA_OPS_APPLIED: &str = "delta.ops_applied";

/// Counter: signature classes touched (size changed, created, or
/// emptied) by applied delta batches.
pub const DELTA_CLASSES_TOUCHED: &str = "delta.classes_touched";

/// Counter: memoized residual states invalidated by delta-scoped
/// prefix invalidation (levels at or below the deepest touched class).
pub const DELTA_STATES_INVALIDATED: &str = "delta.states_invalidated";

/// Counter: circuit nodes patched (freshly compiled onto the retained
/// arena) by incremental maintenance.
pub const DELTA_NODES_PATCHED: &str = "delta.nodes_patched";

/// Counter: full recompiles forced because a delta changed a source's
/// bounds, the class-signature sequence, or the patched arena outgrew
/// its garbage threshold.
pub const DELTA_RECOMPILES_FORCED: &str = "delta.recompiles_forced";

/// Counter: analyses answered entirely from maintained state (the
/// projected structure was unchanged, so no compile or traversal ran).
pub const DELTA_RESULTS_REUSED: &str = "delta.results_reused";

/// Gauge: residual-DP peak live cache entries (high-water mark).
pub const DP_CACHE_PEAK: &str = "dp.cache_peak";

/// Gauge: chunks executed on a worker other than the first — a
/// scheduling observation that legitimately varies with thread count.
pub const CHUNKS_STOLEN: &str = "chunks.stolen";

/// All registered counter names, in stable reporting order.
pub const COUNTERS: [&str; 36] = [
    BUDGET_TICKS,
    BUDGET_TRIPS,
    DP_CACHE_HITS,
    DP_CACHE_MISSES,
    DP_FALLBACK_NODES,
    DP_CROSS_SUBSET_HITS,
    CHUNKS_PLANNED,
    CHUNKS_COMPLETED,
    CHUNKS_SHORT_CIRCUITED,
    SAMPLER_PROPOSED,
    SAMPLER_ACCEPTED,
    LADDER_DEGRADATIONS,
    SOURCE_FETCH_ATTEMPTS,
    SOURCE_RETRIES,
    SOURCE_FAULTS,
    SOURCE_BACKOFF_TICKS,
    BREAKER_TRIPS,
    BREAKER_HALF_OPEN_PROBES,
    BREAKER_DENIALS,
    INTERVAL_TUPLES,
    INTERVAL_POINT_CONTAINED,
    INTERVAL_WIDTH_PPM,
    CIRCUIT_NODES,
    CIRCUIT_EXACT_NODES,
    CIRCUIT_EDGES,
    CIRCUIT_SHARED_NODES,
    CIRCUIT_COMPILE_HITS,
    CIRCUIT_COMPILE_MISSES,
    CIRCUIT_CROSS_HITS,
    DELTA_BATCHES_APPLIED,
    DELTA_OPS_APPLIED,
    DELTA_CLASSES_TOUCHED,
    DELTA_STATES_INVALIDATED,
    DELTA_NODES_PATCHED,
    DELTA_RECOMPILES_FORCED,
    DELTA_RESULTS_REUSED,
];

/// All registered gauge names, in stable reporting order.
pub const GAUGES: [&str; 2] = [DP_CACHE_PEAK, CHUNKS_STOLEN];

/// Is `name` a registered counter?
#[must_use]
pub fn is_counter(name: &str) -> bool {
    COUNTERS.contains(&name)
}

/// Is `name` a registered gauge?
#[must_use]
pub fn is_gauge(name: &str) -> bool {
    GAUGES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_disjoint_and_duplicate_free() {
        let mut all: Vec<&str> = COUNTERS.iter().chain(GAUGES.iter()).copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "metric names must be unique across kinds");
        for c in COUNTERS {
            assert!(is_counter(c) && !is_gauge(c));
        }
        for g in GAUGES {
            assert!(is_gauge(g) && !is_counter(g));
        }
    }

    #[test]
    fn names_use_the_dotted_lowercase_convention() {
        for name in COUNTERS.iter().chain(GAUGES.iter()) {
            assert!(
                name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{name} breaks the `component.metric_name` convention"
            );
        }
    }
}
