//! The per-run observability session engines thread through their call
//! stacks.
//!
//! An [`ObsSession`] owns the run's [`MetricSet`], [`SpanStack`], event
//! log, and optional [`Sink`]. The **disabled** session is free: it
//! allocates nothing at construction and every recording method
//! early-returns before touching the heap (covered by the
//! allocation-counting test in `tests/noop_alloc.rs`).

use crate::metrics::MetricSet;
use crate::sink::{Record, Sink};
use crate::span::{Span, SpanStack};

/// A point-in-time event with attributes (e.g. one ladder degradation,
/// carrying the engine it degraded to).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event name, e.g. `"ladder.degrade"`.
    pub name: &'static str,
    /// Budget-clock nanoseconds when the event occurred.
    pub at_ns: u64,
    /// Attributes in recording order.
    pub attrs: Vec<(&'static str, String)>,
}

/// Everything a finished session observed, for programmatic inspection
/// (tests, the CLI's `--metrics` summary, bench record construction).
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Merged counter/gauge totals.
    pub metrics: MetricSet,
    /// Completed root spans.
    pub spans: Vec<Span>,
    /// Point events in recording order.
    pub events: Vec<Event>,
}

/// The observability context for one engine run.
pub struct ObsSession {
    enabled: bool,
    metrics: MetricSet,
    spans: SpanStack,
    events: Vec<Event>,
    sink: Option<Box<dyn Sink>>,
}

impl ObsSession {
    /// The free session: records nothing, allocates nothing.
    #[must_use]
    pub fn disabled() -> Self {
        ObsSession {
            enabled: false,
            metrics: MetricSet::new(),
            spans: SpanStack::new(),
            events: Vec::new(),
            sink: None,
        }
    }

    /// An enabled session that keeps everything in memory for the
    /// [`ObsReport`] (tests and `--metrics` use this).
    #[must_use]
    pub fn in_memory() -> Self {
        ObsSession {
            enabled: true,
            ..ObsSession::disabled()
        }
    }

    /// An enabled session that additionally streams the finished report
    /// through `sink` (the CLI's `--trace-out` JSONL file).
    #[must_use]
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        ObsSession {
            enabled: true,
            sink: Some(sink),
            ..ObsSession::disabled()
        }
    }

    /// Is this session recording?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.counter_add(name, delta);
    }

    /// Raises gauge `name` to at least `value`.
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.gauge_max(name, value);
    }

    /// Records one measurement into histogram `name`.
    #[inline]
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.histogram_record(name, value);
    }

    /// Offers an exemplar key under counter `name` (no-op without the
    /// `exemplars` cargo feature).
    #[inline]
    pub fn exemplar(&mut self, name: &'static str, key: &str) {
        if !self.enabled {
            return;
        }
        self.metrics.exemplar_offer(name, key);
    }

    /// Charges `delta` budget ticks: adds to the `budget.ticks` counter
    /// *and* attributes the same delta to the innermost open span, in
    /// one call — the pairing that keeps "sum of span `self_steps` ==
    /// `budget.ticks` total" true by construction. Serial instrumented
    /// phases call this with a measured `Budget::steps()` delta; chunk
    /// workers make the equivalent pair of calls against their local
    /// `MetricSet`/`SpanStack`.
    #[inline]
    pub fn charge_steps(&mut self, delta: u64) {
        if !self.enabled || delta == 0 {
            return;
        }
        self.metrics.counter_add(crate::names::BUDGET_TICKS, delta);
        self.spans.charge(delta);
    }

    /// Opens a span at `now_ns` (budget-clock nanoseconds).
    #[inline]
    pub fn span_open(&mut self, name: &'static str, now_ns: u64) {
        if !self.enabled {
            return;
        }
        self.spans.open(name, now_ns);
    }

    /// Attaches an attribute to the innermost open span.
    #[inline]
    pub fn span_attr(&mut self, key: &'static str, value: &str) {
        if !self.enabled {
            return;
        }
        self.spans.attr(key, value);
    }

    /// Closes the innermost open span at `now_ns`.
    #[inline]
    pub fn span_close(&mut self, now_ns: u64) {
        if !self.enabled {
            return;
        }
        self.spans.close(now_ns);
    }

    /// Records a point event.
    #[inline]
    pub fn event(&mut self, name: &'static str, at_ns: u64, attrs: &[(&'static str, &str)]) {
        if !self.enabled {
            return;
        }
        self.events.push(Event {
            name,
            at_ns,
            attrs: attrs.iter().map(|&(k, v)| (k, v.to_owned())).collect(),
        });
    }

    /// Folds a per-chunk [`MetricSet`] into the session totals. Callers
    /// merge in chunk order at `run_chunks` join points.
    #[inline]
    pub fn merge_metrics(&mut self, chunk: &MetricSet) {
        if !self.enabled {
            return;
        }
        self.metrics.merge(chunk);
    }

    /// Splices completed per-chunk spans under the innermost open span.
    #[inline]
    pub fn graft_spans(&mut self, spans: Vec<Span>) {
        if !self.enabled {
            return;
        }
        self.spans.graft(spans);
    }

    /// Finishes the session: emits every record to the sink (the schema
    /// header first, then spans, events, counters, gauges, histograms,
    /// and exemplars, each group in name order — a stable order so
    /// traces diff cleanly) and returns the report.
    pub fn finish(self) -> ObsReport {
        let ObsSession {
            enabled,
            metrics,
            spans,
            events,
            sink,
        } = self;
        if !enabled {
            return ObsReport::default();
        }
        let spans = spans.finish();
        if let Some(mut sink) = sink {
            sink.emit(&Record::Header);
            for span in &spans {
                sink.emit(&Record::Span(span));
            }
            for event in &events {
                sink.emit(&Record::Event(event));
            }
            for (name, value) in metrics.counters() {
                sink.emit(&Record::Counter { name, value });
            }
            for (name, value) in metrics.gauges() {
                sink.emit(&Record::Gauge { name, value });
            }
            for (name, hist) in metrics.histograms() {
                sink.emit(&Record::Histogram { name, hist });
            }
            for (name, keys) in metrics.exemplars() {
                sink.emit(&Record::Exemplar { name, keys });
            }
            sink.flush_sink();
        }
        ObsReport {
            metrics,
            spans,
            events,
        }
    }
}

impl std::fmt::Debug for ObsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSession")
            .field("enabled", &self.enabled)
            .field("metrics", &self.metrics)
            .field("spans", &self.spans)
            .field("events", &self.events)
            .field("sink", &self.sink.as_ref().map(|_| "dyn Sink"))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_session_records_nothing() {
        let mut s = ObsSession::disabled();
        assert!(!s.is_enabled());
        s.counter_add(names::BUDGET_TICKS, 5);
        s.span_open("phase", 1);
        s.span_attr("k", "v");
        s.event("ladder.degrade", 2, &[("to", "dp")]);
        s.span_close(3);
        let mut extra = MetricSet::new();
        extra.counter_add(names::DP_CACHE_HITS, 9);
        s.merge_metrics(&extra);
        let report = s.finish();
        assert!(report.metrics.is_empty());
        assert!(report.spans.is_empty());
        assert!(report.events.is_empty());
    }

    #[test]
    fn in_memory_session_reports_everything() {
        let mut s = ObsSession::in_memory();
        s.span_open("dp.run", 0);
        s.counter_add(names::DP_CACHE_MISSES, 2);
        s.event("ladder.degrade", 1, &[("to", "dp")]);
        s.span_close(10);
        let report = s.finish();
        assert_eq!(report.metrics.counter(names::DP_CACHE_MISSES), 2);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].attrs[0], ("to", "dp".to_owned()));
    }

    #[test]
    fn sink_receives_records_in_stable_order() {
        let sink = MemorySink::new();
        let mut s = ObsSession::with_sink(Box::new(sink));
        s.span_open("dp.run", 0);
        s.span_close(4);
        s.counter_add(names::DP_CACHE_HITS, 1);
        s.counter_add(names::BUDGET_TICKS, 3);
        s.gauge_max(names::DP_CACHE_PEAK, 8);
        s.event("ladder.degrade", 2, &[]);
        let report = s.finish();
        // The sink was consumed; re-render from the report to check the
        // emission order contract: spans, events, counters, gauges.
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.metrics.counter(names::BUDGET_TICKS), 3);
    }

    #[test]
    fn memory_sink_lines_are_ordered_and_parseable_shape() {
        // Drive the sink through a session via a probe that clones lines
        // out before the session consumes it.
        struct Probe(std::rc::Rc<std::cell::RefCell<Vec<String>>>);
        impl crate::sink::Sink for Probe {
            fn emit(&mut self, record: &Record<'_>) {
                self.0.borrow_mut().push(crate::sink::render_record(record));
            }
        }
        let lines = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut s = ObsSession::with_sink(Box::new(Probe(lines.clone())));
        s.span_open("dp.run", 0);
        s.span_close(1);
        s.event("ladder.degrade", 2, &[("to", "dp")]);
        s.counter_add(names::BUDGET_TICKS, 7);
        s.gauge_max(names::DP_CACHE_PEAK, 2);
        s.histogram_record(names::DP_CHUNK_STEPS, 7);
        let _ = s.finish();
        let lines = lines.borrow();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "{\"pscds_trace\":1}");
        assert!(lines[1].contains("\"type\":\"span\""));
        assert!(lines[2].contains("\"type\":\"event\""));
        assert!(lines[3].contains("\"type\":\"counter\""));
        assert!(lines[4].contains("\"type\":\"gauge\""));
        assert!(lines[5].contains("\"type\":\"histogram\""));
    }

    #[test]
    fn charge_steps_pairs_counter_and_span_attribution() {
        let mut s = ObsSession::in_memory();
        s.span_open("dp.run", 0);
        s.charge_steps(4);
        s.span_open("dp.chunk", 1);
        s.charge_steps(9);
        s.span_close(2);
        s.charge_steps(0); // zero deltas record nothing
        s.span_close(3);
        let report = s.finish();
        assert_eq!(report.metrics.counter(names::BUDGET_TICKS), 13);
        let run = &report.spans[0];
        assert_eq!(run.self_steps, 4);
        assert_eq!(run.total_steps(), 13);
        let charged: u64 = report.spans.iter().map(Span::total_steps).sum();
        assert_eq!(charged, report.metrics.counter(names::BUDGET_TICKS));
    }

    #[test]
    fn merge_metrics_and_graft_compose_chunk_results() {
        let mut s = ObsSession::in_memory();
        s.span_open("dp.run", 0);
        for chunk in 0..3u64 {
            let mut m = MetricSet::new();
            m.counter_add(names::CHUNKS_COMPLETED, 1);
            m.counter_add(names::BUDGET_TICKS, chunk + 1);
            s.merge_metrics(&m);
            let mut stack = SpanStack::new();
            stack.open("dp.chunk", chunk);
            stack.close(chunk + 1);
            s.graft_spans(stack.finish());
        }
        s.span_close(9);
        let report = s.finish();
        assert_eq!(report.metrics.counter(names::CHUNKS_COMPLETED), 3);
        assert_eq!(report.metrics.counter(names::BUDGET_TICKS), 6);
        assert_eq!(
            report.spans[0].skeleton(),
            "dp.run[dp.chunk,dp.chunk,dp.chunk]"
        );
    }
}
