//! Span scopes: named, nested slices of engine time.
//!
//! A [`Span`] records a phase of an engine run (ladder rung, DP sweep,
//! chunk execution) with start/end timestamps in **budget-clock
//! nanoseconds** — the caller reads `Budget::elapsed_ns()` and passes
//! the value in; this module never touches a clock. Forked budgets share
//! their parent's clock origin, so spans recorded inside `run_chunks`
//! workers are coherent with the parent timeline.
//!
//! Determinism: wall-clock durations differ run to run, so tests and the
//! CI diff compare [`Span::skeleton`] — the tree structure and
//! attributes with timings erased — which is identical at any thread
//! count for the instrumented engines.

/// One completed (or still-open) span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase name, e.g. `"dp.chunk"` or `"ladder.rung"`.
    pub name: &'static str,
    /// Attributes in recording order, e.g. `("chunk", "3")`.
    pub attrs: Vec<(&'static str, String)>,
    /// Budget-clock nanoseconds at open.
    pub start_ns: u64,
    /// Budget-clock nanoseconds at close (`== start_ns` when force-closed).
    pub end_ns: u64,
    /// Budget ticks charged to this span while it was the *innermost*
    /// open span (its exclusive step cost; see [`SpanStack::charge`]).
    pub self_steps: u64,
    /// Nested child spans in completion order.
    pub children: Vec<Span>,
}

impl Span {
    /// An empty span covering `[start_ns, end_ns]` — the trace parser's
    /// reconstruction entry point (attrs, children, and `self_steps` are
    /// filled in field by field; live instrumentation goes through
    /// [`SpanStack`] instead).
    #[must_use]
    pub fn new(name: &'static str, start_ns: u64, end_ns: u64) -> Self {
        Span {
            name,
            attrs: Vec::new(),
            start_ns,
            end_ns,
            self_steps: 0,
            children: Vec::new(),
        }
    }

    /// The span's inclusive step cost: its own `self_steps` plus every
    /// descendant's.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.children.iter().fold(self.self_steps, |acc, c| {
            acc.saturating_add(c.total_steps())
        })
    }
    /// The structure of the span tree with timings erased:
    /// `name{k=v,…}[child,…]`. Two instrumented runs that did the same
    /// work produce equal skeletons even though their nanosecond stamps
    /// differ.
    #[must_use]
    pub fn skeleton(&self) -> String {
        let mut out = String::new();
        self.render_skeleton(&mut out);
        out
    }

    fn render_skeleton(&self, out: &mut String) {
        out.push_str(self.name);
        if self.self_steps > 0 {
            out.push('#');
            out.push_str(&self.self_steps.to_string());
        }
        if !self.attrs.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.push('}');
        }
        if !self.children.is_empty() {
            out.push('[');
            for (i, child) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                child.render_skeleton(out);
            }
            out.push(']');
        }
    }
}

/// Builder for nested spans: `open`/`close` pairs bracket engine phases,
/// `graft` splices per-chunk sub-trees under the current phase at a
/// `run_chunks` join point.
#[derive(Clone, Debug, Default)]
pub struct SpanStack {
    roots: Vec<Span>,
    open: Vec<Span>,
}

impl SpanStack {
    /// An empty stack (allocation-free until the first `open`).
    #[must_use]
    pub fn new() -> Self {
        SpanStack::default()
    }

    /// Opens a child span of the innermost open span (or a new root).
    pub fn open(&mut self, name: &'static str, now_ns: u64) {
        self.open.push(Span::new(name, now_ns, now_ns));
    }

    /// [`SpanStack::open`] under the name the emission lints recognise —
    /// worker-side instrumentation (which records into a local stack
    /// instead of an `ObsSession`) opens its spans through this alias so
    /// L9 `counter-coverage` sees the registry constant being wired.
    pub fn span_open(&mut self, name: &'static str, now_ns: u64) {
        self.open(name, now_ns);
    }

    /// Charges `steps` budget ticks to the innermost open span's
    /// `self_steps`. No-op when nothing is open.
    ///
    /// **The pairing contract:** every `budget.ticks` counter emission
    /// is paired with a `charge` of the same delta against the span
    /// stack (and vice versa), so the sum of `self_steps` over a
    /// finished trace equals the run's `budget.ticks` total exactly.
    /// Charges are only measured at thread-invariant points — per-chunk
    /// deltas inside `run_chunks` workers, or genuinely serial phases —
    /// which keeps the attribution bit-identical at any thread count.
    pub fn charge(&mut self, steps: u64) {
        if let Some(span) = self.open.last_mut() {
            span.self_steps = span.self_steps.saturating_add(steps);
        }
    }

    /// Attaches an attribute to the innermost open span. No-op when no
    /// span is open.
    pub fn attr(&mut self, key: &'static str, value: &str) {
        if let Some(span) = self.open.last_mut() {
            span.attrs.push((key, value.to_owned()));
        }
    }

    /// Splices completed spans (e.g. per-chunk sub-trees collected at a
    /// `run_chunks` join) under the innermost open span, or as roots.
    pub fn graft(&mut self, children: impl IntoIterator<Item = Span>) {
        let target = match self.open.last_mut() {
            Some(span) => &mut span.children,
            None => &mut self.roots,
        };
        target.extend(children);
    }

    /// Closes the innermost open span at `now_ns`. No-op when nothing is
    /// open.
    pub fn close(&mut self, now_ns: u64) {
        if let Some(mut span) = self.open.pop() {
            span.end_ns = now_ns;
            match self.open.last_mut() {
                Some(parent) => parent.children.push(span),
                None => self.roots.push(span),
            }
        }
    }

    /// Number of currently open spans.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Consumes the stack, force-closing any still-open spans at their
    /// own start time (`end_ns == start_ns` marks them truncated — e.g.
    /// a budget trip unwound through the phase).
    #[must_use]
    pub fn finish(mut self) -> Vec<Span> {
        while !self.open.is_empty() {
            // Re-close at the span's own start: no clock is available
            // here by design.
            let start = self.open[self.open.len() - 1].start_ns;
            self.close(start);
        }
        self.roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_skeletons() {
        let mut s = SpanStack::new();
        s.open("ladder.rung", 10);
        s.attr("engine", "dp");
        s.open("dp.chunk", 20);
        s.attr("chunk", "0");
        s.close(30);
        s.open("dp.chunk", 31);
        s.attr("chunk", "1");
        s.close(44);
        s.close(50);
        let roots = s.finish();
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!((root.start_ns, root.end_ns), (10, 50));
        assert_eq!(root.children.len(), 2);
        assert_eq!(
            root.skeleton(),
            "ladder.rung{engine=dp}[dp.chunk{chunk=0},dp.chunk{chunk=1}]"
        );
    }

    #[test]
    fn skeleton_ignores_timings() {
        let mut a = SpanStack::new();
        a.open("phase", 0);
        a.close(100);
        let mut b = SpanStack::new();
        b.open("phase", 5);
        b.close(7);
        assert_eq!(a.finish()[0].skeleton(), b.finish()[0].skeleton());
    }

    #[test]
    fn graft_splices_under_the_open_span() {
        let mut worker = SpanStack::new();
        worker.open("dp.chunk", 3);
        worker.close(9);
        let chunk_spans = worker.finish();

        let mut main = SpanStack::new();
        main.open("dp.run", 0);
        main.graft(chunk_spans);
        main.close(12);
        let roots = main.finish();
        assert_eq!(roots[0].skeleton(), "dp.run[dp.chunk]");
    }

    #[test]
    fn finish_force_closes_open_spans_at_their_start() {
        let mut s = SpanStack::new();
        s.open("outer", 1);
        s.open("inner", 2);
        let roots = s.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children[0].end_ns, roots[0].children[0].start_ns);
    }

    #[test]
    fn graft_with_no_open_span_creates_roots() {
        let mut s = SpanStack::new();
        s.graft([Span::new("orphan", 0, 1)]);
        assert_eq!(s.finish().len(), 1);
    }

    #[test]
    fn charge_attributes_to_the_innermost_open_span() {
        let mut s = SpanStack::new();
        s.charge(99); // nothing open: dropped
        s.span_open("dp.run", 0);
        s.charge(2);
        s.open("dp.chunk", 1);
        s.charge(5);
        s.close(2);
        s.charge(3);
        s.close(10);
        let roots = s.finish();
        let run = &roots[0];
        assert_eq!(run.self_steps, 5);
        assert_eq!(run.children[0].self_steps, 5);
        assert_eq!(run.total_steps(), 10);
    }

    #[test]
    fn skeleton_renders_self_steps_only_when_charged() {
        let mut s = SpanStack::new();
        s.open("dp.run", 0);
        s.open("dp.chunk", 1);
        s.charge(7);
        s.close(2);
        s.close(3);
        assert_eq!(s.finish()[0].skeleton(), "dp.run[dp.chunk#7]");

        let mut plain = SpanStack::new();
        plain.open("dp.run", 0);
        plain.close(1);
        assert_eq!(plain.finish()[0].skeleton(), "dp.run");
    }
}
