//! Pluggable record sinks and the one JSONL renderer.
//!
//! Every record crosses the sink boundary as a [`Record`]; the textual
//! form is produced by [`render_record`] — a single hand-rolled JSON
//! writer (the workspace's vendored `serde` stub has no JSON back end),
//! so the `--trace-out` JSONL schema cannot drift between sinks. Sinks
//! never read clocks: timestamps arrive inside the records, already in
//! budget-clock nanoseconds (enforced by the L6 `obs-api` lint).

use crate::exemplar::ExemplarSet;
use crate::hist::StepHistogram;
use crate::session::Event;
use crate::span::Span;
use std::io::Write;

/// The trace schema version emitted in the [`Record::Header`] line and
/// required by the trace parser.
pub const TRACE_VERSION: u64 = 1;

/// One record crossing the sink boundary.
#[derive(Clone, Debug)]
pub enum Record<'a> {
    /// The schema/version header — always the first line of a trace.
    Header,
    /// A completed root span (children nested inside).
    Span(&'a Span),
    /// A merged counter total.
    Counter {
        /// Registered counter name.
        name: &'static str,
        /// Merged total.
        value: u64,
    },
    /// A merged gauge value.
    Gauge {
        /// Registered gauge name.
        name: &'static str,
        /// Max-merged value.
        value: u64,
    },
    /// A merged step histogram (sparse `[index, count]` bucket pairs).
    Histogram {
        /// Registered histogram name.
        name: &'static str,
        /// Merged histogram.
        hist: &'a StepHistogram,
    },
    /// The exemplar keys retained under a counter.
    Exemplar {
        /// Registered counter name the keys attach to.
        name: &'static str,
        /// The K lexicographically smallest offending keys.
        keys: &'a ExemplarSet,
    },
    /// A point event (e.g. a ladder degradation with engine provenance).
    Event(&'a Event),
}

/// A destination for observability records. `emit` must not fail the
/// instrumented engine: sinks swallow (and may internally record) their
/// own I/O errors.
pub trait Sink {
    /// Consumes one record.
    fn emit(&mut self, record: &Record<'_>);
    /// Flushes buffered output (default: nothing).
    fn flush_sink(&mut self) {}
}

/// The disabled sink: an empty inline body the optimizer erases.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline(always)]
    fn emit(&mut self, _record: &Record<'_>) {}
}

/// Test sink: collects rendered JSONL lines in memory.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    /// The rendered lines, in emission order.
    pub lines: Vec<String>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, record: &Record<'_>) {
        self.lines.push(render_record(record));
    }
}

/// Production sink: one JSON object per line to any [`Write`] target
/// (the CLI hands it the `--trace-out` file). I/O errors are latched and
/// reported once via [`JsonlSink::take_error`] instead of failing the
/// engine mid-run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a write target.
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }

    /// The first I/O error encountered, if any (clears it).
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, record: &Record<'_>) {
        if self.error.is_some() {
            return;
        }
        let line = render_record(record);
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush_sink(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Renders one record as a single JSON line (no trailing newline).
#[must_use]
pub fn render_record(record: &Record<'_>) -> String {
    let mut out = String::new();
    match record {
        Record::Header => {
            out.push_str("{\"pscds_trace\":");
            out.push_str(&TRACE_VERSION.to_string());
            out.push('}');
        }
        Record::Span(span) => render_span(span, &mut out),
        Record::Counter { name, value } => {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push('}');
        }
        Record::Gauge { name, value } => {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push('}');
        }
        Record::Histogram { name, hist } => {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"count\":");
            out.push_str(&hist.count().to_string());
            out.push_str(",\"sum\":");
            out.push_str(&hist.sum().to_string());
            out.push_str(",\"buckets\":[");
            for (i, (index, count)) in hist.buckets().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&index.to_string());
                out.push(',');
                out.push_str(&count.to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
        Record::Exemplar { name, keys } => {
            out.push_str("{\"type\":\"exemplar\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"keys\":[");
            for (i, key) in keys.keys().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, key);
            }
            out.push_str("]}");
        }
        Record::Event(event) => {
            out.push_str("{\"type\":\"event\",\"name\":");
            push_json_str(&mut out, event.name);
            out.push_str(",\"at_ns\":");
            out.push_str(&event.at_ns.to_string());
            out.push_str(",\"attrs\":");
            push_attrs(&mut out, &event.attrs);
            out.push('}');
        }
    }
    out
}

fn render_span(span: &Span, out: &mut String) {
    out.push_str("{\"type\":\"span\",\"name\":");
    push_json_str(out, span.name);
    out.push_str(",\"start_ns\":");
    out.push_str(&span.start_ns.to_string());
    out.push_str(",\"end_ns\":");
    out.push_str(&span.end_ns.to_string());
    out.push_str(",\"self_steps\":");
    out.push_str(&span.self_steps.to_string());
    out.push_str(",\"attrs\":");
    push_attrs(out, &span.attrs);
    out.push_str(",\"children\":[");
    for (i, child) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_span(child, out);
    }
    out.push_str("]}");
}

fn push_attrs(out: &mut String, attrs: &[(&'static str, String)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_str(out, v);
    }
    out.push('}');
}

/// JSON string literal with the mandatory escapes (quote, backslash,
/// control characters).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_lines() {
        let c = render_record(&Record::Counter {
            name: crate::names::DP_CACHE_HITS,
            value: 42,
        });
        assert_eq!(
            c,
            "{\"type\":\"counter\",\"name\":\"dp.cache_hits\",\"value\":42}"
        );
        let g = render_record(&Record::Gauge {
            name: crate::names::DP_CACHE_PEAK,
            value: 7,
        });
        assert_eq!(
            g,
            "{\"type\":\"gauge\",\"name\":\"dp.cache_peak\",\"value\":7}"
        );
    }

    #[test]
    fn span_lines_nest_children() {
        let mut span = Span::new("dp.run", 5, 9);
        span.attrs.push(("engine", "dp".to_owned()));
        let mut chunk = Span::new("dp.chunk", 6, 8);
        chunk.attrs.push(("chunk", "0".to_owned()));
        chunk.self_steps = 17;
        span.children.push(chunk);
        let line = render_record(&Record::Span(&span));
        assert_eq!(
            line,
            "{\"type\":\"span\",\"name\":\"dp.run\",\"start_ns\":5,\"end_ns\":9,\
             \"self_steps\":0,\"attrs\":{\"engine\":\"dp\"},\"children\":[{\"type\":\"span\",\
             \"name\":\"dp.chunk\",\"start_ns\":6,\"end_ns\":8,\"self_steps\":17,\
             \"attrs\":{\"chunk\":\"0\"},\"children\":[]}]}"
        );
    }

    #[test]
    fn header_histogram_and_exemplar_lines() {
        assert_eq!(render_record(&Record::Header), "{\"pscds_trace\":1}");

        let mut hist = StepHistogram::new();
        hist.record(0);
        hist.record(3);
        hist.record(3);
        let h = render_record(&Record::Histogram {
            name: crate::names::DP_CHUNK_STEPS,
            hist: &hist,
        });
        assert_eq!(
            h,
            "{\"type\":\"histogram\",\"name\":\"dp.chunk_steps\",\
             \"count\":3,\"sum\":6,\"buckets\":[[0,1],[2,2]]}"
        );

        let mut keys = ExemplarSet::new();
        keys.offer("S2");
        keys.offer("S0");
        let e = render_record(&Record::Exemplar {
            name: crate::names::BREAKER_TRIPS,
            keys: &keys,
        });
        assert_eq!(
            e,
            "{\"type\":\"exemplar\",\"name\":\"breaker.trips\",\"keys\":[\"S0\",\"S2\"]}"
        );
    }

    #[test]
    fn event_lines_and_escaping() {
        let event = Event {
            name: "ladder.degrade",
            at_ns: 12,
            attrs: vec![("to", "sampled \"fast\"\n".to_owned())],
        };
        let line = render_record(&Record::Event(&event));
        assert_eq!(
            line,
            "{\"type\":\"event\",\"name\":\"ladder.degrade\",\"at_ns\":12,\
             \"attrs\":{\"to\":\"sampled \\\"fast\\\"\\n\"}}"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines_and_latches_errors() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.emit(&Record::Counter {
                name: crate::names::BUDGET_TICKS,
                value: 1,
            });
            sink.flush_sink();
            assert!(sink.take_error().is_none());
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.ends_with('\n'));

        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.emit(&Record::Counter {
            name: crate::names::BUDGET_TICKS,
            value: 1,
        });
        assert!(sink.take_error().is_some());
    }

    #[test]
    fn memory_sink_collects_rendered_lines() {
        let mut sink = MemorySink::new();
        sink.emit(&Record::Counter {
            name: crate::names::CHUNKS_COMPLETED,
            value: 3,
        });
        assert_eq!(sink.lines.len(), 1);
        assert!(sink.lines[0].contains("chunks.completed"));
    }
}
