//! Profile rendering: the step-attribution views shared by the CLI's
//! `--profile` flag and the `pscds-trace` analysis binary.
//!
//! Everything here is **steps-only**: the tables aggregate budget-tick
//! charges (`Span::self_steps`) and never print nanosecond timings, so
//! two runs that did the same work render byte-identical output at any
//! thread count — the same contract the counter registries satisfy.

use crate::metrics::MetricSet;
use crate::names;
use crate::session::ObsReport;
use crate::span::Span;

/// One aggregated row of the per-phase step table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span (phase) name.
    pub name: &'static str,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Summed exclusive step cost.
    pub self_steps: u64,
    /// Summed inclusive step cost (self plus descendants).
    pub total_steps: u64,
}

fn accumulate(span: &Span, rows: &mut Vec<PhaseRow>) {
    match rows.iter_mut().find(|r| r.name == span.name) {
        Some(row) => {
            row.count += 1;
            row.self_steps = row.self_steps.saturating_add(span.self_steps);
            row.total_steps = row.total_steps.saturating_add(span.total_steps());
        }
        None => rows.push(PhaseRow {
            name: span.name,
            count: 1,
            self_steps: span.self_steps,
            total_steps: span.total_steps(),
        }),
    }
    for child in &span.children {
        accumulate(child, rows);
    }
}

/// Aggregates a span forest into per-phase rows, sorted by exclusive
/// step cost descending, then by name — a deterministic order for a
/// deterministic table.
#[must_use]
pub fn phase_table(spans: &[Span]) -> Vec<PhaseRow> {
    let mut rows = Vec::new();
    for span in spans {
        accumulate(span, &mut rows);
    }
    rows.sort_by(|a, b| b.self_steps.cmp(&a.self_steps).then(a.name.cmp(b.name)));
    rows
}

/// The heaviest root-to-leaf span chain by inclusive step cost: the
/// heaviest root (ties broken by recording order), then repeatedly the
/// heaviest child while one still carries nonzero total steps.
#[must_use]
pub fn critical_path(spans: &[Span]) -> Vec<&Span> {
    let mut path = Vec::new();
    let Some(mut node) = heaviest(spans) else {
        return path;
    };
    path.push(node);
    while let Some(next) = heaviest(&node.children) {
        if next.total_steps() == 0 {
            break;
        }
        path.push(next);
        node = next;
    }
    path
}

fn heaviest(spans: &[Span]) -> Option<&Span> {
    let mut best: Option<&Span> = None;
    for span in spans {
        // Strict `>` keeps the first span on ties: recording order is
        // deterministic, so the tie-break is too.
        if best.is_none_or(|b| span.total_steps() > b.total_steps()) {
            best = Some(span);
        }
    }
    best
}

fn push_row(out: &mut String, name: &str, count: u64, self_steps: u64, total_steps: u64) {
    out.push_str(&format!(
        "  {name:<30} {count:>7} {self_steps:>13} {total_steps:>13}\n"
    ));
}

/// Renders the `pscds-trace summary` view: the per-phase step table,
/// histograms, exemplars, and the attribution cross-check (span
/// self-steps vs the `budget.ticks` counter, equal by the pairing
/// contract).
#[must_use]
pub fn render_summary(report: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<30} {:>7} {:>13} {:>13}\n",
        "phase", "count", "self", "total"
    ));
    let rows = phase_table(&report.spans);
    if rows.is_empty() {
        out.push_str("  (no spans recorded)\n");
    }
    for row in &rows {
        push_row(
            &mut out,
            row.name,
            row.count,
            row.self_steps,
            row.total_steps,
        );
    }
    render_histograms(&mut out, &report.metrics);
    render_exemplars(&mut out, &report.metrics);
    let charged: u64 = report.spans.iter().map(Span::total_steps).sum();
    let ticks = report.metrics.counter(names::BUDGET_TICKS);
    out.push_str(&format!(
        "\nattributed steps: {charged} (span self-steps) == {ticks} (budget.ticks)\n"
    ));
    out
}

fn render_histograms(out: &mut String, metrics: &MetricSet) {
    let mut any = false;
    for (name, hist) in metrics.histograms() {
        if !any {
            out.push_str("\nhistograms (budget ticks per measurement):\n");
            any = true;
        }
        let mut buckets = String::new();
        for (i, (index, count)) in hist.buckets().enumerate() {
            if i > 0 {
                buckets.push(' ');
            }
            buckets.push_str(&format!("{index}:{count}"));
        }
        out.push_str(&format!(
            "  {:<30} count={} sum={} buckets {}\n",
            name,
            hist.count(),
            hist.sum(),
            buckets
        ));
    }
}

fn render_exemplars(out: &mut String, metrics: &MetricSet) {
    let mut any = false;
    for (name, keys) in metrics.exemplars() {
        if keys.is_empty() {
            continue;
        }
        if !any {
            out.push_str("\nexemplars (first-K offending keys):\n");
            any = true;
        }
        out.push_str(&format!("  {:<30} {}\n", name, keys.keys().join(" ")));
    }
}

/// Renders the `pscds-trace critical-path` view.
#[must_use]
pub fn render_critical_path(report: &ObsReport) -> String {
    let mut out = String::new();
    let path = critical_path(&report.spans);
    if path.is_empty() {
        out.push_str("  (no spans recorded)\n");
        return out;
    }
    for (depth, span) in path.iter().enumerate() {
        out.push_str(&format!(
            "  {:indent$}{} self={} total={}\n",
            "",
            span.name,
            span.self_steps,
            span.total_steps(),
            indent = depth * 2
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStack;

    fn sample_report() -> ObsReport {
        let mut stack = SpanStack::new();
        stack.open(names::SPAN_DP_RUN, 0);
        for chunk in 0..2u64 {
            stack.open(names::SPAN_DP_CHUNK, chunk);
            stack.charge(10 + chunk);
            stack.close(chunk + 1);
        }
        stack.charge(3);
        stack.close(9);
        let mut metrics = MetricSet::new();
        metrics.counter_add(names::BUDGET_TICKS, 24);
        metrics.histogram_record(names::DP_CHUNK_STEPS, 10);
        metrics.histogram_record(names::DP_CHUNK_STEPS, 11);
        metrics.exemplar_offer(names::DP_FALLBACK_NODES, "r2/0b01");
        metrics.exemplar_offer(names::DP_FALLBACK_NODES, "r1/0b10");
        ObsReport {
            metrics,
            spans: stack.finish(),
            events: Vec::new(),
        }
    }

    #[test]
    fn phase_table_aggregates_self_and_total() {
        let report = sample_report();
        let rows = phase_table(&report.spans);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, names::SPAN_DP_CHUNK);
        assert_eq!((rows[0].count, rows[0].self_steps), (2, 21));
        assert_eq!(rows[1].name, names::SPAN_DP_RUN);
        assert_eq!((rows[1].self_steps, rows[1].total_steps), (3, 24));
    }

    #[test]
    fn critical_path_descends_into_the_heaviest_child() {
        let report = sample_report();
        let path = critical_path(&report.spans);
        let chain: Vec<_> = path.iter().map(|s| s.name).collect();
        assert_eq!(chain, [names::SPAN_DP_RUN, names::SPAN_DP_CHUNK]);
        // The heavier chunk (11 self-steps) wins.
        assert_eq!(path[1].self_steps, 11);
    }

    #[test]
    fn summary_is_steps_only_and_checks_attribution() {
        let report = sample_report();
        let text = render_summary(&report);
        assert!(text.contains("dp.chunk"));
        assert!(text.contains("attributed steps: 24 (span self-steps) == 24 (budget.ticks)"));
        assert!(text.contains("dp.chunk_steps"));
        assert!(!text.contains("_ns"), "summaries never print timings");
        #[cfg(feature = "exemplars")]
        assert!(text.contains("r1/0b10 r2/0b01"));
    }

    #[test]
    fn empty_report_renders_placeholders() {
        let report = ObsReport::default();
        assert!(render_summary(&report).contains("(no spans recorded)"));
        assert!(render_critical_path(&report).contains("(no spans recorded)"));
    }
}
