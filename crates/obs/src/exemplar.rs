//! Deterministic exemplars: *which* keys drove a counter.
//!
//! An [`ExemplarSet`] keeps the `K = 8` lexicographically smallest
//! distinct keys offered to it — e.g. the residual keys that forced DP
//! fallbacks, or the sources that tripped breakers. "Keep the K smallest
//! distinct elements" is a semilattice (idempotent, commutative,
//! associative), so offering keys in any order — and merging per-chunk
//! sets in any order — yields the same set. That is the exemplar
//! determinism rule: exemplars join the cross-thread identity contract
//! that counters and histograms already satisfy, unlike a "first K seen"
//! policy whose contents would depend on scheduling.
//!
//! The whole module is behind the default-on `exemplars` cargo feature;
//! with the feature off the recording entry points remain but compile to
//! no-ops, so instrumented engines need no feature gates of their own.

/// Maximum number of keys an [`ExemplarSet`] retains.
pub const EXEMPLAR_KEYS: usize = 8;

/// The `K` lexicographically smallest distinct keys offered so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExemplarSet {
    keys: Vec<String>,
}

impl ExemplarSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        ExemplarSet::default()
    }

    /// Offers one key: inserted in sorted position if distinct, then the
    /// set is truncated back to [`EXEMPLAR_KEYS`].
    pub fn offer(&mut self, key: &str) {
        match self.keys.binary_search_by(|k| k.as_str().cmp(key)) {
            Ok(_) => {}
            Err(pos) => {
                if pos < EXEMPLAR_KEYS {
                    self.keys.insert(pos, key.to_owned());
                    self.keys.truncate(EXEMPLAR_KEYS);
                }
            }
        }
    }

    /// Folds `other` into `self`: union, then keep the `K` smallest —
    /// order-insensitive by the semilattice argument above.
    pub fn merge(&mut self, other: &ExemplarSet) {
        for key in &other.keys {
            self.offer(key);
        }
    }

    /// The retained keys, in lexicographic order.
    #[must_use]
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// `true` when no key has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest_distinct_keys() {
        let mut s = ExemplarSet::new();
        for key in ["m", "c", "a", "c", "z", "b", "d", "e", "f", "g", "h"] {
            s.offer(key);
        }
        assert_eq!(s.keys(), ["a", "b", "c", "d", "e", "f", "g", "h"]);
    }

    #[test]
    fn offer_order_does_not_matter() {
        let keys = ["k3", "k1", "k9", "k0", "k5", "k7", "k2", "k8", "k4", "k6"];
        let mut fwd = ExemplarSet::new();
        keys.iter().for_each(|k| fwd.offer(k));
        let mut rev = ExemplarSet::new();
        keys.iter().rev().for_each(|k| rev.offer(k));
        assert_eq!(fwd, rev);
        assert_eq!(fwd.keys().len(), EXEMPLAR_KEYS);
    }

    #[test]
    fn merge_is_union_keep_smallest() {
        let mut a = ExemplarSet::new();
        ["a", "c", "e"].iter().for_each(|k| a.offer(k));
        let mut b = ExemplarSet::new();
        ["b", "c", "d"].iter().for_each(|k| b.offer(k));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.keys(), ["a", "b", "c", "d", "e"]);
    }
}
