//! Typed counter/gauge registries with deterministic merging.
//!
//! A [`MetricSet`] is the per-thread (in practice: per-*chunk*)
//! aggregation unit. Engines record into a local set while a chunk runs
//! and merge the per-chunk sets **in chunk order** at the
//! `partition::run_chunks` join point; because counter merge is
//! commutative-associative summation and the merge order is fixed by the
//! chunk plan (not the scheduler), instrumented parallel runs report
//! totals bit-identical to serial runs at any thread count.

use crate::exemplar::ExemplarSet;
use crate::hist::StepHistogram;
use crate::names;
use std::collections::BTreeMap;

/// An aggregatable bag of named counters, gauges, step histograms, and
/// counter exemplars.
///
/// Counters and histograms sum on [`MetricSet::merge`]; gauges take the
/// maximum; exemplars keep the K lexicographically smallest keys. Names
/// must come from the [`names`] registry — recording an unregistered
/// name is a `debug_assert!` failure (and an L6 lint violation at the
/// call site if written as a string literal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, StepHistogram>,
    exemplars: BTreeMap<&'static str, ExemplarSet>,
}

impl MetricSet {
    /// An empty set. Allocation-free: empty `BTreeMap`s hold no heap
    /// memory until the first insertion.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `delta` to the counter `name` (saturating).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        debug_assert!(names::is_counter(name), "unregistered counter `{name}`");
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Raises the gauge `name` to at least `value`.
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        debug_assert!(names::is_gauge(name), "unregistered gauge `{name}`");
        let slot = self.gauges.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records one measurement into the histogram `name`.
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        debug_assert!(names::is_histogram(name), "unregistered histogram `{name}`");
        self.histograms.entry(name).or_default().record(value);
    }

    /// Offers an exemplar key under the counter `name` (e.g. the
    /// residual key that caused a DP fallback, the source that tripped a
    /// breaker). No-op without the `exemplars` cargo feature, so callers
    /// never need feature gates of their own.
    pub fn exemplar_offer(&mut self, name: &'static str, key: &str) {
        #[cfg(feature = "exemplars")]
        {
            debug_assert!(
                names::is_counter(name),
                "exemplars attach to counters; `{name}` is not one"
            );
            self.exemplars.entry(name).or_default().offer(key);
        }
        #[cfg(not(feature = "exemplars"))]
        {
            let _ = (name, key);
        }
    }

    /// The current value of counter `name` (0 when never recorded).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if ever recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&StepHistogram> {
        self.histograms.get(name)
    }

    /// The current value of gauge `name`, if ever recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Folds `other` into `self`: counters and histograms sum, gauges
    /// max, exemplars union-keep-smallest. The caller fixes determinism
    /// by merging in chunk order; every one of these operations is
    /// itself order-insensitive by construction (gauges excepted from
    /// the cross-thread contract as ever).
    pub fn merge(&mut self, other: &MetricSet) {
        for (&name, &v) in &other.counters {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (&name, &v) in &other.gauges {
            let slot = self.gauges.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        for (&name, e) in &other.exemplars {
            self.exemplars.entry(name).or_default().merge(e);
        }
    }

    /// All recorded counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&n, &v)| (n, v))
    }

    /// All recorded gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&n, &v)| (n, v))
    }

    /// All recorded histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &StepHistogram)> + '_ {
        self.histograms.iter().map(|(&n, h)| (n, h))
    }

    /// All recorded exemplar sets in name order.
    pub fn exemplars(&self) -> impl Iterator<Item = (&'static str, &ExemplarSet)> + '_ {
        self.exemplars.iter().map(|(&n, e)| (n, e))
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.exemplars.is_empty()
    }

    /// Ingests a counter by *dynamic* name, validating it against the
    /// registry: the trace parser's reconstruction hook (and the reason
    /// consumer crates never need to smuggle non-registry names into
    /// `counter_add`). Returns `false` for unknown names.
    pub fn ingest_counter(&mut self, name: &str, value: u64) -> bool {
        match names::lookup_counter(name) {
            Some(n) => {
                let slot = self.counters.entry(n).or_insert(0);
                *slot = slot.saturating_add(value);
                true
            }
            None => false,
        }
    }

    /// Ingests a gauge by dynamic name (see [`MetricSet::ingest_counter`]).
    pub fn ingest_gauge(&mut self, name: &str, value: u64) -> bool {
        match names::lookup_gauge(name) {
            Some(n) => {
                let slot = self.gauges.entry(n).or_insert(0);
                *slot = (*slot).max(value);
                true
            }
            None => false,
        }
    }

    /// Ingests a reconstructed histogram by dynamic name (see
    /// [`MetricSet::ingest_counter`]).
    pub fn ingest_histogram(&mut self, name: &str, hist: StepHistogram) -> bool {
        match names::lookup_histogram(name) {
            Some(n) => {
                self.histograms.entry(n).or_default().merge(&hist);
                true
            }
            None => false,
        }
    }

    /// Ingests exemplar keys by dynamic counter name (see
    /// [`MetricSet::ingest_counter`]).
    pub fn ingest_exemplars<'a>(
        &mut self,
        name: &str,
        keys: impl IntoIterator<Item = &'a str>,
    ) -> bool {
        match names::lookup_counter(name) {
            Some(n) => {
                let set = self.exemplars.entry(n).or_default();
                for key in keys {
                    set.offer(key);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max_on_merge() {
        let mut a = MetricSet::new();
        a.counter_add(names::DP_CACHE_HITS, 3);
        a.gauge_max(names::DP_CACHE_PEAK, 10);
        let mut b = MetricSet::new();
        b.counter_add(names::DP_CACHE_HITS, 4);
        b.counter_add(names::DP_CACHE_MISSES, 1);
        b.gauge_max(names::DP_CACHE_PEAK, 7);
        a.merge(&b);
        assert_eq!(a.counter(names::DP_CACHE_HITS), 7);
        assert_eq!(a.counter(names::DP_CACHE_MISSES), 1);
        assert_eq!(a.gauge(names::DP_CACHE_PEAK), Some(10));
    }

    #[test]
    fn merge_is_order_insensitive_for_counters() {
        let mut parts = Vec::new();
        for i in 0..5u64 {
            let mut m = MetricSet::new();
            m.counter_add(names::BUDGET_TICKS, i * 11 + 1);
            m.counter_add(names::CHUNKS_COMPLETED, 1);
            parts.push(m);
        }
        let mut fwd = MetricSet::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = MetricSet::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.counter(names::CHUNKS_COMPLETED), 5);
    }

    #[test]
    fn unrecorded_names_read_as_zero_or_none() {
        let m = MetricSet::new();
        assert_eq!(m.counter(names::BUDGET_TRIPS), 0);
        assert_eq!(m.gauge(names::CHUNKS_STOLEN), None);
        assert!(m.is_empty());
    }

    #[test]
    fn counter_add_saturates() {
        let mut m = MetricSet::new();
        m.counter_add(names::BUDGET_TICKS, u64::MAX);
        m.counter_add(names::BUDGET_TICKS, 5);
        assert_eq!(m.counter(names::BUDGET_TICKS), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "unregistered counter")]
    #[cfg(debug_assertions)]
    fn unregistered_counter_name_is_rejected() {
        MetricSet::new().counter_add("nope.nope", 1);
    }

    #[test]
    #[should_panic(expected = "unregistered histogram")]
    #[cfg(debug_assertions)]
    fn unregistered_histogram_name_is_rejected() {
        MetricSet::new().histogram_record("nope.nope", 1);
    }

    #[test]
    fn histograms_sum_on_merge() {
        let mut a = MetricSet::new();
        a.histogram_record(names::DP_CHUNK_STEPS, 3);
        let mut b = MetricSet::new();
        b.histogram_record(names::DP_CHUNK_STEPS, 9);
        b.histogram_record(names::INTERVAL_SCENARIO_STEPS, 1);
        a.merge(&b);
        let h = a.histogram(names::DP_CHUNK_STEPS).unwrap();
        assert_eq!((h.count(), h.sum()), (2, 12));
        assert!(a.histogram(names::INTERVAL_SCENARIO_STEPS).is_some());
        assert!(!a.is_empty());
    }

    #[test]
    #[cfg(feature = "exemplars")]
    fn exemplars_union_on_merge() {
        let mut a = MetricSet::new();
        a.exemplar_offer(names::BREAKER_TRIPS, "S2");
        let mut b = MetricSet::new();
        b.exemplar_offer(names::BREAKER_TRIPS, "S0");
        a.merge(&b);
        let (name, set) = a.exemplars().next().unwrap();
        assert_eq!(name, names::BREAKER_TRIPS);
        assert_eq!(set.keys(), ["S0", "S2"]);
    }

    #[test]
    fn ingest_validates_against_the_registry() {
        let mut m = MetricSet::new();
        assert!(m.ingest_counter("dp.cache_hits", 2));
        assert!(!m.ingest_counter("dp.cache_peak", 2), "gauge, not counter");
        assert!(!m.ingest_counter("made.up", 2));
        assert!(m.ingest_gauge("dp.cache_peak", 5));
        assert!(!m.ingest_gauge("dp.cache_hits", 5));
        let mut h = crate::hist::StepHistogram::new();
        h.record(4);
        assert!(m.ingest_histogram("dp.chunk_steps", h.clone()));
        assert!(!m.ingest_histogram("dp.cache_hits", h));
        assert!(m.ingest_exemplars("breaker.trips", ["S1"]));
        assert!(!m.ingest_exemplars("made.up", ["S1"]));
        assert_eq!(m.counter(names::DP_CACHE_HITS), 2);
        assert_eq!(m.histogram(names::DP_CHUNK_STEPS).unwrap().sum(), 4);
    }
}
