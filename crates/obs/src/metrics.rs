//! Typed counter/gauge registries with deterministic merging.
//!
//! A [`MetricSet`] is the per-thread (in practice: per-*chunk*)
//! aggregation unit. Engines record into a local set while a chunk runs
//! and merge the per-chunk sets **in chunk order** at the
//! `partition::run_chunks` join point; because counter merge is
//! commutative-associative summation and the merge order is fixed by the
//! chunk plan (not the scheduler), instrumented parallel runs report
//! totals bit-identical to serial runs at any thread count.

use crate::names;
use std::collections::BTreeMap;

/// An aggregatable bag of named counters and gauges.
///
/// Counters sum on [`MetricSet::merge`]; gauges take the maximum. Names
/// must come from the [`names`] registry — recording an unregistered
/// name is a `debug_assert!` failure (and an L6 lint violation at the
/// call site if written as a string literal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
}

impl MetricSet {
    /// An empty set. Allocation-free: empty `BTreeMap`s hold no heap
    /// memory until the first insertion.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `delta` to the counter `name` (saturating).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        debug_assert!(names::is_counter(name), "unregistered counter `{name}`");
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Raises the gauge `name` to at least `value`.
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        debug_assert!(names::is_gauge(name), "unregistered gauge `{name}`");
        let slot = self.gauges.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// The current value of counter `name` (0 when never recorded).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of gauge `name`, if ever recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Folds `other` into `self`: counters sum, gauges max. The caller
    /// fixes determinism by merging in chunk order; the operation itself
    /// is order-insensitive for counters by construction.
    pub fn merge(&mut self, other: &MetricSet) {
        for (&name, &v) in &other.counters {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (&name, &v) in &other.gauges {
            let slot = self.gauges.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
    }

    /// All recorded counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&n, &v)| (n, v))
    }

    /// All recorded gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&n, &v)| (n, v))
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max_on_merge() {
        let mut a = MetricSet::new();
        a.counter_add(names::DP_CACHE_HITS, 3);
        a.gauge_max(names::DP_CACHE_PEAK, 10);
        let mut b = MetricSet::new();
        b.counter_add(names::DP_CACHE_HITS, 4);
        b.counter_add(names::DP_CACHE_MISSES, 1);
        b.gauge_max(names::DP_CACHE_PEAK, 7);
        a.merge(&b);
        assert_eq!(a.counter(names::DP_CACHE_HITS), 7);
        assert_eq!(a.counter(names::DP_CACHE_MISSES), 1);
        assert_eq!(a.gauge(names::DP_CACHE_PEAK), Some(10));
    }

    #[test]
    fn merge_is_order_insensitive_for_counters() {
        let mut parts = Vec::new();
        for i in 0..5u64 {
            let mut m = MetricSet::new();
            m.counter_add(names::BUDGET_TICKS, i * 11 + 1);
            m.counter_add(names::CHUNKS_COMPLETED, 1);
            parts.push(m);
        }
        let mut fwd = MetricSet::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = MetricSet::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.counter(names::CHUNKS_COMPLETED), 5);
    }

    #[test]
    fn unrecorded_names_read_as_zero_or_none() {
        let m = MetricSet::new();
        assert_eq!(m.counter(names::BUDGET_TRIPS), 0);
        assert_eq!(m.gauge(names::CHUNKS_STOLEN), None);
        assert!(m.is_empty());
    }

    #[test]
    fn counter_add_saturates() {
        let mut m = MetricSet::new();
        m.counter_add(names::BUDGET_TICKS, u64::MAX);
        m.counter_add(names::BUDGET_TICKS, 5);
        assert_eq!(m.counter(names::BUDGET_TICKS), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "unregistered counter")]
    #[cfg(debug_assertions)]
    fn unregistered_counter_name_is_rejected() {
        MetricSet::new().counter_add("nope.nope", 1);
    }
}
