//! Deterministic step histograms.
//!
//! A [`StepHistogram`] aggregates budget-tick measurements (one value
//! per chunk, scenario, retry backoff, …) into **fixed log2-spaced
//! buckets**: value `0` lands in bucket 0, any other value `v` in bucket
//! `64 - v.leading_zeros()` — i.e. bucket `i ≥ 1` covers the half-open
//! dyadic range `[2^(i-1), 2^i)`. The edges are compile-time constants,
//! so two histograms built from the same multiset of values are
//! bit-identical regardless of recording order.
//!
//! Merging is element-wise saturating addition of the bucket counts (and
//! of the `count`/`sum` totals), which is commutative and associative —
//! exactly the counter-merge contract — so per-chunk histograms merged
//! in chunk order at `run_chunks` join points report totals identical to
//! a serial run at any thread count.

/// Number of buckets: bucket 0 for the value `0`, buckets `1..=64` for
/// the dyadic ranges `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value belonging to bucket `index` (saturates at the top
/// bucket's lower edge for out-of-range indices).
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i.min(HISTOGRAM_BUCKETS - 1) - 1),
    }
}

/// A mergeable log2-bucketed histogram of budget-tick measurements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for StepHistogram {
    fn default() -> Self {
        StepHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl StepHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        StepHistogram::default()
    }

    /// Records one measurement.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] = self.counts[bucket_index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds `other` into `self`: element-wise saturating sums, so the
    /// merge is order-insensitive like counter merging.
    pub fn merge(&mut self, other: &StepHistogram) {
        for (slot, &v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot = slot.saturating_add(v);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of recorded measurements.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded measurements.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets as `(index, count)` pairs in index order —
    /// the sparse form the JSONL renderer and the trace differ consume.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Sets the count of one bucket directly — the trace parser's
    /// reconstruction hook. Also accumulates `count`; the caller restores
    /// `sum` via [`StepHistogram::set_sum`] because bucket edges only
    /// bound, not determine, the recorded values.
    pub fn set_bucket(&mut self, index: usize, count: u64) {
        if index < HISTOGRAM_BUCKETS {
            let prev = std::mem::replace(&mut self.counts[index], count);
            self.count = self.count.saturating_sub(prev).saturating_add(count);
        }
    }

    /// Restores the exact value sum (trace reconstruction; see
    /// [`StepHistogram::set_bucket`]).
    pub fn set_sum(&mut self, sum: u64) {
        self.sum = sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_dyadic() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_lower_bound(i) - 1).max(1), i.max(2) - 1);
        }
    }

    #[test]
    fn record_tracks_count_sum_and_buckets() {
        let mut h = StepHistogram::new();
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 11);
        let sparse: Vec<_> = h.buckets().collect();
        assert_eq!(sparse, vec![(0, 1), (1, 1), (3, 2)]);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut parts = Vec::new();
        for i in 0..6u64 {
            let mut h = StepHistogram::new();
            h.record(i * 13 + 1);
            h.record(i);
            parts.push(h);
        }
        let mut fwd = StepHistogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = StepHistogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.count(), 12);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let values_a = [0u64, 3, 7, 1 << 40];
        let values_b = [2u64, 3, 1000];
        let mut a = StepHistogram::new();
        values_a.iter().for_each(|&v| a.record(v));
        let mut b = StepHistogram::new();
        values_b.iter().for_each(|&v| b.record(v));
        a.merge(&b);
        let mut whole = StepHistogram::new();
        values_a
            .iter()
            .chain(values_b.iter())
            .for_each(|&v| whole.record(v));
        assert_eq!(a, whole);
    }

    #[test]
    fn reconstruction_round_trips() {
        let mut h = StepHistogram::new();
        h.record(9);
        h.record(0);
        h.record(70);
        let mut rebuilt = StepHistogram::new();
        for (i, c) in h.buckets() {
            rebuilt.set_bucket(i, c);
        }
        rebuilt.set_sum(h.sum());
        assert_eq!(rebuilt, h);
    }
}
