//! # pscds-obs
//!
//! Structured tracing and metrics for the pscds engine ladder — the
//! observability layer ROADMAP's bench trajectory calls for, built with
//! zero external dependencies (mirroring the `pscds-analysis`
//! discipline).
//!
//! Three design rules keep instrumentation compatible with the engine
//! invariants enforced by `pscds-lint`:
//!
//! 1. **Budget-clock coherence.** This crate never reads a clock. Every
//!    timestamp is a `u64` nanosecond count *supplied by the caller*,
//!    read through `pscds_core::govern::Budget::elapsed_ns()` — the same
//!    monotonic clock the cooperative budget charges against. L2
//!    `budget-bypass` (no `Instant::now` outside `govern`) therefore
//!    stays clean without a single `lint-allow`, and the new L6
//!    `obs-api` rule additionally forbids clock reads inside this crate.
//! 2. **Deterministic aggregation.** [`MetricSet`] counters are plain
//!    sums over `&'static str` names. Engines aggregate one `MetricSet`
//!    per chunk of partitioned work and merge them *in chunk order* at
//!    the `partition::run_chunks` join point, so instrumented parallel
//!    runs report bit-identical counter totals at any thread count.
//!    Gauges (high-water marks, scheduling diagnostics) are max-merged
//!    and explicitly excluded from that cross-thread identity contract.
//! 3. **Free when disabled.** [`ObsSession::disabled`] allocates nothing
//!    and every recording method early-returns before touching the heap;
//!    the disabled fast path is covered by an allocation-counting test.
//!
//! Records leave the process through pluggable [`Sink`]s: [`NoopSink`]
//! (compiled to an empty inline body), [`MemorySink`] (tests), and
//! [`JsonlSink`] (the CLI's `--trace-out PATH` / `PSCDS_TRACE`). Every
//! trace starts with the `{"pscds_trace":1}` schema header.
//!
//! **Step attribution** extends rule 2 to a profiler: every
//! `budget.ticks` emission is *paired* with a [`SpanStack::charge`] of
//! the same delta against the innermost open span (the one-call form is
//! [`ObsSession::charge_steps`]), so a finished trace carries an exact
//! per-phase self/total step breakdown whose grand total equals the
//! `budget.ticks` counter. Charges are only measured at thread-invariant
//! points — per-chunk deltas inside `run_chunks` workers, or genuinely
//! serial phases — so the attribution, the [`StepHistogram`]s (log2
//! buckets, sum-merged), and the [`ExemplarSet`]s (K smallest keys,
//! union-merged) all join the bit-identical-at-any-thread-count
//! contract. See [`profile`] for the shared rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exemplar;
pub mod hist;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod session;
pub mod sink;
pub mod span;

pub use exemplar::{ExemplarSet, EXEMPLAR_KEYS};
pub use hist::{StepHistogram, HISTOGRAM_BUCKETS};
pub use metrics::MetricSet;
pub use profile::{critical_path, phase_table, render_critical_path, render_summary, PhaseRow};
pub use session::{Event, ObsReport, ObsSession};
pub use sink::{render_record, JsonlSink, MemorySink, NoopSink, Record, Sink, TRACE_VERSION};
pub use span::{Span, SpanStack};
