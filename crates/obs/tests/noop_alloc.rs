//! The disabled session is free: every `ObsSession` method early-returns
//! before touching the heap, so engines can call them unconditionally on
//! hot paths. This test installs a counting global allocator and proves
//! the whole disabled API surface performs zero allocations.
//!
//! The library itself forbids `unsafe`; the counting allocator below is
//! test-harness scaffolding, outside that boundary.

use pscds_obs::{names, MetricSet, ObsSession};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A pass-through allocator that counts allocation calls.
struct Counting;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

// NOTE: this file must contain exactly one #[test]. The default harness
// runs tests on parallel threads, and any concurrent test would allocate
// and break the zero-allocation window.
#[test]
fn disabled_session_never_allocates() {
    let mut obs = ObsSession::disabled();
    let empty = MetricSet::new();
    assert!(!obs.is_enabled());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1_000u64 {
        obs.counter_add(names::BUDGET_TICKS, i);
        obs.gauge_max(names::DP_CACHE_PEAK, i);
        obs.histogram_record(names::DP_CHUNK_STEPS, i);
        obs.exemplar(names::DP_FALLBACK_NODES, "l00.0000000000000000");
        obs.charge_steps(i);
        obs.span_open("dp.run", i);
        obs.span_attr("engine", "dp");
        obs.event("budget.trip", i, &[("phase", "dp")]);
        obs.span_close(i + 1);
        obs.merge_metrics(&empty);
        obs.graft_spans(Vec::new());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "the disabled observability path must not allocate"
    );

    // And tearing it down yields an empty report without surprises.
    let report = obs.finish();
    assert!(report.metrics.is_empty());
    assert!(report.spans.is_empty());
    assert!(report.events.is_empty());
}
