//! Symmetric source collections: `k` sources with *identical* `(c, s)`
//! claims over pairwise-disjoint extensions of equal size.
//!
//! This is the family that exercises the circuit compiler's residual-key
//! canonicalization (see DESIGN.md §3.13): swapping any two sources is an
//! automorphism of the instance, so residual states that differ only by a
//! permutation of the interchangeable sources' `(deficit, margin)`
//! triples denote the same count, and the compiler may share one node for
//! the whole orbit. Two knobs matter for the gap to be real:
//!
//! * the claimed **completeness must be positive** — with `c = 0` every
//!   margin clamps to zero and every deficit prunes to zero, so the exact
//!   keys are already one-per-level and there is nothing to share;
//! * a **padding class must exist**, so distinct per-source counts reach
//!   the same level with genuinely permuted triples.

use pscds_core::{CoreError, SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the symmetric-collection generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SymmetricConfig {
    /// Number of interchangeable sources.
    pub n_sources: usize,
    /// Extension size of each source (pairwise disjoint).
    pub tuples_per_source: usize,
    /// Claimed completeness `(numerator, denominator)`, identical across
    /// sources. Keep the numerator positive: `c = 0` degenerates the
    /// family (no canonical sharing left to demonstrate).
    pub completeness: (u64, u64),
    /// Claimed soundness `(numerator, denominator)`, identical across
    /// sources.
    pub soundness: (u64, u64),
    /// Number of padding constants outside every extension.
    pub padding: u64,
    /// RNG seed (shuffles which constants land in which extension; the
    /// instance is symmetric either way, so this only perturbs names).
    pub seed: u64,
}

impl Default for SymmetricConfig {
    fn default() -> Self {
        SymmetricConfig {
            n_sources: 3,
            tuples_per_source: 4,
            completeness: (1, 4),
            soundness: (1, 4),
            padding: 4,
            seed: 1,
        }
    }
}

/// A generated symmetric instance.
#[derive(Clone, Debug)]
pub struct SymmetricScenario {
    /// The collection: `n_sources` interchangeable identity views.
    pub collection: SourceCollection,
    /// The padding count to analyze it under (from the config).
    pub padding: u64,
}

/// Generates a symmetric instance.
///
/// # Errors
/// [`CoreError::BadDomain`] on a zero bound denominator or a zero
/// completeness numerator (the degenerate family — see the module docs);
/// otherwise propagates descriptor validation.
pub fn generate(config: &SymmetricConfig) -> Result<SymmetricScenario, CoreError> {
    let (c_num, c_den) = config.completeness;
    let (s_num, s_den) = config.soundness;
    if c_den == 0 || s_den == 0 {
        return Err(CoreError::BadDomain {
            message: "symmetric family: bound denominators must be positive".into(),
        });
    }
    if c_num == 0 {
        return Err(CoreError::BadDomain {
            message: "symmetric family: completeness must be positive, or every \
                      residual margin clamps to zero and no canonical sharing is left"
                .into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    // One shared constant pool, shuffled then dealt out in disjoint
    // blocks: which names land in which source is seed-dependent, the
    // symmetric shape is not.
    let mut pool: Vec<Value> = (0..config.n_sources * config.tuples_per_source)
        .map(|i| Value::sym(&format!("x{i}")))
        .collect();
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng.gen_range(0..=i));
    }
    let c = Frac::new(c_num, c_den);
    let s = Frac::new(s_num, s_den);
    let sources = (0..config.n_sources)
        .map(|i| {
            let block = &pool[i * config.tuples_per_source..(i + 1) * config.tuples_per_source];
            SourceDescriptor::identity(
                format!("S{i}"),
                &format!("V{i}"),
                "R",
                1,
                block.iter().map(|&v| [v]),
                c,
                s,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SymmetricScenario {
        collection: SourceCollection::from_sources(sources),
        padding: config.padding,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::confidence::{
        analyze_circuit, compile_circuit, count_dp, CircuitConfig, ConfidenceAnalysis, DpConfig,
        SignatureAnalysis,
    };
    use pscds_core::govern::Budget;
    use pscds_numeric::RowCache;
    use pscds_obs::{names, MetricSet};

    #[test]
    fn deterministic_given_seed() {
        let cfg = SymmetricConfig::default();
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.collection, b.collection);
        let other = generate(&SymmetricConfig {
            seed: 2,
            ..cfg.clone()
        })
        .unwrap();
        // A different seed deals different names into the blocks.
        assert_ne!(a.collection, other.collection);
    }

    #[test]
    fn shapes_respect_config() {
        let cfg = SymmetricConfig {
            n_sources: 4,
            tuples_per_source: 3,
            ..Default::default()
        };
        let s = generate(&cfg).unwrap();
        assert_eq!(s.collection.len(), 4);
        let id = s.collection.as_identity().unwrap();
        assert_eq!(id.all_tuples().len(), 12, "disjoint extensions");
        // Identical claims on every source: the instance is symmetric.
        for src in s.collection.sources() {
            assert_eq!(src.completeness(), Frac::new(1, 4));
            assert_eq!(src.soundness(), Frac::new(1, 4));
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let err = generate(&SymmetricConfig {
            completeness: (0, 4),
            ..Default::default()
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::BadDomain { .. }));
        let err = generate(&SymmetricConfig {
            soundness: (1, 0),
            ..Default::default()
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::BadDomain { .. }));
    }

    /// The family's whole point: on a symmetric instance the circuit's
    /// canonical arena is strictly smaller than the DP's residual-state
    /// count — node sharing occurred — and the obs counters say so.
    #[test]
    fn canonical_sharing_beats_the_dp_residual_states() {
        let scenario = generate(&SymmetricConfig::default()).unwrap();
        let identity = scenario.collection.as_identity().unwrap();
        let budget = Budget::unlimited();

        let circuit = compile_circuit(
            SignatureAnalysis::new(&identity, scenario.padding),
            &budget,
            &CircuitConfig::default(),
        )
        .unwrap();
        let mut rows = RowCache::new();
        let (dp, dp_stats) = count_dp(
            SignatureAnalysis::new(&identity, scenario.padding),
            &budget,
            &DpConfig::default(),
            &mut rows,
        )
        .unwrap();

        // Same answers as the uncompiled engines, first of all.
        let traversed = analyze_circuit(&circuit);
        let dfs = ConfidenceAnalysis::analyze(&identity, scenario.padding);
        assert_eq!(traversed.world_count(), dfs.world_count());
        assert_eq!(traversed.world_count(), dp.world_count());
        assert_eq!(traversed.feasible_vectors(), dfs.feasible_vectors());

        // The obs-counter form of the sharing claim: circuit.nodes (the
        // canonical arena) is strictly below the DP's residual-state
        // count, and the shared-node counter is positive.
        let mut metrics = MetricSet::new();
        circuit.stats().record_into(&mut metrics);
        dp_stats.record_into(&mut metrics);
        let canonical = metrics.counter(names::CIRCUIT_NODES);
        let residual_states = metrics.counter(names::DP_CACHE_MISSES);
        assert!(
            canonical < residual_states,
            "no sharing: {canonical} canonical nodes vs {residual_states} DP residual states"
        );
        assert!(metrics.counter(names::CIRCUIT_SHARED_NODES) > 0);
        assert_eq!(
            metrics.counter(names::CIRCUIT_NODES) + metrics.counter(names::CIRCUIT_SHARED_NODES),
            metrics.counter(names::CIRCUIT_EXACT_NODES),
            "arena accounting"
        );
    }
}
