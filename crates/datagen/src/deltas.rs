//! Update-stream workloads: the dynamic scenarios replayed as ordered
//! [`DeltaBatch`] streams for the incremental-maintenance engine
//! (experiment E10 and the CLI's `--deltas` replay mode).
//!
//! Two families, chosen to sit at the two ends of the maintenance
//! spectrum:
//!
//! * [`cache_sim_stream`] — fixed-capacity replacement churn: every
//!   update evicts one object and installs a fresh one *into the same
//!   caches* (the replacement inherits the victim's membership
//!   signature), so class sizes, bounds, and padding all survive and
//!   the maintained session answers from cached state. A configurable
//!   `drift` rate mixes in non-inheriting replacements that shift class
//!   sizes — the patch/recompile fallback paths.
//! * [`mirrors_stream`] — mirror-resync events: per batch one mirror
//!   drops a carried-obsolete object and picks up a live object it was
//!   missing. Objects migrate between signature classes, so this stream
//!   is structurally volatile — the recompute-bound contrast workload.
//!
//! Both generators are deterministic in their seed, and both emit
//! streams that round-trip through the interchange text format
//! ([`pscds_core::delta::format_delta_stream`]).

use pscds_core::delta::{DeltaBatch, SourceDelta};
use pscds_core::{CoreError, SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::{Fact, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generated update-stream workload: the epoch-0 catalog, the padding
/// (domain facts outside every initial extension) the analyses should
/// use, and the ordered batches to replay against it.
#[derive(Clone, Debug)]
pub struct DeltaStream {
    /// The initial source catalog.
    pub initial: SourceCollection,
    /// Domain padding at epoch 0 (the fact universe stays fixed across
    /// the stream).
    pub padding: u64,
    /// Ordered update batches.
    pub batches: Vec<DeltaBatch>,
}

impl DeltaStream {
    /// Renders the batches in the interchange text format (the catalog
    /// travels separately, via
    /// [`pscds_core::textfmt::format_collection`]).
    #[must_use]
    pub fn batches_text(&self) -> String {
        pscds_core::delta::format_delta_stream(&self.batches)
    }
}

/// Configuration for the cache-replacement stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheStreamConfig {
    /// Objects resident per cache-subset group at epoch 0.
    pub group_size: usize,
    /// Number of caches (sources). Objects are spread across every
    /// non-empty cache subset, so class count is `2^n_caches - 1` plus
    /// padding.
    pub n_caches: usize,
    /// Update batches to generate.
    pub batches: usize,
    /// Replacement operations per batch.
    pub updates_per_batch: usize,
    /// Probability that a replacement *drifts*: the incoming object
    /// lands in a different cache subset than its victim, shifting two
    /// class sizes (`0.0` = pure signature-inheriting churn).
    pub drift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CacheStreamConfig {
    fn default() -> Self {
        CacheStreamConfig {
            group_size: 4,
            n_caches: 2,
            batches: 8,
            updates_per_batch: 2,
            drift: 0.0,
            seed: 1,
        }
    }
}

fn object(id: usize) -> Value {
    Value::sym(&format!("page{id}"))
}

/// The fixed-capacity cache-replacement workload (see module docs).
/// Every batch evicts `updates_per_batch` resident objects and installs
/// fresh ones; with `drift = 0` each replacement inherits its victim's
/// cache subset exactly, so every epoch preserves the projected
/// structure and the maintained session never recompiles.
///
/// Claims are fixed at `c = 1/2, s = 1/2` for every cache, which keeps
/// the instance consistent throughout (half-stale, half-sound caches
/// admit the straddling worlds).
///
/// # Errors
/// Propagates descriptor validation (unreachable for well-formed
/// configs).
pub fn cache_sim_stream(config: &CacheStreamConfig) -> Result<DeltaStream, CoreError> {
    let n_caches = config.n_caches.clamp(1, 6);
    let n_subsets = (1usize << n_caches) - 1;
    let mut rng = StdRng::seed_from_u64(config.seed);
    // groups[g] = resident objects whose membership signature is the
    // subset mask g+1 (mask 0 is the padding — never resident).
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_subsets];
    let mut next_id = 0usize;
    for group in &mut groups {
        for _ in 0..config.group_size.max(1) {
            group.push(next_id);
            next_id += 1;
        }
    }
    let initial = {
        let mut sources = Vec::with_capacity(n_caches);
        for cache in 0..n_caches {
            let extension: Vec<[Value; 1]> = groups
                .iter()
                .enumerate()
                .filter(|(g, _)| (g + 1) >> cache & 1 == 1)
                .flat_map(|(_, members)| members.iter().map(|&id| [object(id)]))
                .collect();
            sources.push(SourceDescriptor::identity(
                format!("cache{cache}"),
                &format!("C{cache}"),
                "Object",
                1,
                extension,
                Frac::HALF,
                Frac::HALF,
            )?);
        }
        SourceCollection::from_sources(sources)
    };
    let mut batches = Vec::with_capacity(config.batches);
    for _ in 0..config.batches {
        let mut deltas: Vec<SourceDelta> = (0..n_caches)
            .map(|cache| SourceDelta {
                source: format!("cache{cache}"),
                delete: Vec::new(),
                insert: Vec::new(),
            })
            .collect();
        for _ in 0..config.updates_per_batch.max(1) {
            let from_group = rng.gen_range(0..n_subsets);
            let victims = &mut groups[from_group];
            let victim = victims.swap_remove(rng.gen_range(0..victims.len()));
            let to_group = if config.drift > 0.0 && rng.gen_bool(config.drift) {
                rng.gen_range(0..n_subsets)
            } else {
                from_group
            };
            let incoming = next_id;
            next_id += 1;
            groups[to_group].push(incoming);
            for (cache, delta) in deltas.iter_mut().enumerate() {
                if (from_group + 1) >> cache & 1 == 1 {
                    delta
                        .delete
                        .push(Fact::new(format!("C{cache}").as_str(), [object(victim)]));
                }
                if (to_group + 1) >> cache & 1 == 1 {
                    delta
                        .insert
                        .push(Fact::new(format!("C{cache}").as_str(), [object(incoming)]));
                }
            }
        }
        deltas.retain(|d| !d.delete.is_empty() || !d.insert.is_empty());
        batches.push(DeltaBatch { deltas });
    }
    Ok(DeltaStream {
        initial,
        // One padding slot per future incoming object keeps the fact
        // universe fixed across the whole stream; evictions refill it.
        padding: (config.batches * config.updates_per_batch.max(1)) as u64,
        batches,
    })
}

/// Configuration for the mirror-resync stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MirrorStreamConfig {
    /// The underlying static scenario (origin, obsolete set, mirrors).
    pub mirrors: crate::mirrors::MirrorConfig,
    /// Resync events to generate (one batch each).
    pub batches: usize,
    /// RNG seed for the resync schedule (independent of the scenario
    /// seed).
    pub seed: u64,
}

impl Default for MirrorStreamConfig {
    fn default() -> Self {
        MirrorStreamConfig {
            mirrors: crate::mirrors::MirrorConfig::default(),
            batches: 6,
            seed: 2,
        }
    }
}

/// The mirror-resync workload: per batch, one mirror drops one obsolete
/// object it still carries and picks up one live object it was missing
/// (`|v|` constant, membership signatures shifting). Structurally
/// volatile by design — most epochs force patches or recompiles.
///
/// # Errors
/// Propagates scenario generation.
pub fn mirrors_stream(config: &MirrorStreamConfig) -> Result<DeltaStream, CoreError> {
    let scenario = crate::mirrors::generate(&config.mirrors)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Track each mirror's contents as value sets to schedule resyncs.
    let mut contents: Vec<Vec<Value>> = scenario
        .collection
        .sources()
        .iter()
        .map(|s| s.extension().iter().map(|f| f.args[0]).collect())
        .collect();
    let views: Vec<String> = scenario
        .collection
        .sources()
        .iter()
        .map(|s| s.view().head().relation.as_str().to_owned())
        .collect();
    let names: Vec<String> = scenario
        .collection
        .sources()
        .iter()
        .map(|s| s.name().to_owned())
        .collect();
    let mut batches = Vec::with_capacity(config.batches);
    for _ in 0..config.batches {
        let mut deltas = Vec::new();
        // Try each mirror in a seeded random rotation until one has both
        // an obsolete object to shed and a missing live object to fetch.
        let start = rng.gen_range(0..contents.len());
        for offset in 0..contents.len() {
            let m = (start + offset) % contents.len();
            let stale: Vec<Value> = contents[m]
                .iter()
                .copied()
                .filter(|v| scenario.obsolete.contains(v))
                .collect();
            let missing: Vec<Value> = scenario
                .origin
                .iter()
                .copied()
                .filter(|v| !contents[m].contains(v))
                .collect();
            if stale.is_empty() || missing.is_empty() {
                continue;
            }
            let drop = stale[rng.gen_range(0..stale.len())];
            let fetch = missing[rng.gen_range(0..missing.len())];
            contents[m].retain(|&v| v != drop);
            contents[m].push(fetch);
            deltas.push(SourceDelta {
                source: names[m].clone(),
                delete: vec![Fact::new(views[m].as_str(), [drop])],
                insert: vec![Fact::new(views[m].as_str(), [fetch])],
            });
            break;
        }
        batches.push(DeltaBatch { deltas });
    }
    Ok(DeltaStream {
        initial: scenario.collection,
        padding: 0,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::confidence::ConfidenceAnalysis;
    use pscds_core::delta::{analyze_incremental, parse_delta_stream, DeltaProvider, DeltaSession};
    use pscds_core::source::CatalogProvider;

    #[test]
    fn cache_stream_is_deterministic() {
        let cfg = CacheStreamConfig::default();
        let a = cache_sim_stream(&cfg).unwrap();
        let b = cache_sim_stream(&cfg).unwrap();
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.batches.len(), 8);
    }

    #[test]
    fn cache_stream_round_trips_through_text() {
        let stream = cache_sim_stream(&CacheStreamConfig::default()).unwrap();
        let text = stream.batches_text();
        assert_eq!(parse_delta_stream(&text).unwrap(), stream.batches);
        let catalog_text = pscds_core::textfmt::format_collection(&stream.initial);
        let reparsed = pscds_core::textfmt::parse_collection(&catalog_text).unwrap();
        assert_eq!(reparsed, stream.initial);
    }

    #[test]
    fn driftless_cache_stream_reuses_every_epoch() {
        let stream = cache_sim_stream(&CacheStreamConfig::default()).unwrap();
        let mut session = DeltaSession::new(&stream.initial, stream.padding).unwrap();
        let _ = analyze_incremental(&mut session);
        for batch in &stream.batches {
            session.apply_batch(batch).unwrap();
            let incremental = analyze_incremental(&mut session);
            let scratch = ConfidenceAnalysis::analyze(session.collection(), session.padding());
            assert_eq!(incremental.world_count(), scratch.world_count());
        }
        // Signature-inheriting churn: every post-warmup answer reused.
        assert_eq!(session.stats().results_reused, stream.batches.len() as u64);
        assert_eq!(session.stats().recompiles_forced, 0);
        assert_eq!(session.stats().nodes_patched, 0);
    }

    #[test]
    fn drifting_cache_stream_still_answers_identically() {
        let stream = cache_sim_stream(&CacheStreamConfig {
            drift: 0.5,
            seed: 7,
            ..CacheStreamConfig::default()
        })
        .unwrap();
        let mut session = DeltaSession::new(&stream.initial, stream.padding).unwrap();
        for batch in &stream.batches {
            session.apply_batch(batch).unwrap();
            let incremental = analyze_incremental(&mut session);
            let scratch = ConfidenceAnalysis::analyze(session.collection(), session.padding());
            assert_eq!(incremental.world_count(), scratch.world_count());
            assert_eq!(incremental.feasible_vectors(), scratch.feasible_vectors());
        }
    }

    #[test]
    fn cache_stream_replays_through_the_provider_boundary() {
        let stream = cache_sim_stream(&CacheStreamConfig::default()).unwrap();
        let mut provider = DeltaProvider::new(CatalogProvider::new(&stream.initial));
        for batch in &stream.batches {
            provider.apply(batch).unwrap();
        }
        // The folded catalog matches applying the batches directly.
        let mut direct = stream.initial.clone();
        for batch in &stream.batches {
            direct = pscds_core::delta::apply_batch_to_catalog(&direct, batch).unwrap();
        }
        assert_eq!(*provider.current(), direct);
    }

    #[test]
    fn mirror_stream_round_trips_and_replays() {
        let stream = mirrors_stream(&MirrorStreamConfig::default()).unwrap();
        assert_eq!(stream.batches.len(), 6);
        let text = stream.batches_text();
        assert_eq!(parse_delta_stream(&text).unwrap(), stream.batches);
        let mut session = DeltaSession::new(&stream.initial, stream.padding).unwrap();
        for batch in &stream.batches {
            session.apply_batch(batch).unwrap();
            let incremental = analyze_incremental(&mut session);
            let scratch = ConfidenceAnalysis::analyze(session.collection(), session.padding());
            assert_eq!(incremental.world_count(), scratch.world_count());
        }
    }

    #[test]
    fn mirror_stream_is_deterministic() {
        let cfg = MirrorStreamConfig::default();
        let a = mirrors_stream(&cfg).unwrap();
        let b = mirrors_stream(&cfg).unwrap();
        assert_eq!(a.batches, b.batches);
    }
}
