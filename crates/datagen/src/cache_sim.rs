//! A temporal cache-synchronization simulator.
//!
//! Section 6 notes the identity-view theory applies to "multiple caches of
//! a set of objects (e.g. Web pages, memory locations), multiple
//! mirror-sites of a given site". This module makes that dynamic: an
//! origin site whose object set *churns* over discrete epochs, and caches
//! that each hold a full snapshot from some past epoch (their *lag*). A
//! cache lagging `ℓ` epochs misses everything created since (completeness
//! loss) and still serves everything deleted since (soundness loss) — the
//! measured bounds degrade monotonically with lag, which experiment E9
//! quantifies.

use pscds_core::{CoreError, SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration for the churning-origin simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheSimConfig {
    /// Objects on the origin at epoch 0.
    pub initial_objects: usize,
    /// Epochs to simulate (snapshots are kept for each).
    pub epochs: usize,
    /// Probability an existing object is deleted in an epoch.
    pub churn_delete: f64,
    /// Expected number of objects created per epoch.
    pub churn_create: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CacheSimConfig {
    fn default() -> Self {
        CacheSimConfig {
            initial_objects: 12,
            epochs: 6,
            churn_delete: 0.15,
            churn_create: 2,
            seed: 1,
        }
    }
}

/// The simulated history: one object set per epoch (index 0 = oldest).
#[derive(Clone, Debug)]
pub struct CacheSimHistory {
    /// Snapshot of the origin's objects at each epoch.
    pub snapshots: Vec<BTreeSet<Value>>,
}

impl CacheSimHistory {
    /// The current (latest) origin state.
    #[must_use]
    pub fn current(&self) -> &BTreeSet<Value> {
        self.snapshots.last().expect("at least one epoch")
    }

    /// The exact measures of a cache holding the snapshot `lag` epochs
    /// old, against the *current* origin: `(completeness, soundness)`.
    ///
    /// # Panics
    /// Panics if `lag >= epochs`.
    #[must_use]
    pub fn measures_at_lag(&self, lag: usize) -> (Frac, Frac) {
        let current = self.current();
        let held = &self.snapshots[self.snapshots.len() - 1 - lag];
        let live = held.intersection(current).count() as u64;
        let completeness = if current.is_empty() {
            Frac::ONE
        } else {
            Frac::new(live, current.len() as u64)
        };
        let soundness = if held.is_empty() {
            Frac::ONE
        } else {
            Frac::new(live, held.len() as u64)
        };
        (completeness, soundness)
    }

    /// Builds a source collection of caches at the given lags, each
    /// claiming its measured-exact bounds (so the current origin is a
    /// possible world by construction).
    ///
    /// # Errors
    /// Propagates descriptor validation; lags must be `< epochs`.
    pub fn caches_at_lags(&self, lags: &[usize]) -> Result<SourceCollection, CoreError> {
        let mut sources = Vec::with_capacity(lags.len());
        for (i, &lag) in lags.iter().enumerate() {
            if lag >= self.snapshots.len() {
                return Err(CoreError::BadDomain {
                    message: format!(
                        "lag {lag} exceeds simulated history of {} epochs",
                        self.snapshots.len()
                    ),
                });
            }
            let held = &self.snapshots[self.snapshots.len() - 1 - lag];
            let (completeness, soundness) = self.measures_at_lag(lag);
            sources.push(SourceDescriptor::identity(
                format!("cache{i}_lag{lag}"),
                &format!("C{i}"),
                "Object",
                1,
                held.iter().map(|&v| [v]),
                completeness,
                soundness,
            )?);
        }
        Ok(SourceCollection::from_sources(sources))
    }
}

/// Runs the churn simulation.
#[must_use]
pub fn simulate(config: &CacheSimConfig) -> CacheSimHistory {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut next_id = config.initial_objects;
    let mut current: BTreeSet<Value> = (0..config.initial_objects)
        .map(|i| Value::sym(&format!("page{i}")))
        .collect();
    let mut snapshots = vec![current.clone()];
    for _ in 1..config.epochs.max(1) {
        current.retain(|_| !rng.gen_bool(config.churn_delete));
        for _ in 0..config.churn_create {
            current.insert(Value::sym(&format!("page{next_id}")));
            next_id += 1;
        }
        snapshots.push(current.clone());
    }
    CacheSimHistory { snapshots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::consistency::decide_identity;
    use pscds_core::measures::in_poss;
    use pscds_relational::{Database, Fact};

    fn history() -> CacheSimHistory {
        simulate(&CacheSimConfig::default())
    }

    #[test]
    fn snapshots_shape() {
        let h = history();
        assert_eq!(h.snapshots.len(), 6);
        assert_eq!(h.snapshots[0].len(), 12);
    }

    #[test]
    fn zero_lag_cache_is_exact() {
        let h = history();
        let (c, s) = h.measures_at_lag(0);
        assert_eq!(c, Frac::ONE);
        assert_eq!(s, Frac::ONE);
    }

    #[test]
    fn measures_degrade_with_lag_on_average() {
        // With churn both ways, strict monotonicity per-seed isn't
        // guaranteed, but the oldest snapshot can't beat the freshest.
        let mut old_worse = 0;
        let mut trials = 0;
        for seed in 0..10 {
            let h = simulate(&CacheSimConfig {
                seed,
                ..Default::default()
            });
            let (c0, s0) = h.measures_at_lag(0);
            let (c5, s5) = h.measures_at_lag(5);
            assert!(c0 >= c5, "seed {seed}");
            assert!(s0 >= s5, "seed {seed}");
            if c5 < c0 || s5 < s0 {
                old_worse += 1;
            }
            trials += 1;
        }
        assert!(
            old_worse * 2 > trials,
            "churn must actually degrade stale caches"
        );
    }

    #[test]
    fn current_origin_is_possible_world() {
        let h = history();
        let collection = h.caches_at_lags(&[0, 1, 3, 5]).unwrap();
        let world = Database::from_facts(h.current().iter().map(|&v| Fact::new("Object", [v])));
        assert!(in_poss(&world, &collection).unwrap());
        let identity = collection.as_identity().unwrap();
        assert!(decide_identity(&identity, 0).is_consistent());
    }

    #[test]
    fn excessive_lag_rejected() {
        let h = history();
        assert!(matches!(
            h.caches_at_lags(&[99]),
            Err(CoreError::BadDomain { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CacheSimConfig::default();
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.snapshots, b.snapshots);
    }

    #[test]
    fn churn_actually_churns() {
        let h = history();
        // Something must have been created and something deleted over the run.
        let first = &h.snapshots[0];
        let last = h.current();
        assert!(last.difference(first).next().is_some(), "no creations");
        assert!(first.difference(last).next().is_some(), "no deletions");
    }
}
