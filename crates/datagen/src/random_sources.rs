//! Random identity-view source collections.
//!
//! Two modes:
//!
//! * **planted** — a hidden ground-truth world is sampled first and every
//!   source's bounds are set to its *measured* completeness/soundness, so
//!   the collection is consistent by construction (the world witnesses
//!   it). Used for confidence experiments, where consistency is required.
//! * **adversarial** — bounds are sampled independently of the data, so
//!   instances straddle the consistent/inconsistent boundary. Used for the
//!   consistency-scaling experiment E2, where hard instances matter.

use pscds_core::{CoreError, SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration for the random identity-collection generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomIdentityConfig {
    /// Number of sources.
    pub n_sources: usize,
    /// Domain size (unary relation `R` over `u0 … u_{domain_size−1}`).
    pub domain_size: usize,
    /// Probability an element enters a source's extension.
    pub extension_density: f64,
    /// Denominator granularity for sampled bounds (adversarial mode).
    pub bound_denominator: u64,
    /// Plant a hidden world and derive the bounds from it?
    pub planted: bool,
    /// Probability an element enters the planted world.
    pub world_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomIdentityConfig {
    fn default() -> Self {
        RandomIdentityConfig {
            n_sources: 3,
            domain_size: 8,
            extension_density: 0.4,
            bound_denominator: 4,
            planted: true,
            world_density: 0.5,
            seed: 1,
        }
    }
}

/// A generated instance.
#[derive(Clone, Debug)]
pub struct RandomIdentityScenario {
    /// The collection.
    pub collection: SourceCollection,
    /// The domain (all constants).
    pub domain: Vec<Value>,
    /// The planted world's elements (empty in adversarial mode).
    pub planted_world: BTreeSet<Value>,
}

/// Generates an instance.
///
/// # Errors
/// Propagates descriptor validation (unreachable for well-formed configs).
pub fn generate(config: &RandomIdentityConfig) -> Result<RandomIdentityScenario, CoreError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let domain: Vec<Value> = (0..config.domain_size)
        .map(|i| Value::sym(&format!("u{i}")))
        .collect();
    let planted_world: BTreeSet<Value> = if config.planted {
        domain
            .iter()
            .filter(|_| rng.gen_bool(config.world_density))
            .copied()
            .collect()
    } else {
        BTreeSet::new()
    };

    let mut sources = Vec::with_capacity(config.n_sources);
    for i in 0..config.n_sources {
        let extension: Vec<Value> = domain
            .iter()
            .filter(|_| rng.gen_bool(config.extension_density))
            .copied()
            .collect();
        let (c, s) = if config.planted {
            // Measured against the planted world: D = world, φ(D) = world.
            let inter = extension
                .iter()
                .filter(|v| planted_world.contains(v))
                .count() as u64;
            let c = if planted_world.is_empty() {
                Frac::ONE
            } else {
                Frac::new(inter, planted_world.len() as u64)
            };
            let s = if extension.is_empty() {
                Frac::ONE
            } else {
                Frac::new(inter, extension.len() as u64)
            };
            (c, s)
        } else {
            let den = config.bound_denominator.max(1);
            (
                Frac::new(rng.gen_range(0..=den), den),
                Frac::new(rng.gen_range(0..=den), den),
            )
        };
        sources.push(SourceDescriptor::identity(
            format!("S{i}"),
            &format!("V{i}"),
            "R",
            1,
            extension.into_iter().map(|v| [v]),
            c,
            s,
        )?);
    }
    Ok(RandomIdentityScenario {
        collection: SourceCollection::from_sources(sources),
        domain,
        planted_world,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::consistency::decide_identity;
    use pscds_core::measures::in_poss;
    use pscds_relational::{Database, Fact};

    #[test]
    fn planted_instances_are_consistent() {
        for seed in 0..20 {
            let cfg = RandomIdentityConfig {
                seed,
                ..Default::default()
            };
            let scenario = generate(&cfg).unwrap();
            // The planted world is a witness.
            let world =
                Database::from_facts(scenario.planted_world.iter().map(|&v| Fact::new("R", [v])));
            assert!(
                in_poss(&world, &scenario.collection).unwrap(),
                "seed {seed}: planted world must satisfy all bounds"
            );
            // And the solver agrees.
            let id = scenario.collection.as_identity().unwrap();
            let padding = scenario.domain.len() as u64 - id.all_tuples().len() as u64;
            assert!(decide_identity(&id, padding).is_consistent(), "seed {seed}");
        }
    }

    #[test]
    fn adversarial_instances_vary() {
        let mut consistent = 0;
        let mut inconsistent = 0;
        for seed in 0..40 {
            let cfg = RandomIdentityConfig {
                planted: false,
                seed,
                ..Default::default()
            };
            let scenario = generate(&cfg).unwrap();
            let id = scenario.collection.as_identity().unwrap();
            let padding = scenario.domain.len() as u64 - id.all_tuples().len() as u64;
            if decide_identity(&id, padding).is_consistent() {
                consistent += 1;
            } else {
                inconsistent += 1;
            }
        }
        // Both outcomes must occur — otherwise E2 isn't exercising the
        // decision boundary.
        assert!(consistent > 0, "no consistent instances sampled");
        assert!(inconsistent > 0, "no inconsistent instances sampled");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomIdentityConfig::default();
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.collection, b.collection);
        assert_eq!(a.planted_world, b.planted_world);
    }

    #[test]
    fn shapes_respect_config() {
        let cfg = RandomIdentityConfig {
            n_sources: 5,
            domain_size: 12,
            ..Default::default()
        };
        let s = generate(&cfg).unwrap();
        assert_eq!(s.collection.len(), 5);
        assert_eq!(s.domain.len(), 12);
        let id = s.collection.as_identity().unwrap();
        assert!(id.all_tuples().len() <= 12);
    }
}
