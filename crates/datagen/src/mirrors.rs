//! The web-cache / mirror scenario (Section 6).
//!
//! The paper closes by noting that the identity-view results "can be
//! applied … for any situation dealing with multiple, incomplete and
//! partially incorrect (obsolete) copies of a set of objects", naming
//! caches and mirror sites. This generator models exactly that: an origin
//! site with a set of objects, and `n` mirrors that each miss some objects
//! (*staleness*, completeness loss) and serve some obsolete objects that
//! the origin has since deleted (*obsolescence*, soundness loss).

use pscds_core::{CoreError, SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration for the mirror generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MirrorConfig {
    /// Objects currently on the origin site.
    pub n_objects: usize,
    /// Old objects that no longer exist on the origin (mirrors may still
    /// carry them).
    pub n_obsolete: usize,
    /// Number of mirrors.
    pub n_mirrors: usize,
    /// Probability a mirror misses a live object (staleness).
    pub staleness: f64,
    /// Probability a mirror still carries any given obsolete object.
    pub obsolescence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        MirrorConfig {
            n_objects: 10,
            n_obsolete: 4,
            n_mirrors: 3,
            staleness: 0.2,
            obsolescence: 0.3,
            seed: 1,
        }
    }
}

/// A generated mirror scenario.
#[derive(Clone, Debug)]
pub struct MirrorScenario {
    /// The origin's current objects (the ground truth).
    pub origin: BTreeSet<Value>,
    /// Obsolete objects (exist on no ground-truth origin, possibly on
    /// mirrors).
    pub obsolete: BTreeSet<Value>,
    /// Identity-view sources over `Object(x)`, one per mirror, with
    /// measured-exact bounds.
    pub collection: SourceCollection,
}

/// Generates a scenario. Bounds are the measured values against the
/// origin, so the origin is a possible world by construction.
///
/// # Errors
/// Propagates descriptor validation (unreachable for well-formed configs).
pub fn generate(config: &MirrorConfig) -> Result<MirrorScenario, CoreError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let origin: BTreeSet<Value> = (0..config.n_objects)
        .map(|i| Value::sym(&format!("obj{i}")))
        .collect();
    let obsolete: BTreeSet<Value> = (0..config.n_obsolete)
        .map(|i| Value::sym(&format!("old{i}")))
        .collect();

    let mut sources = Vec::with_capacity(config.n_mirrors);
    for m in 0..config.n_mirrors {
        let mut contents: Vec<Value> = Vec::new();
        let mut live = 0u64;
        for &obj in &origin {
            if !rng.gen_bool(config.staleness) {
                contents.push(obj);
                live += 1;
            }
        }
        for &old in &obsolete {
            if rng.gen_bool(config.obsolescence) {
                contents.push(old);
            }
        }
        let completeness = if origin.is_empty() {
            Frac::ONE
        } else {
            Frac::new(live, origin.len() as u64)
        };
        let soundness = if contents.is_empty() {
            Frac::ONE
        } else {
            Frac::new(live, contents.len() as u64)
        };
        sources.push(SourceDescriptor::identity(
            format!("mirror{m}"),
            &format!("M{m}"),
            "Object",
            1,
            contents.into_iter().map(|v| [v]),
            completeness,
            soundness,
        )?);
    }
    Ok(MirrorScenario {
        origin,
        obsolete,
        collection: SourceCollection::from_sources(sources),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::consistency::decide_identity;
    use pscds_core::measures::in_poss;
    use pscds_relational::{Database, Fact};

    #[test]
    fn origin_is_possible_world() {
        for seed in 0..10 {
            let cfg = MirrorConfig {
                seed,
                ..Default::default()
            };
            let s = generate(&cfg).unwrap();
            let world = Database::from_facts(s.origin.iter().map(|&o| Fact::new("Object", [o])));
            assert!(in_poss(&world, &s.collection).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn solver_confirms_consistency() {
        let s = generate(&MirrorConfig::default()).unwrap();
        let id = s.collection.as_identity().unwrap();
        assert!(decide_identity(&id, 0).is_consistent());
    }

    #[test]
    fn perfect_mirrors_are_exact() {
        let cfg = MirrorConfig {
            staleness: 0.0,
            obsolescence: 0.0,
            ..Default::default()
        };
        let s = generate(&cfg).unwrap();
        for src in s.collection.sources() {
            assert_eq!(src.completeness(), Frac::ONE);
            assert_eq!(src.soundness(), Frac::ONE);
            assert_eq!(src.extension_len(), cfg.n_objects);
        }
    }

    #[test]
    fn obsolete_objects_hurt_soundness_only() {
        let cfg = MirrorConfig {
            staleness: 0.0,
            obsolescence: 1.0,
            ..Default::default()
        };
        let s = generate(&cfg).unwrap();
        for src in s.collection.sources() {
            assert_eq!(src.completeness(), Frac::ONE);
            assert_eq!(
                src.soundness(),
                Frac::new(
                    cfg.n_objects as u64,
                    (cfg.n_objects + cfg.n_obsolete) as u64
                )
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MirrorConfig::default();
        assert_eq!(
            generate(&cfg).unwrap().collection,
            generate(&cfg).unwrap().collection
        );
    }

    #[test]
    fn shapes_respect_config() {
        let cfg = MirrorConfig {
            n_objects: 7,
            n_obsolete: 2,
            n_mirrors: 5,
            ..Default::default()
        };
        let s = generate(&cfg).unwrap();
        assert_eq!(s.origin.len(), 7);
        assert_eq!(s.obsolete.len(), 2);
        assert_eq!(s.collection.len(), 5);
    }
}
