//! The GHCN-style climate scenario (Section 1.1).
//!
//! A ground-truth world over the paper's global schema —
//! `Temperature(station, year, month, value)` and
//! `Station(id, lat, lon, country)` — plus per-country sources defined by
//! the paper's views, with controlled *dropout* (completeness loss) and
//! *corruption* (soundness loss). The injected rates are known exactly, so
//! the Definition 2.1/2.2 measures can be validated against them, and the
//! descriptors' claimed bounds are set to the *measured* values, making
//! the ground-truth world a possible world by construction.

use pscds_core::{CoreError, SourceCollection, SourceDescriptor};
use pscds_numeric::Frac;
use pscds_relational::parser::parse_rule;
use pscds_relational::{Database, Fact, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the climate generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClimateConfig {
    /// Countries to generate (one temperature source per country).
    pub countries: Vec<String>,
    /// Stations per country.
    pub stations_per_country: usize,
    /// First year of measurements (inclusive).
    pub first_year: i64,
    /// Number of consecutive years.
    pub years: usize,
    /// Months recorded per year (1..=12).
    pub months: usize,
    /// Probability that a source *misses* one of its intended tuples.
    pub dropout: f64,
    /// Probability that a retained tuple's value is corrupted.
    pub corruption: f64,
    /// RNG seed (the scenario is fully deterministic given the config).
    pub seed: u64,
}

impl Default for ClimateConfig {
    fn default() -> Self {
        ClimateConfig {
            countries: vec!["Canada".into(), "US".into()],
            stations_per_country: 3,
            first_year: 1900,
            years: 4,
            months: 12,
            dropout: 0.2,
            corruption: 0.1,
            seed: 20010521, // PODS 2001, Santa Barbara
        }
    }
}

/// What was injected into one source, with the resulting exact measures.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionReport {
    /// Source name.
    pub source: String,
    /// `|φ(world)|` — intended view size.
    pub intended: u64,
    /// Tuples dropped (completeness loss).
    pub dropped: u64,
    /// Retained tuples whose value was corrupted (soundness loss).
    pub corrupted: u64,
    /// Exact completeness of the generated extension w.r.t. the world.
    pub completeness: Frac,
    /// Exact soundness of the generated extension w.r.t. the world.
    pub soundness: Frac,
}

/// A generated scenario: the ground truth, the source collection, and the
/// per-source injection bookkeeping.
#[derive(Clone, Debug)]
pub struct ClimateScenario {
    /// The ground-truth global database.
    pub world: Database,
    /// The sources (one exact `Station` source + one temperature source
    /// per country), with claimed bounds equal to the measured values.
    pub collection: SourceCollection,
    /// Per-source injection reports.
    pub reports: Vec<InjectionReport>,
}

/// Deterministic "true" mean temperature for a station/year/month.
fn true_temperature(station: usize, year: i64, month: usize) -> i64 {
    // A plausible-looking seasonal curve; exact shape is irrelevant, it
    // only needs to be a function (the FD station,year,month → value).
    let seasonal = [-8, -6, -1, 6, 12, 17, 20, 19, 14, 8, 2, -5][month % 12];
    seasonal + (station as i64 % 7) - ((year % 10) / 5)
}

/// Generates a scenario.
///
/// # Errors
/// Propagates descriptor-validation errors (impossible with a well-formed
/// config) and view-parse errors.
pub fn generate(config: &ClimateConfig) -> Result<ClimateScenario, CoreError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut world = Database::new();

    // Stations: ids are globally unique; lat/lon synthetic grid ints.
    let mut station_ids: Vec<(String, usize)> = Vec::new(); // (country, station index)
    for (ci, country) in config.countries.iter().enumerate() {
        for s in 0..config.stations_per_country {
            let id = 100_000 + (ci * 1_000 + s) as i64;
            world.insert(Fact::new(
                "Station",
                [
                    Value::int(id),
                    Value::int(40 + (s as i64 * 3) % 50),
                    Value::int(-120 + (ci as i64 * 30)),
                    Value::sym(country),
                ],
            ));
            station_ids.push((country.clone(), ci * 1_000 + s));
        }
    }
    // Temperatures for every station × year × month.
    for &(_, sidx) in &station_ids {
        let id = 100_000 + sidx as i64;
        for y in 0..config.years {
            let year = config.first_year + y as i64;
            for month in 1..=config.months {
                world.insert(Fact::new(
                    "Temperature",
                    [
                        Value::int(id),
                        Value::int(year),
                        Value::int(month as i64),
                        Value::int(true_temperature(sidx, year, month)),
                    ],
                ));
            }
        }
    }

    let mut sources = Vec::new();
    let mut reports = Vec::new();

    // S0: the exact station directory.
    let station_view = parse_rule("V0(s, lat, lon, c) <- Station(s, lat, lon, c)")?;
    let station_ext: Vec<Fact> = station_view.evaluate(&world)?.into_iter().collect();
    let intended = station_ext.len() as u64;
    sources.push(SourceDescriptor::new(
        "S0",
        station_view,
        station_ext,
        Frac::ONE,
        Frac::ONE,
    )?);
    reports.push(InjectionReport {
        source: "S0".into(),
        intended,
        dropped: 0,
        corrupted: 0,
        completeness: Frac::ONE,
        soundness: Frac::ONE,
    });

    // One temperature source per country, with dropout + corruption.
    for (ci, country) in config.countries.iter().enumerate() {
        let name = format!("S{}", ci + 1);
        let view = parse_rule(&format!(
            "V{}(s, y, m, v) <- Temperature(s, y, m, v), Station(s, lat, lon, '{country}')",
            ci + 1
        ))?;
        let intended_set = view.evaluate(&world)?;
        let intended = intended_set.len() as u64;
        let mut extension: Vec<Fact> = Vec::new();
        let mut dropped = 0u64;
        let mut corrupted = 0u64;
        for fact in intended_set {
            if rng.gen_bool(config.dropout) {
                dropped += 1;
                continue;
            }
            if rng.gen_bool(config.corruption) {
                corrupted += 1;
                let mut args = fact.args.clone();
                // Corrupt the value: push it outside the generated range so
                // it can't collide with any true tuple.
                let bad = args[3].as_int().expect("values are ints") + 1_000;
                args[3] = Value::int(bad);
                extension.push(Fact {
                    relation: fact.relation,
                    args,
                });
            } else {
                extension.push(fact);
            }
        }
        let kept_correct = intended - dropped - corrupted;
        let ext_size = extension.len() as u64;
        let completeness = if intended == 0 {
            Frac::ONE
        } else {
            Frac::new(kept_correct, intended)
        };
        let soundness = if ext_size == 0 {
            Frac::ONE
        } else {
            Frac::new(kept_correct, ext_size)
        };
        sources.push(SourceDescriptor::new(
            &name,
            view,
            extension,
            completeness,
            soundness,
        )?);
        reports.push(InjectionReport {
            source: name,
            intended,
            dropped,
            corrupted,
            completeness,
            soundness,
        });
    }

    Ok(ClimateScenario {
        world,
        collection: SourceCollection::from_sources(sources),
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::measures::{in_poss, measure};

    fn small() -> ClimateConfig {
        ClimateConfig {
            countries: vec!["Canada".into(), "US".into()],
            stations_per_country: 2,
            first_year: 1900,
            years: 2,
            months: 3,
            dropout: 0.25,
            corruption: 0.15,
            seed: 7,
        }
    }

    #[test]
    fn world_shape() {
        let s = generate(&small()).unwrap();
        // 4 stations, each 2 years × 3 months of temperatures.
        assert_eq!(s.world.extension_len("Station".into()), 4);
        assert_eq!(s.world.extension_len("Temperature".into()), 4 * 2 * 3);
    }

    #[test]
    fn ground_truth_is_a_possible_world() {
        let s = generate(&small()).unwrap();
        assert!(in_poss(&s.world, &s.collection).unwrap());
    }

    #[test]
    fn measured_rates_match_injection_reports() {
        let s = generate(&small()).unwrap();
        for (source, report) in s.collection.sources().iter().zip(&s.reports) {
            let m = measure(&s.world, source).unwrap();
            assert_eq!(m.view_size, report.intended, "{}", report.source);
            assert!(
                m.completeness_at_least(report.completeness),
                "{}: measured completeness below injected",
                report.source
            );
            assert!(m.soundness_at_least(report.soundness), "{}", report.source);
            // The bounds are tight: the measured ratio *equals* the report.
            assert_eq!(
                m.intersection,
                report.intended - report.dropped - report.corrupted,
                "{}",
                report.source
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small()).unwrap();
        let b = generate(&small()).unwrap();
        assert_eq!(a.world, b.world);
        assert_eq!(a.reports, b.reports);
        let mut cfg = small();
        cfg.seed = 8;
        let c = generate(&cfg).unwrap();
        assert_ne!(a.reports, c.reports); // different injections
    }

    #[test]
    fn zero_noise_sources_are_exact() {
        let mut cfg = small();
        cfg.dropout = 0.0;
        cfg.corruption = 0.0;
        let s = generate(&cfg).unwrap();
        for report in &s.reports {
            assert_eq!(report.completeness, Frac::ONE, "{}", report.source);
            assert_eq!(report.soundness, Frac::ONE, "{}", report.source);
        }
        for source in s.collection.sources() {
            let m = measure(&s.world, source).unwrap();
            assert!(m.is_exact());
        }
    }

    #[test]
    fn station_source_is_exact_directory() {
        let s = generate(&small()).unwrap();
        let s0 = &s.collection.sources()[0];
        assert_eq!(s0.extension_len(), 4);
        assert_eq!(s0.completeness(), Frac::ONE);
    }
}
