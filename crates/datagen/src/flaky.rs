//! Flaky-source scenario families for the robustness experiments.
//!
//! Each family pairs a planted (hence consistent) identity-view
//! collection with a seeded [`FaultPlan`] describing how its sources
//! misbehave at fetch time. The plan is deterministic and replayable:
//! the same config yields byte-identical plan text and the same fault
//! schedule, so robustness experiments (retry convergence, breaker
//! trips, partial-availability intervals) can be diffed across runs and
//! thread counts.
//!
//! * [`FaultFamily::Transient`] — victims fail their first attempt, then
//!   deliver. One retry recovers the exact answer.
//! * [`FaultFamily::HardOutage`] — victims never deliver. Exercises the
//!   breaker's trip/quarantine path and the partial-availability rung.
//! * [`FaultFamily::Flapping`] — victims alternate down/up attempt
//!   windows. Exercises half-open probing across epochs.
//! * [`FaultFamily::Noisy`] — every source carries seeded probabilistic
//!   failure/timeout/truncation rates. Exercises backoff accounting and
//!   replay determinism under mixed fault kinds.

use pscds_core::{CoreError, FaultPlan, FaultSpec, SourceCollection};
use pscds_numeric::Frac;
use pscds_relational::Value;
use serde::{Deserialize, Serialize};

use crate::random_sources::{self, RandomIdentityConfig};

/// The shape of misbehavior a scenario plants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultFamily {
    /// Victims fail attempt 0 and deliver from attempt 1 on.
    Transient,
    /// Victims fail every attempt.
    HardOutage,
    /// Victims are down on even attempts and up on odd ones (three
    /// down windows: `0..1`, `2..3`, `4..5`).
    Flapping,
    /// Every source gets `fail: 1/4, timeout: 1/8, truncate: 1/8`.
    Noisy,
}

impl FaultFamily {
    /// Whether a fetch with at least one retry is guaranteed to recover
    /// every source (and hence the fault-free answer).
    #[must_use]
    pub fn recovers_with_one_retry(self) -> bool {
        matches!(self, FaultFamily::Transient | FaultFamily::Flapping)
    }
}

/// Configuration for the flaky-source generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlakyConfig {
    /// The underlying collection (planted mode is forced so the base
    /// instance is consistent and has a fault-free point answer).
    pub base: RandomIdentityConfig,
    /// Which misbehavior to plant.
    pub family: FaultFamily,
    /// How many sources (the first `victims` by index) misbehave.
    /// Ignored by [`FaultFamily::Noisy`], which afflicts everyone.
    pub victims: usize,
    /// Seed for the plan's probabilistic outcomes (independent of the
    /// base collection's seed so data and faults vary separately).
    pub fault_seed: u64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            base: RandomIdentityConfig::default(),
            family: FaultFamily::Transient,
            victims: 1,
            fault_seed: 1,
        }
    }
}

/// A generated flaky-source scenario.
#[derive(Clone, Debug)]
pub struct FlakyScenario {
    /// The (consistent, planted) collection.
    pub collection: SourceCollection,
    /// The domain (all constants).
    pub domain: Vec<Value>,
    /// The seeded fault schedule.
    pub plan: FaultPlan,
    /// Names of the misbehaving sources, in catalog order.
    pub victims: Vec<String>,
}

/// The spec a family plants on its victims.
fn victim_spec(family: FaultFamily) -> FaultSpec {
    match family {
        FaultFamily::Transient => FaultSpec {
            down: vec![(0, 1)],
            ..FaultSpec::none()
        },
        FaultFamily::HardOutage => FaultSpec::always_down(),
        FaultFamily::Flapping => FaultSpec {
            down: vec![(0, 1), (2, 3), (4, 5)],
            ..FaultSpec::none()
        },
        FaultFamily::Noisy => FaultSpec {
            fail: Frac::new(1, 4),
            timeout: Frac::new(1, 8),
            truncate: Frac::new(1, 8),
            ..FaultSpec::none()
        },
    }
}

/// Generates a scenario: a planted identity collection plus a validated
/// fault plan afflicting its first `victims` sources (all sources for
/// [`FaultFamily::Noisy`]).
///
/// # Errors
/// Propagates descriptor validation from the base generator and
/// [`CoreError::InvalidFaultPlan`] from plan validation (both
/// unreachable for well-formed configs).
pub fn generate(config: &FlakyConfig) -> Result<FlakyScenario, CoreError> {
    let base = RandomIdentityConfig {
        planted: true,
        ..config.base.clone()
    };
    let scenario = random_sources::generate(&base)?;
    let spec = victim_spec(config.family);
    let mut plan = FaultPlan::new(config.fault_seed);
    let victims: Vec<String> = if config.family == FaultFamily::Noisy {
        plan = plan.with_default(spec);
        scenario
            .collection
            .sources()
            .iter()
            .map(|s| s.name().to_owned())
            .collect()
    } else {
        let names: Vec<String> = scenario
            .collection
            .sources()
            .iter()
            .take(config.victims)
            .map(|s| s.name().to_owned())
            .collect();
        for name in &names {
            plan = plan.with_source(name, spec.clone());
        }
        names
    };
    plan.validate()?;
    Ok(FlakyScenario {
        collection: scenario.collection,
        domain: scenario.domain,
        plan,
        victims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscds_core::govern::Budget;
    use pscds_core::source::{AccessPolicy, SourceAccess, SourceStatus};
    use pscds_core::FaultyProvider;
    use pscds_obs::ObsSession;

    fn fetch_statuses(s: &FlakyScenario) -> Vec<SourceStatus> {
        let mut provider = FaultyProvider::new(&s.collection, s.plan.clone());
        let mut access = SourceAccess::new(AccessPolicy::default(), s.collection.len());
        let mut obs = ObsSession::disabled();
        access
            .fetch_all(&mut provider, &Budget::unlimited(), &mut obs)
            .unwrap()
            .statuses
    }

    #[test]
    fn transient_victims_recover_on_the_retry() {
        let s = generate(&FlakyConfig::default()).unwrap();
        assert_eq!(s.victims, ["S0"]);
        let statuses = fetch_statuses(&s);
        assert_eq!(statuses[0], SourceStatus::Available { attempts: 2 });
        for st in &statuses[1..] {
            assert_eq!(*st, SourceStatus::Available { attempts: 1 });
        }
    }

    #[test]
    fn hard_outage_victims_stay_unavailable() {
        let s = generate(&FlakyConfig {
            family: FaultFamily::HardOutage,
            victims: 2,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(s.victims, ["S0", "S1"]);
        let statuses = fetch_statuses(&s);
        assert!(matches!(statuses[0], SourceStatus::Unavailable { .. }));
        assert!(matches!(statuses[1], SourceStatus::Unavailable { .. }));
        assert!(statuses[2..]
            .iter()
            .all(|st| matches!(st, SourceStatus::Available { .. })));
    }

    #[test]
    fn flapping_victims_recover_on_an_up_window() {
        let s = generate(&FlakyConfig {
            family: FaultFamily::Flapping,
            ..Default::default()
        })
        .unwrap();
        // Attempt 0 is a down window, attempt 1 is up.
        let statuses = fetch_statuses(&s);
        assert_eq!(statuses[0], SourceStatus::Available { attempts: 2 });
        assert!(s.family_recovers());
    }

    #[test]
    fn noisy_family_afflicts_every_source_deterministically() {
        let cfg = FlakyConfig {
            family: FaultFamily::Noisy,
            ..Default::default()
        };
        let a = generate(&cfg).unwrap();
        assert_eq!(a.victims.len(), a.collection.len());
        let b = generate(&cfg).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.collection, b.collection);
        assert_eq!(fetch_statuses(&a), fetch_statuses(&b));
    }

    #[test]
    fn plan_text_round_trips() {
        for family in [
            FaultFamily::Transient,
            FaultFamily::HardOutage,
            FaultFamily::Flapping,
            FaultFamily::Noisy,
        ] {
            let s = generate(&FlakyConfig {
                family,
                ..Default::default()
            })
            .unwrap();
            let reparsed = FaultPlan::parse(&s.plan.to_text()).unwrap();
            assert_eq!(reparsed, s.plan, "{family:?}");
        }
    }

    #[test]
    fn fault_seed_varies_noise_independently_of_data() {
        let base = FlakyConfig {
            family: FaultFamily::Noisy,
            ..Default::default()
        };
        let other = FlakyConfig {
            fault_seed: 2,
            ..base.clone()
        };
        let a = generate(&base).unwrap();
        let b = generate(&other).unwrap();
        assert_eq!(
            a.collection, b.collection,
            "data must not depend on fault_seed"
        );
        assert_ne!(a.plan, b.plan);
    }

    impl FlakyScenario {
        fn family_recovers(&self) -> bool {
            // A helper kept on the scenario for test readability: every
            // status from a default-policy fetch is Available.
            fetch_statuses(self)
                .iter()
                .all(|st| matches!(st, SourceStatus::Available { .. }))
        }
    }
}
