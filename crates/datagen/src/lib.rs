//! # pscds-datagen
//!
//! Synthetic workload generators with planted ground truth for the
//! experiment harnesses:
//!
//! * [`cache_sim`] — a dynamic variant of the cache application: an
//!   origin whose object set churns per epoch, and caches holding
//!   snapshots at configurable lags, whose measured bounds decay with
//!   staleness (experiment E9).
//! * [`climate`] — the paper's Section 1.1 motivating scenario (Global
//!   Historical Climatology Network): a ground-truth world over
//!   `Temperature`/`Station`, per-country and per-era view sources, and
//!   controlled *dropout* (completeness loss) and *corruption* (soundness
//!   loss) whose injected rates the measures of Definition 2.1/2.2 can be
//!   validated against.
//! * [`deltas`] — the dynamic scenarios replayed as ordered update
//!   streams ([`pscds_core::delta::DeltaBatch`]): signature-inheriting
//!   cache-replacement churn (the incremental engine's best case) and
//!   structurally volatile mirror resyncs (its recompute-bound contrast),
//!   for experiment E10 and the CLI `--deltas` replay mode.
//! * [`flaky`] — flaky-source scenario families (transient faults, hard
//!   outages, flapping, seeded noise): a planted identity collection
//!   paired with a replayable `FaultPlan` for the robustness
//!   experiments (retry convergence, breaker trips, partial answers).
//! * [`random_sources`] — random identity-view collections over a finite
//!   domain, optionally planted around a known world (hence guaranteed
//!   consistent), for the consistency and confidence experiments.
//! * [`mirrors`] — the Section 6 closing scenario: multiple caches/mirrors
//!   of a set of objects, each a stale or partially-corrupt copy.
//! * [`symmetric`] — interchangeable sources with identical `(c, s)`
//!   claims over disjoint extensions: the family whose source-swap
//!   automorphisms the circuit compiler's residual-key canonicalization
//!   exploits (experiment E11 and the node-sharing assertions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_sim;
pub mod climate;
pub mod deltas;
pub mod flaky;
pub mod mirrors;
pub mod random_sources;
pub mod symmetric;
