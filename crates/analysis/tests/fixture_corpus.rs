//! The fixture corpus: one violating and one clean miniature workspace
//! per interprocedural rule, each with a golden `expected.json`
//! compared **byte-for-byte** against the live renderer. The goldens
//! double as the JSON-determinism gate: any hash-ordered collection
//! sneaking into the report pipeline diffs here first.

use std::path::{Path, PathBuf};

use pscds_analysis::{json, lints, source::Workspace};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> (Workspace, Vec<pscds_analysis::source::Violation>) {
    let root = fixture_root(name);
    let ws = Workspace::load(&root).unwrap_or_else(|e| panic!("load fixture {name}: {e}"));
    assert!(!ws.files.is_empty(), "fixture {name} scanned no files");
    let violations = lints::run_all(&ws);
    (ws, violations)
}

/// Each violating fixture trips exactly the rule it was built for, at
/// the documented site count; each clean fixture is silent.
#[test]
fn corpus_violations_hit_exactly_the_intended_rule() {
    let expected: [(&str, &str, usize); 4] = [
        ("l2_violation", "budget-bypass", 1),
        ("l8_violation", "determinism", 1),
        ("l9_violation", "counter-coverage", 2),
        ("l10_violation", "dead-twin", 1),
    ];
    for (name, rule, count) in expected {
        let (_, violations) = lint_fixture(name);
        assert_eq!(
            violations.len(),
            count,
            "{name}: expected {count} violation(s), got:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        for v in &violations {
            assert_eq!(v.rule, rule, "{name}: unexpected rule in {v}");
            assert!(
                lints::code_for(v.rule).is_some(),
                "{name}: violation carries unregistered rule `{}`",
                v.rule
            );
        }
    }
    for name in ["l2_clean", "l8_clean", "l9_clean", "l10_clean"] {
        let (_, violations) = lint_fixture(name);
        assert!(
            violations.is_empty(),
            "{name}: clean fixture flagged:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The JSON report for every fixture matches its checked-in golden
/// byte-for-byte, and re-loading + re-rendering reproduces it exactly.
#[test]
fn corpus_reports_match_goldens_byte_for_byte() {
    for name in [
        "l2_violation",
        "l2_clean",
        "l8_violation",
        "l8_clean",
        "l9_violation",
        "l9_clean",
        "l10_violation",
        "l10_clean",
    ] {
        let golden_path = fixture_root(name).join("expected.json");
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
        let (ws, violations) = lint_fixture(name);
        let rendered = json::render_report(&ws, &violations);
        assert_eq!(
            rendered, golden,
            "{name}: report drifted from golden (regenerate with \
             `pscds-lint --root crates/analysis/tests/fixtures/{name} --no-interleave --format json`)"
        );
        // Independent reload → byte-identical bytes again.
        let (ws2, violations2) = lint_fixture(name);
        assert_eq!(
            json::render_report(&ws2, &violations2),
            rendered,
            "{name}: nondeterministic report"
        );
        // And the golden round-trips through the validator.
        let doc =
            json::parse(&golden).unwrap_or_else(|e| panic!("{name}: golden unparseable: {e}"));
        let n =
            json::validate_report(&doc).unwrap_or_else(|e| panic!("{name}: golden invalid: {e}"));
        assert_eq!(
            n as usize,
            violations.len(),
            "{name}: violation count mismatch"
        );
    }
}

/// Fixture corpora are the lint's own test inputs: the live workspace
/// scan must never pick them up, or the deliberate violations would
/// fail the self-lint gate.
#[test]
fn live_scan_skips_the_fixture_corpus() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf();
    let ws = Workspace::load(&repo_root).expect("workspace sources load");
    assert!(
        !ws.files.iter().any(|f| f.path.contains("fixtures/")),
        "fixture files leaked into the live scan"
    );
}
