//! The workspace must lint clean against its own invariant registry —
//! the same gate `scripts/ci.sh` runs via `pscds-lint`, kept as a test so
//! `cargo test` alone catches regressions.

use std::path::{Path, PathBuf};

use pscds_analysis::{interleave, lints, source::Workspace};

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_every_lint_rule() {
    let ws = Workspace::load(&workspace_root()).expect("workspace sources load");
    assert!(
        ws.files.len() > 50,
        "suspiciously few source files ({}): did workspace discovery break?",
        ws.files.len()
    );
    let violations = lints::run_all(&ws);
    assert!(
        violations.is_empty(),
        "invariant lint violations on the live tree:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn interleaving_models_hold_for_the_shipped_protocols() {
    let reports = interleave::run_all().expect("all interleaving invariants hold");
    assert_eq!(reports.len(), 5);
    for r in &reports {
        assert!(r.schedules > 0, "{}: explored no schedules", r.model);
    }
}
