//! The workspace must lint clean against its own invariant registry —
//! the same gate `scripts/ci.sh` runs via `pscds-lint`, kept as a test so
//! `cargo test` alone catches regressions.

use std::path::{Path, PathBuf};

use pscds_analysis::{interleave, json, lints, source::Workspace};

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_every_lint_rule() {
    let ws = Workspace::load(&workspace_root()).expect("workspace sources load");
    assert!(
        ws.files.len() > 50,
        "suspiciously few source files ({}): did workspace discovery break?",
        ws.files.len()
    );
    let violations = lints::run_all(&ws);
    assert!(
        violations.is_empty(),
        "invariant lint violations on the live tree:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every rule in the registry has a stable code (`L1`..), and the
/// allow-grammar pseudo-rule resolves too: a diagnostic whose rule id
/// cannot be mapped to a code would render as `L?` in the JSON report
/// and break `--explain`.
#[test]
fn every_registered_rule_maps_to_a_stable_code_and_explanation() {
    let mut codes = vec![lints::ALLOW_GRAMMAR_CODE];
    for rule in lints::registry() {
        let code = lints::code_for(rule.id)
            .unwrap_or_else(|| panic!("rule `{}` has no stable code", rule.id));
        assert_eq!(code, rule.code);
        let (id, text) =
            lints::explain_for(code).unwrap_or_else(|| panic!("code {code} has no explanation"));
        assert_eq!(id, rule.id);
        assert!(text.len() > 100, "{code}: explanation too thin to act on");
        codes.push(code);
    }
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), lints::registry().len() + 1, "duplicate codes");
}

/// Every `lint-allow` on the live tree names a rule the registry
/// knows — a suppression for a misspelled or retired rule id is dead
/// weight that hides nothing and must not survive review.
#[test]
fn live_suppressions_name_registered_rules_only() {
    let ws = Workspace::load(&workspace_root()).expect("workspace sources load");
    let stats = lints::suppression_stats(&ws);
    for (rule, count) in &stats.by_rule {
        assert!(
            lints::code_for(rule).is_some(),
            "{count} lint-allow directive(s) name unregistered rule `{rule}`"
        );
    }
}

/// The live suppression census matches the checked-in baseline — the
/// same gate `scripts/ci.sh` applies via `--suppressions`, kept here so
/// `cargo test` alone catches an unreviewed lint-allow.
#[test]
fn live_suppression_census_matches_the_checked_in_baseline() {
    let root = workspace_root();
    let ws = Workspace::load(&root).expect("workspace sources load");
    let stats = lints::suppression_stats(&ws);
    let mut rendered = format!(
        "pscds-lint: {} suppression(s) ({} file-scope) across {} file(s)\n",
        stats.directives, stats.file_scope, stats.files
    );
    for (rule, count) in &stats.by_rule {
        rendered.push_str(&format!("  {count:>4}  {rule}\n"));
    }
    let baseline_path = root.join("scripts/lint_suppressions.baseline");
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    assert_eq!(
        rendered, baseline,
        "suppression census drifted: review the lint-allow changes, then \
         regenerate with `pscds-lint --suppressions > scripts/lint_suppressions.baseline`"
    );
}

/// The JSON report over the live tree validates against its own schema
/// and is byte-identical across two independent workspace loads.
#[test]
fn live_json_report_is_valid_and_byte_deterministic() {
    let root = workspace_root();
    let render = || {
        let ws = Workspace::load(&root).expect("workspace sources load");
        let violations = lints::run_all(&ws);
        json::render_report(&ws, &violations)
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "live JSON report is not byte-deterministic");
    let doc = json::parse(&a).expect("report parses");
    let violations = json::validate_report(&doc).expect("report validates");
    assert_eq!(violations, 0, "live tree must lint clean");
}

#[test]
fn interleaving_models_hold_for_the_shipped_protocols() {
    let reports = interleave::run_all().expect("all interleaving invariants hold");
    assert_eq!(reports.len(), 5);
    for r in &reports {
        assert!(r.schedules > 0, "{}: explored no schedules", r.model);
    }
}
