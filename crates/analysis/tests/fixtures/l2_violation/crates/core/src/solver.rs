//! L2 violation fixture: a loop reachable from a budgeted entry that
//! neither ticks nor calls a ticking callee.

pub struct Budget;

impl Budget {
    pub fn tick(&self) -> Result<(), ()> {
        Ok(())
    }
}

/// Budgeted entry (name suffix + `Budget` parameter).
pub fn solve_budgeted(budget: &Budget, items: &[u64]) -> u64 {
    let mut total = 0;
    for item in items {
        // Ticks here, so this loop itself is fine...
        let _ = budget.tick();
        total += expand(*item);
    }
    total
}

/// ...but this helper is reachable from the entry, and its loop never
/// touches the budget: the bypass L2 must flag.
fn expand(seed: u64) -> u64 {
    let mut acc = seed;
    while acc < 1_000_000 {
        acc = acc * 3 + 1;
    }
    acc
}
