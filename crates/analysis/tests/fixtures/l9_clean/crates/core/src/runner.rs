//! Emits every registry constant through the registry itself.

pub fn record(obs: &mut ObsSession, retried: bool) {
    obs.counter_add(names::QUERY_RUNS, 1);
    if retried {
        obs.counter_add(names::QUERY_RETRIES, 1);
    }
}
