//! L9 clean fixture registry: both constants are wired.

pub const QUERY_RUNS: &str = "query.runs";
pub const QUERY_RETRIES: &str = "query.retries";

pub const COUNTERS: [&str; 2] = [QUERY_RUNS, QUERY_RETRIES];
