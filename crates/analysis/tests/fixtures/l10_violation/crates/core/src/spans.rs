//! L10 violation fixture: `count_spans_budgeted` is registered (so L1
//! is satisfied) but the parity harness never reaches it.

pub struct Budget;

pub fn count_spans(items: &[u64]) -> u64 {
    items.len() as u64
}

pub fn count_spans_budgeted(items: &[u64], budget: &Budget) -> u64 {
    let _ = budget;
    items.len() as u64
}

pub fn count_spans_parallel(items: &[u64]) -> u64 {
    items.len() as u64
}
