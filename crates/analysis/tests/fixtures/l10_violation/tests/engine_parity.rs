//! Parity harness that exercises the serial engine and the parallel
//! twin — but not the budgeted twin.

fn parity_serial_vs_parallel() {
    let items = [1, 2, 3];
    assert_eq!(count_spans(&items), count_spans_parallel(&items));
}
