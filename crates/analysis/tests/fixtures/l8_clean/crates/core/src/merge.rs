//! L8 clean fixture: the map is snapshotted and sorted before the
//! fold, so the output order is process-independent.

use std::collections::HashMap;

pub fn fold_totals(counts: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut entries: Vec<(String, u64)> = Vec::new();
    for_each_sorted(counts, &mut entries);
    entries
}

fn for_each_sorted(counts: &HashMap<String, u64>, out: &mut Vec<(String, u64)>) {
    let mut snapshot: Vec<(&String, &u64)> = counts.iter().collect();
    snapshot.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
    for (name, value) in snapshot {
        out.push((name.clone(), *value));
    }
    out.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
}
