//! L8 violation fixture: engine-facing totals folded in HashMap
//! iteration order.

use std::collections::HashMap;

pub fn fold_totals(counts: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (name, value) in counts {
        out.push((name.clone(), *value));
    }
    out
}
