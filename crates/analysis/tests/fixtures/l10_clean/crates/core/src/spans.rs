//! L10 clean fixture: both twins are transitively reachable from the
//! parity harness.

pub struct Budget;

pub fn count_spans(items: &[u64]) -> u64 {
    items.len() as u64
}

pub fn count_spans_budgeted(items: &[u64], budget: &Budget) -> u64 {
    let _ = budget;
    items.len() as u64
}

pub fn count_spans_parallel(items: &[u64]) -> u64 {
    items.len() as u64
}
