//! Parity harness reaching every twin — the budgeted one through a
//! helper, exercising transitive reachability.

fn parity_all_engines() {
    let items = [1, 2, 3];
    assert_eq!(count_spans(&items), count_spans_parallel(&items));
    assert_eq!(count_spans(&items), run_budgeted(&items));
}

fn run_budgeted(items: &[u64]) -> u64 {
    count_spans_budgeted(items, &Budget)
}
