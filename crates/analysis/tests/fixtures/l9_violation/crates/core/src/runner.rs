//! Emits `QUERY_RUNS` only, and smuggles one name through a parameter.

pub fn record(obs: &mut ObsSession, which: &'static str) {
    obs.counter_add(names::QUERY_RUNS, 1);
    obs.counter_add(which, 1);
}
