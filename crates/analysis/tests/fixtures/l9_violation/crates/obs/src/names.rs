//! L9 violation fixture registry: `QUERY_RETRIES` is advertised but
//! never wired to an emission — schema drift the rule must flag.

pub const QUERY_RUNS: &str = "query.runs";
pub const QUERY_RETRIES: &str = "query.retries";

pub const COUNTERS: [&str; 2] = [QUERY_RUNS, QUERY_RETRIES];
