//! L2 clean fixture: every loop reachable from the budgeted entry
//! discharges its obligation — directly, or through a ticking callee.

pub struct Budget;

impl Budget {
    pub fn tick(&self) -> Result<(), ()> {
        Ok(())
    }
}

/// Budgeted entry (name suffix + `Budget` parameter).
pub fn solve_budgeted(budget: &Budget, items: &[u64]) -> u64 {
    let mut total = 0;
    for item in items {
        total += expand(budget, *item);
    }
    total
}

/// Reachable helper whose loop ticks on every iteration.
fn expand(budget: &Budget, seed: u64) -> u64 {
    let mut acc = seed;
    while acc < 1_000_000 {
        let _ = budget.tick();
        acc = acc * 3 + 1;
    }
    acc
}

/// Unreachable from any budgeted entry: its silent loop is not the
/// budget's business.
pub fn offline_report(items: &[u64]) -> u64 {
    let mut n = 0;
    for item in items {
        n += *item;
    }
    n
}
