//! Lexer regressions that matter to the *item parser*: raw strings,
//! nested block comments, and lifetime-vs-char disambiguation must not
//! desynchronize brace tracking, or every downstream item boundary
//! (and with it the call graph) silently shifts.

use pscds_analysis::items::{call_sites, parse_items};
use pscds_analysis::source::SourceFile;

fn file(src: &str) -> SourceFile {
    SourceFile::from_source("crates/core/src/x.rs", src)
}

#[test]
fn raw_strings_with_braces_and_quotes_do_not_split_items() {
    let f = file(
        "pub fn render() -> String {\n\
         \x20   let tpl = r#\"{ \"fn\": \"}\" }\"#;\n\
         \x20   tpl.to_owned()\n\
         }\n\
         pub fn after() {}\n",
    );
    let items = parse_items(&f);
    let names: Vec<&str> = items.fns.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["render", "after"], "raw string desynced item walk");
    assert!(items.fns[0].body.is_some());
}

#[test]
fn nested_block_comments_hide_their_braces_and_fn_keywords() {
    let f = file(
        "/* outer /* fn ghost() { */ still comment } */\n\
         pub fn real() { work(); }\n\
         pub fn work() {}\n",
    );
    let items = parse_items(&f);
    let names: Vec<&str> = items.fns.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["real", "work"], "nested comment leaked tokens");
    let body = items.fns[0].body.expect("real has a body");
    let calls = call_sites(&f.tokens, body, &|n| n == "work");
    assert_eq!(calls.len(), 1);
    assert_eq!(calls[0].name, "work");
}

#[test]
fn lifetimes_are_not_char_literals() {
    let f = file(
        "pub fn pick<'a>(xs: &'a [char]) -> char {\n\
         \x20   let quote = '\\'';\n\
         \x20   let brace = '{';\n\
         \x20   if xs.is_empty() { quote } else { brace }\n\
         }\n\
         pub fn sentinel() {}\n",
    );
    let items = parse_items(&f);
    let names: Vec<&str> = items.fns.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(
        names,
        ["pick", "sentinel"],
        "char/lifetime confusion desynced the item walk"
    );
}

#[test]
fn byte_strings_and_escapes_keep_token_lines_accurate() {
    let f = file(
        "pub fn a() {\n\
         \x20   let b = b\"bytes \\\" with quote\";\n\
         \x20   let s = \"line\\nbreak { not a brace }\";\n\
         \x20   drop((b, s));\n\
         }\n\
         pub fn b_fn() {}\n",
    );
    let items = parse_items(&f);
    assert_eq!(items.fns.len(), 2);
    assert_eq!(items.fns[1].name, "b_fn");
    assert_eq!(
        items.fns[1].line, 6,
        "string escapes shifted line accounting"
    );
}
