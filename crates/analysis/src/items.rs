//! Item-level parser on top of the token stream.
//!
//! The token lints of [`crate::lints`] see one flat token stream per
//! file; the interprocedural rules (L2 reachability, L8 determinism,
//! L10 dead-twin) need *items*: which `fn` declares which body, inside
//! which module and `impl` block, importing which names, and calling
//! what. This module extracts exactly that — a [`FileItems`] per source
//! file — without building a full AST: bodies stay token ranges, types
//! stay names, and anything the parser cannot classify is simply not an
//! item (the real compiler is the authority on well-formedness; see
//! DESIGN.md §3.15 for the evidence model this feeds).
//!
//! What is extracted:
//!
//! * the **module path** of every item — the file's path-derived module
//!   (`crates/core/src/confidence/dp.rs` → `core::confidence::dp`)
//!   extended by inline `mod name { … }` nesting;
//! * **`use` declarations**, flattened through `{…}` groups and `as`
//!   renames, so `use std::collections::HashMap as Map` makes `Map` a
//!   known alias of `std::collections::HashMap`;
//! * **`fn` items**, free and inside `impl` blocks (methods carry the
//!   `impl` target's type name), with parameter and body token ranges;
//! * **call sites** inside each body: `name(…)`, `path::name(…)`,
//!   `name::<T>(…)`, `.name(…)` method calls, and bare references to
//!   known function names (function values passed to drivers — these
//!   are recorded as [`CallKind::Ref`] so the call graph can treat them
//!   as weaker evidence than a syntactic call).

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// How a call site invokes its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// A syntactic call: `name(…)`, `path::name(…)`, `name::<T>(…)`.
    Call,
    /// A method call: `recv.name(…)`.
    Method,
    /// A bare reference to a known function name (no argument list) —
    /// typically a function value handed to a driver or test macro.
    Ref,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// Leading path qualifier segments, if written (`dp::count_dp(…)`
    /// yields `["dp"]`; empty for unqualified calls and methods).
    pub qualifier: Vec<String>,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
}

/// One `fn` item (free function or `impl` method).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Module path: file-derived segments plus inline `mod` nesting.
    pub module: Vec<String>,
    /// The `impl` target type name, for methods.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` for unrestricted `pub`.
    pub is_pub: bool,
    /// Token index range of the parameters, inside the parens.
    pub params: (usize, usize),
    /// Token index range of the body, inside the braces (`None` for
    /// trait-signature declarations).
    pub body: Option<(usize, usize)>,
}

/// One flattened `use` import: `alias` names `path` in this file.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// Full path segments (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
    /// The name the import binds locally (last segment, or the `as`
    /// rename).
    pub alias: String,
}

/// Everything the item parser extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// All flattened `use` imports.
    pub uses: Vec<UseDecl>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move", "unsafe", "else",
];

/// Derives the file's module path from its workspace-relative path:
/// `crates/core/src/confidence/dp.rs` → `["core", "confidence", "dp"]`,
/// `crates/core/src/lib.rs` → `["core"]`, `tests/engine_parity.rs` →
/// `["tests", "engine_parity"]`, `…/mod.rs` names its directory.
#[must_use]
pub fn module_path_of(path: &str) -> Vec<String> {
    let mut segs: Vec<&str> = path.split('/').collect();
    let Some(file) = segs.pop() else {
        return Vec::new();
    };
    // Drop the structural prefix: `crates/<name>/src` → `<name>`,
    // `crates/<name>/tests` → `<name>::tests`, bare `src` → nothing.
    let mut out: Vec<String> = Vec::new();
    match segs.first().copied() {
        Some("crates") if segs.len() >= 2 => {
            out.push(segs[1].to_string());
            for s in &segs[2..] {
                if *s != "src" {
                    out.push((*s).to_string());
                }
            }
        }
        Some("src") => {
            for s in &segs[1..] {
                out.push((*s).to_string());
            }
        }
        _ => {
            for s in &segs {
                out.push((*s).to_string());
            }
        }
    }
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if stem != "lib" && stem != "main" && stem != "mod" {
        out.push(stem.to_string());
    }
    out
}

/// Parses a lexed file into its item model.
#[must_use]
pub fn parse_items(file: &SourceFile) -> FileItems {
    let mut out = FileItems::default();
    let base = module_path_of(&file.path);
    walk_items(&file.tokens, 0, file.tokens.len(), &base, None, &mut out);
    out
}

/// Recursive item walk over `tokens[start..end]` with the given module
/// path and enclosing `impl` type.
fn walk_items(
    tokens: &[Token],
    start: usize,
    end: usize,
    module: &[String],
    self_type: Option<&str>,
    out: &mut FileItems,
) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_ident("use") {
            i = parse_use(tokens, i + 1, end, out);
            continue;
        }
        if t.is_ident("mod") {
            // `mod name { … }` recurses with an extended path; `mod
            // name;` is an outline module handled by its own file.
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                if tokens.get(i + 2).is_some_and(|n| n.is_punct('{')) {
                    let close = crate::source::balanced_block_end(tokens, i + 2);
                    let mut inner = module.to_vec();
                    inner.push(name.text.clone());
                    walk_items(tokens, i + 3, close, &inner, None, out);
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, body_open)) = parse_impl_header(tokens, i, end) {
                let close = crate::source::balanced_block_end(tokens, body_open);
                walk_items(tokens, body_open + 1, close, module, Some(&ty), out);
                i = close + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            if let Some((item, next)) = parse_fn(tokens, i, module, self_type) {
                out.fns.push(item);
                i = next;
                continue;
            }
            i += 1;
            continue;
        }
        // Skip whole blocks we do not descend into *only* when they
        // belong to non-item constructs we recognise; everything else
        // advances one token so `fn` inside macro bodies (`proptest! {
        // … }`) is still discovered.
        i += 1;
    }
}

/// Parses the header of an `impl` at `i`: returns the target type name
/// and the index of the body's `{`. `impl Trait for Type` reports
/// `Type`; generic arguments are skipped.
fn parse_impl_header(tokens: &[Token], i: usize, end: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip `<…>` generic parameters.
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j, end);
    }
    let mut last_type: Option<String> = None;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('{') {
            return last_type.map(|ty| (ty, j));
        }
        if t.is_ident("for") {
            // The segment after `for` is the real self type.
            last_type = None;
            j += 1;
            continue;
        }
        if t.is_ident("where") {
            // `where` clauses mention other types; stop updating.
            while j < end && !tokens[j].is_punct('{') {
                j += 1;
            }
            continue;
        }
        if t.kind == TokKind::Ident && last_type.is_none() {
            // First path segment of the (current) type; follow `::`
            // chains so `module::Type` reports `Type`.
            let mut name = t.text.clone();
            let mut k = j + 1;
            while k + 1 < end && tokens[k].is_punct(':') && tokens[k + 1].is_punct(':') {
                if let Some(seg) = tokens.get(k + 2).filter(|s| s.kind == TokKind::Ident) {
                    name = seg.text.clone();
                    k += 3;
                } else {
                    break;
                }
            }
            last_type = Some(name);
            j = k;
            continue;
        }
        if t.is_punct('<') {
            j = skip_angles(tokens, j, end);
            continue;
        }
        j += 1;
    }
    None
}

/// Given `<` at `j`, returns the index one past the matching `>`.
/// Tolerates shift operators by bailing at `;` or `{`.
fn skip_angles(tokens: &[Token], j: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return k + 1;
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            return k;
        }
        k += 1;
    }
    k
}

/// Parses a `fn` at index `i`; returns the item and the index to resume
/// scanning at (one past the body or the `;`).
fn parse_fn(
    tokens: &[Token],
    i: usize,
    module: &[String],
    self_type: Option<&str>,
) -> Option<(FnItem, usize)> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let is_pub = prev_is_bare_pub(tokens, i);
    // Generics, then the parameter list.
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j, tokens.len());
    }
    while j < tokens.len() && !tokens[j].is_punct('(') {
        if tokens[j].is_punct('{') || tokens[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let params_start = j + 1;
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let params_end = j;
    // Body: first `{` at bracket depth 0 before `;`.
    let mut k = j + 1;
    let mut d = 0i32;
    let (body, resume) = loop {
        match tokens.get(k) {
            None => break (None, k),
            Some(t) if t.is_punct('(') || t.is_punct('[') => d += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => d -= 1,
            Some(t) if t.is_punct(';') && d == 0 => break (None, k + 1),
            Some(t) if t.is_punct('{') && d == 0 => {
                let close = crate::source::balanced_block_end(tokens, k);
                break (Some((k + 1, close)), close + 1);
            }
            Some(_) => {}
        }
        k += 1;
    };
    Some((
        FnItem {
            name: name_tok.text.clone(),
            module: module.to_vec(),
            self_type: self_type.map(str::to_string),
            line: tokens[i].line,
            is_pub,
            params: (params_start, params_end),
            body,
        },
        resume,
    ))
}

/// Walks back over fn modifiers to decide bare-`pub` visibility
/// (mirrors `lints::visibility_is_bare_pub`, kept local so the item
/// parser has no lint dependency).
fn prev_is_bare_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
        {
            continue;
        }
        if t.kind == TokKind::Literal {
            continue;
        }
        if t.is_ident("pub") {
            return !tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        }
        return false;
    }
    false
}

/// Parses a `use` declaration starting after the `use` keyword;
/// flattens `{…}` groups and `as` renames into [`UseDecl`]s. Returns
/// the index one past the terminating `;`.
fn parse_use(tokens: &[Token], start: usize, end: usize, out: &mut FileItems) -> usize {
    // Find the terminating `;` first (groups never nest braces deeper
    // than themselves, so a brace-aware scan suffices).
    let mut stop = start;
    let mut brace = 0i32;
    while stop < end {
        let t = &tokens[stop];
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
        } else if t.is_punct(';') && brace == 0 {
            break;
        }
        stop += 1;
    }
    flatten_use(tokens, start, stop, &[], out);
    stop + 1
}

/// Recursively flattens the use-tree in `tokens[start..end]` under the
/// accumulated `prefix`.
fn flatten_use(tokens: &[Token], start: usize, end: usize, prefix: &[String], out: &mut FileItems) {
    let mut path = prefix.to_vec();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && t.text != "as" {
            path.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct(':') {
            i += 1;
            continue;
        }
        if t.is_ident("as") {
            if let Some(alias) = tokens.get(i + 1).filter(|a| a.kind == TokKind::Ident) {
                if let Some(last) = path.last() {
                    if last != "*" {
                        out.uses.push(UseDecl {
                            path: path.clone(),
                            alias: alias.text.clone(),
                        });
                    }
                }
            }
            return;
        }
        if t.is_punct('{') {
            // Split the group on top-level commas, recursing per arm.
            let close = balanced_brace_end(tokens, i, end);
            let mut arm_start = i + 1;
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < close {
                let a = &tokens[k];
                if a.is_punct('{') {
                    depth += 1;
                } else if a.is_punct('}') {
                    depth -= 1;
                } else if a.is_punct(',') && depth == 0 {
                    flatten_use(tokens, arm_start, k, &path, out);
                    arm_start = k + 1;
                }
                k += 1;
            }
            if arm_start < close {
                flatten_use(tokens, arm_start, close, &path, out);
            }
            return;
        }
        if t.is_punct('*') {
            // Glob imports bind no single alias; the symbol table's
            // name-based fallback covers them.
            return;
        }
        i += 1;
    }
    if path.len() > prefix.len() {
        if let Some(last) = path.last().cloned() {
            out.uses.push(UseDecl { path, alias: last });
        }
    }
}

/// Given `{` at `i`, the matching `}` index, bounded by `end`.
fn balanced_brace_end(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Extracts call sites from a body token range. `known_fn` decides
/// whether a bare identifier counts as a [`CallKind::Ref`] — the caller
/// passes a symbol-table membership test so arbitrary variable names do
/// not become edges.
#[must_use]
pub fn call_sites(
    tokens: &[Token],
    body: (usize, usize),
    known_fn: &dyn Fn(&str) -> bool,
) -> Vec<CallSite> {
    let (start, end) = body;
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        let prev_dot = i > start && tokens[i - 1].is_punct('.');
        let prev_fn = i > 0 && tokens[i - 1].is_ident("fn");
        // Follow a `::`-qualified path from this segment.
        let mut qualifier: Vec<String> = Vec::new();
        let mut name = t.text.clone();
        let mut j = i + 1;
        while j + 1 < end && tokens[j].is_punct(':') && tokens[j + 1].is_punct(':') {
            match tokens.get(j + 2) {
                Some(seg) if seg.kind == TokKind::Ident => {
                    qualifier.push(std::mem::replace(&mut name, seg.text.clone()));
                    j += 3;
                }
                Some(seg) if seg.is_punct('<') => {
                    // Turbofish: `name::<T>(…)`.
                    j = skip_angles(tokens, j + 2, end);
                    break;
                }
                _ => break,
            }
        }
        let calls = tokens.get(j).is_some_and(|n| n.is_punct('('));
        if prev_fn {
            // A nested `fn` declaration, not a call.
            i = j;
            continue;
        }
        if calls {
            out.push(CallSite {
                name,
                qualifier,
                kind: if prev_dot {
                    CallKind::Method
                } else {
                    CallKind::Call
                },
                line: t.line,
            });
        } else if !prev_dot && qualifier.is_empty() && known_fn(&name) {
            out.push(CallSite {
                name,
                qualifier,
                kind: CallKind::Ref,
                line: t.line,
            });
        }
        i = j.max(i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn items_of(path: &str, src: &str) -> FileItems {
        parse_items(&SourceFile::from_source(path, src))
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(
            module_path_of("crates/core/src/confidence/dp.rs"),
            ["core", "confidence", "dp"]
        );
        assert_eq!(module_path_of("crates/core/src/lib.rs"), ["core"]);
        assert_eq!(
            module_path_of("crates/core/src/confidence/mod.rs"),
            ["core", "confidence"]
        );
        assert_eq!(
            module_path_of("tests/engine_parity.rs"),
            ["tests", "engine_parity"]
        );
        assert_eq!(module_path_of("src/lib.rs"), Vec::<String>::new());
    }

    #[test]
    fn fns_free_inline_mod_and_impl_methods() {
        let it = items_of(
            "crates/core/src/engine.rs",
            "pub fn free(x: u64) -> u64 { x }\n\
             mod inner { pub fn nested() {} }\n\
             pub struct Engine;\n\
             impl Engine {\n    pub fn method(&self) -> u64 { free(1) }\n}\n\
             impl std::fmt::Display for Engine {\n    fn fmt(&self, f: &mut Fmt) -> R { write(f) }\n}\n",
        );
        let names: Vec<(&str, Option<&str>)> = it
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None),
                ("nested", None),
                ("method", Some("Engine")),
                ("fmt", Some("Engine")),
            ]
        );
        assert_eq!(it.fns[1].module, ["core", "engine", "inner"]);
        assert!(it.fns[0].is_pub && !it.fns[3].is_pub);
    }

    #[test]
    fn impl_generics_and_qualified_types() {
        let it = items_of(
            "crates/core/src/x.rs",
            "impl<T: Clone> Wrapper<T> { fn get(&self) -> &T { &self.0 } }\n\
             impl From<u64> for confidence::Value { fn from(v: u64) -> Self { Self(v) } }\n",
        );
        assert_eq!(it.fns[0].self_type.as_deref(), Some("Wrapper"));
        assert_eq!(it.fns[1].self_type.as_deref(), Some("Value"));
    }

    #[test]
    fn use_declarations_flatten_groups_and_renames() {
        let it = items_of(
            "crates/core/src/x.rs",
            "use std::collections::{HashMap, BTreeMap as Sorted};\n\
             use crate::govern::Budget;\n\
             use super::*;\n",
        );
        let aliases: Vec<(&str, Vec<&str>)> = it
            .uses
            .iter()
            .map(|u| {
                (
                    u.alias.as_str(),
                    u.path.iter().map(String::as_str).collect(),
                )
            })
            .collect();
        assert_eq!(
            aliases,
            [
                ("HashMap", vec!["std", "collections", "HashMap"]),
                ("Sorted", vec!["std", "collections", "BTreeMap"]),
                ("Budget", vec!["crate", "govern", "Budget"]),
            ]
        );
    }

    #[test]
    fn call_sites_cover_free_qualified_method_and_refs() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "pub fn driver(b: &Budget) -> u64 {\n\
                 helper(1);\n\
                 dp::count_dp(b);\n\
                 b.tick(\"driver\");\n\
                 run(count_dp_parallel);\n\
                 let v = vec![1];\n\
                 v.len() as u64\n\
             }\n",
        );
        let it = parse_items(&f);
        let body = it.fns[0].body.unwrap();
        let sites = call_sites(&f.tokens, body, &|n| n == "count_dp_parallel");
        let shapes: Vec<(&str, CallKind)> =
            sites.iter().map(|c| (c.name.as_str(), c.kind)).collect();
        assert_eq!(
            shapes,
            [
                ("helper", CallKind::Call),
                ("count_dp", CallKind::Call),
                ("tick", CallKind::Method),
                ("run", CallKind::Call),
                ("count_dp_parallel", CallKind::Ref),
                ("len", CallKind::Method),
            ]
        );
        assert_eq!(sites[1].qualifier, ["dp"]);
    }

    #[test]
    fn turbofish_calls_are_calls() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "fn f() { parse::<u64>(\"1\"); collect::<Vec<_>>(); }\n",
        );
        let it = parse_items(&f);
        let sites = call_sites(&f.tokens, it.fns[0].body.unwrap(), &|_| false);
        let names: Vec<&str> = sites.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["parse", "collect"]);
    }

    #[test]
    fn fns_inside_macro_invocations_are_discovered() {
        // proptest! { #[test] fn prop(…) { … } } — the macro body is a
        // plain token stream, so the walker still sees the `fn`.
        let it = items_of(
            "tests/engine_parity.rs",
            "proptest! {\n    #[test]\n    fn dp_parity(n in 0u64..9) {\n        count_dp(n);\n    }\n}\n",
        );
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "dp_parity");
        assert!(it.fns[0].body.is_some());
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let it = items_of(
            "crates/core/src/x.rs",
            "pub trait Provider { fn fetch(&self) -> u64; fn all(&self) -> u64 { self.fetch() } }\n",
        );
        assert_eq!(it.fns.len(), 2);
        assert!(it.fns[0].body.is_none());
        assert!(it.fns[1].body.is_some());
    }
}
