//! `pscds-analysis` — workspace invariant linter and schedule-exhaustive
//! checker for the partially-sound/complete-sources engine layer.
//!
//! The engines in `crates/core` rely on whole-workspace invariants that
//! no single unit test can see: every engine entry point must ship a
//! budgeted and a parallel twin and appear in the parity harness;
//! nothing outside the governance layer may spend unbounded time
//! invisibly to the cooperative [`Budget`]; relaxed atomics need a
//! written linearizability argument; core library paths must not panic;
//! and "the engine gave up" errors must carry actionable provenance.
//! This crate enforces those invariants with a dependency-free lexer
//! ([`lexer`]), a tiny source model ([`source`]), an item-level parser
//! ([`items`]) feeding a workspace symbol table ([`symbols`]) and call
//! graph ([`callgraph`]), and a registry of named lint rules
//! ([`lints`]); the companion [`interleave`] module exhaustively
//! model-checks the two concurrent protocols (`SearchControl` first-hit
//! arbitration, `Budget` fork/cancel) that the parallel driver's
//! determinism rests on. The interprocedural rules (L2 reachability,
//! L8 determinism, L10 dead-twin) consume the call graph; the evidence
//! model — what the graph can and cannot prove — is documented in
//! DESIGN.md §3.15.
//!
//! Run it with `cargo run -p pscds-analysis --bin pscds-lint`; machine
//! consumers use `--format json` ([`json`]) and `--explain CODE`.
//!
//! [`Budget`]: ../pscds_core/govern/struct.Budget.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod interleave;
pub mod items;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod source;
pub mod symbols;

pub use lints::{registry, run_all, LintRule};
pub use source::{Violation, Workspace};
