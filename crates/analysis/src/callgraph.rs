//! Workspace call graph and the reachability queries the
//! interprocedural lints run on.
//!
//! Nodes are the functions of the [`SymbolTable`]; edges come from its
//! resolved call sites. Two edge strengths are kept (DESIGN.md §3.15):
//!
//! * **call edges** — syntactic calls (`name(…)`, `recv.name(…)`) that
//!   certainly invoke *some* function the name resolves to;
//! * **ref edges** — bare references to known function names (function
//!   values handed to drivers, parity harness tables). They probably
//!   execute, so *reachability* queries include them; "this loop calls
//!   a ticking callee" arguments do **not**, because a mentioned-but-
//!   never-invoked function must not discharge a budget obligation.
//!
//! All derived sets are computed with deterministic worklists over the
//! table's stable node numbering, so lint output is bit-identical from
//! run to run.

use crate::items::CallKind;
use crate::symbols::{FnId, SymbolTable};

/// Which edges a traversal follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeFilter {
    /// Syntactic calls and method calls only.
    CallsOnly,
    /// Calls, method calls, and bare function references.
    CallsAndRefs,
}

/// The call graph: forward adjacency per node, per edge strength.
pub struct CallGraph {
    /// `calls[f]` — targets of syntactic (incl. method) calls in `f`.
    pub calls: Vec<Vec<FnId>>,
    /// `refs[f]` — targets of bare-reference mentions in `f`.
    pub refs: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph from a resolved symbol table.
    #[must_use]
    pub fn build(table: &SymbolTable<'_>) -> Self {
        let n = table.fns.len();
        let mut calls: Vec<Vec<FnId>> = vec![Vec::new(); n];
        let mut refs: Vec<Vec<FnId>> = vec![Vec::new(); n];
        for (f, sym) in table.fns.iter().enumerate() {
            for rc in &sym.calls {
                let bucket = match rc.site.kind {
                    CallKind::Call | CallKind::Method => &mut calls[f],
                    CallKind::Ref => &mut refs[f],
                };
                bucket.extend_from_slice(&rc.targets);
            }
            calls[f].sort_unstable();
            calls[f].dedup();
            refs[f].sort_unstable();
            refs[f].dedup();
        }
        CallGraph { calls, refs }
    }

    /// Forward reachability from `seeds` under the given filter;
    /// returns a membership vector (seeds are reachable).
    #[must_use]
    pub fn reachable_from(&self, seeds: &[FnId], filter: EdgeFilter) -> Vec<bool> {
        let mut seen = vec![false; self.calls.len()];
        let mut work: Vec<FnId> = Vec::new();
        for &s in seeds {
            if !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
        while let Some(f) = work.pop() {
            let push = |targets: &[FnId], seen: &mut Vec<bool>, work: &mut Vec<FnId>| {
                for &t in targets {
                    if !seen[t] {
                        seen[t] = true;
                        work.push(t);
                    }
                }
            };
            push(&self.calls[f], &mut seen, &mut work);
            if filter == EdgeFilter::CallsAndRefs {
                push(&self.refs[f], &mut seen, &mut work);
            }
        }
        seen
    }

    /// Fixpoint of "the function discharges the budget obligation":
    /// `base[f]` marks functions whose own body ticks directly; the
    /// result additionally marks every function with a **call** edge
    /// (ref mentions do not count) to a discharging function.
    #[must_use]
    pub fn propagate_up(&self, base: &[bool]) -> Vec<bool> {
        let n = self.calls.len();
        debug_assert_eq!(base.len(), n);
        // Reverse call edges once, then run a worklist.
        let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
        for (f, targets) in self.calls.iter().enumerate() {
            for &t in targets {
                rev[t].push(f);
            }
        }
        let mut out = base.to_vec();
        let mut work: Vec<FnId> = (0..n).filter(|&f| out[f]).collect();
        while let Some(f) = work.pop() {
            for &caller in &rev[f] {
                if !out[caller] {
                    out[caller] = true;
                    work.push(caller);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;
    use crate::symbols::SymbolTable;

    fn graph_of(ws: &Workspace) -> (SymbolTable<'_>, CallGraph) {
        let t = SymbolTable::build(ws);
        let g = CallGraph::build(&t);
        (t, g)
    }

    #[test]
    fn reachability_follows_call_chains() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn island() {}\n",
        )]);
        let (t, g) = graph_of(&ws);
        let a = t.named("a")[0];
        let seen = g.reachable_from(&[a], EdgeFilter::CallsOnly);
        assert!(seen[t.named("c")[0]]);
        assert!(!seen[t.named("island")[0]]);
    }

    #[test]
    fn ref_edges_extend_reachability_but_not_discharge() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub fn ticker(b: &B) { b.tick(\"t\"); }\npub fn driver() { run(ticker); }\npub fn run(f: F) {}\n",
        )]);
        let (t, g) = graph_of(&ws);
        let driver = t.named("driver")[0];
        let ticker = t.named("ticker")[0];
        assert!(g.reachable_from(&[driver], EdgeFilter::CallsAndRefs)[ticker]);
        assert!(!g.reachable_from(&[driver], EdgeFilter::CallsOnly)[ticker]);

        let mut base = vec![false; g.calls.len()];
        base[ticker] = true;
        let ticks = g.propagate_up(&base);
        assert!(
            !ticks[driver],
            "a bare mention of a ticking fn must not discharge the obligation"
        );
    }

    #[test]
    fn propagate_up_marks_transitive_callers() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub fn leaf(b: &B) { b.tick(\"leaf\"); }\npub fn mid() { leaf(); }\npub fn top() { mid(); }\npub fn other() {}\n",
        )]);
        let (t, g) = graph_of(&ws);
        let mut base = vec![false; g.calls.len()];
        base[t.named("leaf")[0]] = true;
        let up = g.propagate_up(&base);
        assert!(up[t.named("mid")[0]]);
        assert!(up[t.named("top")[0]]);
        assert!(!up[t.named("other")[0]]);
    }
}
