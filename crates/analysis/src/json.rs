//! Deterministic JSON ("SARIF-lite") report rendering and validation.
//!
//! `pscds-lint --format json` emits one document per run so CI can
//! *diff* diagnostics instead of grepping stderr. The format is a
//! deliberately small cousin of SARIF: a tool block listing the rule
//! registry (stable code, id, summary), the suppression census, and a
//! flat, fully-sorted result list. Two runs over the same tree produce
//! **byte-identical** output — there are no timestamps, no absolute
//! paths, no hash-ordered collections anywhere in the renderer — which
//! is asserted by the fixture corpus and the CI gate.
//!
//! The same module carries a minimal recursive-descent JSON parser so
//! `pscds-lint --validate-json FILE` can check a previously-emitted
//! report against the schema with zero dependencies (the bench crate
//! has its own parser; the two stay separate because `pscds-analysis`
//! must not depend on engine crates).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lints::{self, suppression_stats};
use crate::source::{Violation, Workspace};

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "pscds-lint-json/1";

/// Renders the full report for a workspace: registry, suppression
/// census, and the given (already sorted) violations.
#[must_use]
pub fn render_report(ws: &Workspace, violations: &[Violation]) -> String {
    let stats = suppression_stats(ws);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", quote(SCHEMA));
    s.push_str("  \"tool\": {\n    \"name\": \"pscds-lint\",\n    \"rules\": [\n");
    let rules = lints::registry();
    let mut rule_lines: Vec<String> = vec![format!(
        "      {{\"code\": {}, \"id\": {}, \"summary\": {}}}",
        quote(lints::ALLOW_GRAMMAR_CODE),
        quote(lints::ALLOW_GRAMMAR_RULE),
        quote("lint-allow directives carry a rule id and a non-empty justification")
    )];
    for r in &rules {
        rule_lines.push(format!(
            "      {{\"code\": {}, \"id\": {}, \"summary\": {}}}",
            quote(r.code),
            quote(r.id),
            quote(r.summary)
        ));
    }
    s.push_str(&rule_lines.join(",\n"));
    s.push_str("\n    ]\n  },\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", ws.files.len());
    s.push_str("  \"suppressions\": {\n");
    let _ = writeln!(s, "    \"directives\": {},", stats.directives);
    let _ = writeln!(s, "    \"file_scope\": {},", stats.file_scope);
    let _ = writeln!(s, "    \"files\": {},", stats.files);
    s.push_str("    \"by_rule\": [\n");
    let by_rule: Vec<String> = stats
        .by_rule
        .iter()
        .map(|(rule, count)| format!("      {{\"rule\": {}, \"count\": {count}}}", quote(rule)))
        .collect();
    s.push_str(&by_rule.join(",\n"));
    s.push_str("\n    ]\n  },\n");
    let _ = writeln!(s, "  \"violations\": {},", violations.len());
    s.push_str("  \"results\": [\n");
    let results: Vec<String> = violations
        .iter()
        .map(|v| {
            format!(
                "    {{\"code\": {}, \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                quote(lints::code_for(v.rule).unwrap_or("L?")),
                quote(v.rule),
                quote(&v.file),
                v.line,
                quote(&v.message)
            )
        })
        .collect();
    s.push_str(&results.join(",\n"));
    if results.is_empty() {
        // Keep the empty array compact but stable.
        s.truncate(s.len() - "  \"results\": [\n".len());
        s.push_str("  \"results\": []\n");
    } else {
        s.push_str("\n  ]\n");
    }
    s.push_str("}\n");
    s
}

/// JSON string quoting (the only escapes the report ever needs, plus
/// full control-character coverage for safety).
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (just enough for validation).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys — parsing order is irrelevant for
    /// validation).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
/// A human-readable message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let Value::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key is not a string at offset {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&':') {
                    return Err(format!("expected `:` at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    '"' => return Ok(Value::Str(s)),
                    '\\' => {
                        let Some(&e) = b.get(*pos) else {
                            return Err("unterminated escape".into());
                        };
                        *pos += 1;
                        match e {
                            '"' | '\\' | '/' => s.push(e),
                            'n' => s.push('\n'),
                            't' => s.push('\t'),
                            'r' => s.push('\r'),
                            'b' => s.push('\u{8}'),
                            'f' => s.push('\u{c}'),
                            'u' => {
                                let hex: String =
                                    b.get(*pos..*pos + 4).unwrap_or_default().iter().collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| format!("bad \\u escape at offset {pos}"))?;
                                *pos += 4;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape `\\{other}`")),
                        }
                    }
                    c => s.push(c),
                }
            }
            Err("unterminated string".into())
        }
        Some('t') if matches(b, *pos, "true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if matches(b, *pos, "false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if matches(b, *pos, "null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while b
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number `{text}` at offset {start}"))
        }
        Some(c) => Err(format!("unexpected character `{c}` at offset {pos}")),
    }
}

fn matches(b: &[char], pos: usize, word: &str) -> bool {
    b.get(pos..pos + word.len())
        .is_some_and(|w| w.iter().collect::<String>() == word)
}

/// Validates a parsed report against the pscds-lint schema. Returns the
/// violation count on success.
///
/// # Errors
/// A description of the first schema deviation.
pub fn validate_report(doc: &Value) -> Result<u64, String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string `schema`")?;
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    let rules = doc
        .get("tool")
        .and_then(|t| t.get("rules"))
        .and_then(Value::as_arr)
        .ok_or("missing `tool.rules` array")?;
    let mut codes: Vec<&str> = Vec::new();
    for r in rules {
        for key in ["code", "id", "summary"] {
            if r.get(key).and_then(Value::as_str).is_none() {
                return Err(format!("rule entry missing string `{key}`"));
            }
        }
        codes.push(r.get("code").and_then(Value::as_str).unwrap_or(""));
    }
    if codes.is_empty() {
        return Err("tool.rules is empty".into());
    }
    doc.get("files_scanned")
        .and_then(Value::as_num)
        .ok_or("missing number `files_scanned`")?;
    let sup = doc.get("suppressions").ok_or("missing `suppressions`")?;
    for key in ["directives", "file_scope", "files"] {
        sup.get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("missing number `suppressions.{key}`"))?;
    }
    let by_rule = sup
        .get("by_rule")
        .and_then(Value::as_arr)
        .ok_or("missing `suppressions.by_rule` array")?;
    for entry in by_rule {
        entry
            .get("rule")
            .and_then(Value::as_str)
            .ok_or("by_rule entry missing string `rule`")?;
        entry
            .get("count")
            .and_then(Value::as_num)
            .ok_or("by_rule entry missing number `count`")?;
    }
    let declared = doc
        .get("violations")
        .and_then(Value::as_num)
        .ok_or("missing number `violations`")?;
    let results = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing `results` array")?;
    if declared as usize != results.len() {
        return Err(format!(
            "`violations` says {declared} but `results` has {} entries",
            results.len()
        ));
    }
    for res in results {
        for key in ["code", "rule", "file", "message"] {
            res.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("result missing string `{key}`"))?;
        }
        res.get("line")
            .and_then(Value::as_num)
            .ok_or("result missing number `line`")?;
        let code = res.get("code").and_then(Value::as_str).unwrap_or("");
        if !codes.contains(&code) {
            return Err(format!(
                "result carries unregistered code `{code}` — every diagnostic needs a stable registered code"
            ));
        }
    }
    Ok(results.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn report_is_bit_identical_across_renders_and_validates() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub fn f() { x.unwrap(); }\n// lint-allow(relaxed-ordering): quoted \"why\"\n",
        )]);
        let v = crate::lints::run_all(&ws);
        let a = render_report(&ws, &v);
        let b = render_report(&ws, &v);
        assert_eq!(a, b, "renderer must be deterministic");
        let doc = parse(&a).expect("self-emitted JSON parses");
        let n = validate_report(&doc).expect("self-emitted JSON validates");
        assert_eq!(n as usize, v.len());
    }

    #[test]
    fn empty_result_report_renders_stable_empty_array() {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", "pub fn f() {}\n")]);
        let report = render_report(&ws, &[]);
        assert!(report.contains("\"results\": []"));
        let doc = parse(&report).expect("parses");
        assert_eq!(validate_report(&doc), Ok(0));
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parser_round_trips_structures() {
        let doc = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parses");
        assert_eq!(
            doc.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(Value::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn validator_rejects_unregistered_codes() {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", "pub fn f() {}\n")]);
        let mut report = render_report(&ws, &[]);
        report = report.replace("\"results\": []", "\"results\": [{\"code\": \"Z9\", \"rule\": \"x\", \"file\": \"f\", \"line\": 1, \"message\": \"m\"}]");
        report = report.replace("\"violations\": 0", "\"violations\": 1");
        let doc = parse(&report).expect("parses");
        let err = validate_report(&doc).expect_err("Z9 is not registered");
        assert!(err.contains("unregistered code"), "{err}");
    }

    #[test]
    fn parser_reports_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
