//! L1 `engine-twins`: every super-polynomial engine entry point in
//! `crates/core` — a bare-`pub` `fn` whose name matches `check_*`,
//! `analyze_*` or `count_*` — must be interruptible and parallelizable,
//! and its parity with the serial path must be tested:
//!
//! 1. a **budgeted twin** exists (`<name>_budgeted`), or the engine
//!    itself takes a [`Budget`] parameter;
//! 2. a **parallel twin** exists (`<name>_parallel`), or the engine
//!    itself takes a [`ParallelConfig`] parameter;
//! 3. the engine's name is referenced from `tests/engine_parity.rs`, the
//!    differential harness that makes the Theorem 4.1 / Theorem 5.1
//!    bit-identity contract executable.
//!
//! Names ending in `_budgeted` / `_parallel` are twins, not bases, and
//! are skipped. The discovered engine list is exposed via
//! [`engine_bases`] so `tests/engine_parity.rs` can assert at runtime
//! that the registry and the parity suite stay in sync.

use super::{flag, fn_decls};
use crate::source::{Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "engine-twins";

/// Path of the parity harness the rule anchors to.
pub const PARITY_TEST: &str = "tests/engine_parity.rs";

/// A discovered engine base function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineBase {
    /// The engine's function name (e.g. `count_dp`).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// `true` if a `lint-allow(engine-twins)` directive covers the
    /// declaration (such engines are exempt from the twin checks but are
    /// still listed).
    pub allowed: bool,
}

/// `true` iff `name` is an engine *base* name: matches the verb patterns
/// and is not itself a twin.
#[must_use]
pub fn is_engine_base_name(name: &str) -> bool {
    let matches_verb = ["check_", "analyze_", "count_"]
        .iter()
        .any(|v| name.starts_with(v));
    matches_verb && !name.ends_with("_budgeted") && !name.ends_with("_parallel")
}

/// Discovers every engine base declared in `crates/core/src` library
/// paths (test regions excluded).
#[must_use]
pub fn engine_bases(ws: &Workspace) -> Vec<EngineBase> {
    let mut bases = Vec::new();
    for file in ws.core_files() {
        for decl in fn_decls(file) {
            if decl.is_pub && !file.is_test_line(decl.line) && is_engine_base_name(&decl.name) {
                bases.push(EngineBase {
                    name: decl.name.clone(),
                    file: file.path.clone(),
                    line: decl.line,
                    allowed: file.allows_rule(RULE, decl.line),
                });
            }
        }
    }
    bases
}

/// `true` iff some core library path declares `fn <name>`.
fn core_declares_fn(ws: &Workspace, name: &str) -> bool {
    ws.core_files().any(|file| {
        fn_decls(file)
            .iter()
            .any(|d| d.name == name && !file.is_test_line(d.line))
    })
}

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    let parity = ws.file(PARITY_TEST);
    for base in engine_bases(ws) {
        if base.allowed {
            continue;
        }
        let file = ws
            .file(&base.file)
            .expect("engine base came from this workspace");
        let decl = fn_decls(file)
            .into_iter()
            .find(|d| d.name == base.name && d.line == base.line)
            .expect("engine base came from fn_decls");
        let (ps, pe) = decl.params;
        let param_has = |ty: &str| file.tokens[ps..pe].iter().any(|t| t.is_ident(ty));

        if !param_has("Budget") && !core_declares_fn(ws, &format!("{}_budgeted", base.name)) {
            flag(
                &mut out,
                file,
                RULE,
                base.line,
                format!(
                    "engine `{}` has no budgeted twin: declare `{}_budgeted` (or take a `&Budget` parameter) so the engine is interruptible",
                    base.name, base.name
                ),
            );
        }
        if !param_has("ParallelConfig") && !core_declares_fn(ws, &format!("{}_parallel", base.name))
        {
            flag(
                &mut out,
                file,
                RULE,
                base.line,
                format!(
                    "engine `{}` has no parallel twin: declare `{}_parallel` (or take a `&ParallelConfig` parameter) bit-identical to the serial path",
                    base.name, base.name
                ),
            );
        }
        match parity {
            Some(p) if p.mentions_ident(&base.name) => {}
            Some(_) => flag(
                &mut out,
                file,
                RULE,
                base.line,
                format!(
                    "engine `{}` is not referenced from {PARITY_TEST}: add a differential parity case before shipping the engine",
                    base.name
                ),
            ),
            None => flag(
                &mut out,
                file,
                RULE,
                base.line,
                format!(
                    "{PARITY_TEST} was not found in the workspace, so engine `{}` has no parity anchor",
                    base.name
                ),
            ),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    const PARITY_OK: &str = "#[test]\nfn parity() { count_widgets(1); }\n";

    #[test]
    fn base_name_classification() {
        assert!(is_engine_base_name("count_dp"));
        assert!(is_engine_base_name("check_resilient_with"));
        assert!(is_engine_base_name("analyze_dp"));
        assert!(!is_engine_base_name("count_dp_parallel"));
        assert!(!is_engine_base_name("analyze_budgeted"));
        assert!(!is_engine_base_name("decide_identity"));
        assert!(!is_engine_base_name("checked_sub"));
    }

    #[test]
    fn missing_twins_and_parity_reference_are_flagged() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/widgets.rs",
                "pub fn count_widgets(n: u64) -> u64 { n }\n",
            ),
            ("tests/engine_parity.rs", "#[test]\nfn other() {}\n"),
        ]);
        let v = run(&ws);
        assert_eq!(
            v.len(),
            3,
            "budgeted twin, parallel twin, parity ref: {v:?}"
        );
        assert!(v.iter().all(|x| x.rule == RULE));
    }

    #[test]
    fn twins_by_declaration_or_parameter_pass() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/widgets.rs",
                "pub fn count_widgets(n: u64, budget: &Budget, config: &ParallelConfig) -> u64 { n }\n",
            ),
            ("tests/engine_parity.rs", PARITY_OK),
        ]);
        assert_eq!(run(&ws), vec![]);

        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/widgets.rs",
                "pub fn count_widgets(n: u64) -> u64 { n }\n\
                 pub fn count_widgets_budgeted(n: u64, b: &Budget) -> u64 { n }\n\
                 pub fn count_widgets_parallel(n: u64, b: &Budget, c: &ParallelConfig) -> u64 { n }\n",
            ),
            ("tests/engine_parity.rs", PARITY_OK),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn allow_directive_exempts_an_engine() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/widgets.rs",
                "// lint-allow(engine-twins): thin serial wrapper over count_widgets_full\npub fn count_widgets(n: u64) -> u64 { n }\n",
            ),
            ("tests/engine_parity.rs", "#[test]\nfn other() {}\n"),
        ]);
        assert_eq!(run(&ws), vec![]);
        let bases = engine_bases(&ws);
        assert_eq!(bases.len(), 1);
        assert!(bases[0].allowed);
    }

    #[test]
    fn test_region_declarations_are_ignored() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/widgets.rs",
                "#[cfg(test)]\nmod tests {\n    pub fn count_fixtures() -> u64 { 0 }\n}\n",
            ),
            ("tests/engine_parity.rs", PARITY_OK),
        ]);
        assert_eq!(run(&ws), vec![]);
        assert!(engine_bases(&ws).is_empty());
    }
}
