//! L6 `obs-api`: the observability subsystem keeps two invariants that
//! plain review keeps missing, one on each side of the crate boundary:
//!
//! * **pscds-obs is clock-free.** No `Instant::now` / `SystemTime::now`
//!   inside `crates/obs/src` — callers inject every timestamp through
//!   [`Budget::elapsed_ns`], so span timings stay coherent with the
//!   budget's deadline accounting and the crate stays deterministic
//!   enough to test byte-for-byte.
//! * **Consumers go through the registry and the session.** In
//!   `crates/{core,cli,bench}/src`, metric, span, and event names must
//!   be the `pscds_obs::names` constants — a string-literal name in a
//!   `counter_add`/`gauge_max`/`histogram_record`/`span_open`/`event`
//!   call silently forks the schema the bench
//!   validator and the CI counter-diff rely on. Likewise `Span` values
//!   are built by `ObsSession::span_open`/`span_close`, never by hand:
//!   a hand-rolled struct literal bypasses the per-thread aggregation
//!   that keeps parallel traces deterministic.
//!
//! Test regions and `lint-allow(obs-api)` lines are exempt as usual.

use super::{find_path2, flag};
use crate::lexer::TokKind;
use crate::source::{Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "obs-api";

/// The `MetricSet`/`ObsSession`/`SpanStack` recording calls whose name
/// argument must be a `names::` registry constant.
const METRIC_CALLS: [&str; 5] = [
    "counter_add",
    "gauge_max",
    "histogram_record",
    "span_open",
    "event",
];

/// The source trees that consume the obs API.
const CONSUMER_TREES: [&str; 3] = ["crates/core/src/", "crates/cli/src/", "crates/bench/src/"];

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.under("crates/obs/src/") {
            for (a, b) in [("Instant", "now"), ("SystemTime", "now")] {
                for i in find_path2(file, a, b) {
                    flag(
                        &mut out,
                        file,
                        RULE,
                        file.tokens[i].line,
                        format!(
                            "`{a}::now` inside pscds-obs: the subsystem is clock-free — \
                             callers inject timestamps via `Budget::elapsed_ns` so traces \
                             stay coherent with the budget clock"
                        ),
                    );
                }
            }
            continue;
        }
        if !CONSUMER_TREES.iter().any(|tree| file.under(tree)) {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if METRIC_CALLS.iter().any(|c| t.is_ident(c))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.kind == TokKind::Literal && n.text.starts_with('"'))
            {
                flag(
                    &mut out,
                    file,
                    RULE,
                    t.line,
                    format!(
                        "string-literal metric name in `{}`: register the metric in \
                         `pscds_obs::names` and pass the constant, so the schema the bench \
                         validator and the CI counter-diff consume cannot drift",
                        t.text
                    ),
                );
            }
            // A `Span { field: … }` struct literal — the `ident :` lookahead
            // separates construction from return types (`-> Span {`),
            // `impl Span {`, and shorthand destructuring patterns, which
            // merely *read* spans and are fine.
            if t.is_ident("Span")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('{'))
                && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
                && tokens.get(i + 3).is_some_and(|n| n.is_punct(':'))
            {
                flag(
                    &mut out,
                    file,
                    RULE,
                    t.line,
                    "hand-built `Span` struct literal outside pscds-obs: open spans through \
                     `ObsSession::span_open`/`span_close` so they join the per-thread \
                     aggregation that keeps parallel traces deterministic"
                        .to_owned(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn ad_hoc_clocks_in_obs_are_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/obs/src/span.rs",
            "pub fn f() { let a = Instant::now(); let b = SystemTime::now(); }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("Instant::now"));
        assert!(v[1].message.contains("SystemTime::now"));
    }

    #[test]
    fn clocks_outside_obs_are_not_this_rules_business() {
        // (L2 budget-bypass owns `Instant::now` in core; the CLI and
        // bench time wall-clocks legitimately.)
        let ws = Workspace::from_sources(&[(
            "crates/bench/src/bin/e1.rs",
            "pub fn f() { let t = Instant::now(); }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn string_literal_metric_names_are_flagged_in_consumers() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(obs: &mut ObsSession) {\n    obs.counter_add(\"dp.cache_hits\", 1);\n    obs.gauge_max(\"dp.cache_peak\", 2);\n    obs.histogram_record(\"dp.chunk_steps\", 3);\n    obs.span_open(\"dp.run\", 0);\n    obs.event(\"budget.trip\", 0, &[]);\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v[0].message.contains("pscds_obs::names"));
    }

    #[test]
    fn registry_constants_pass() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(obs: &mut ObsSession) { obs.counter_add(names::DP_CACHE_HITS, 1); }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn hand_built_spans_are_flagged_outside_obs() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/engine.rs",
                "pub fn f() -> Span { Span { name: \"x\", attrs: vec![], start_ns: 0, end_ns: 0, children: vec![] } }\n",
            ),
            (
                "crates/obs/src/span.rs",
                "pub fn open() -> Span { Span { name: \"x\", attrs: vec![], start_ns: 0, end_ns: 0, children: vec![] } }\n",
            ),
        ]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].file.contains("crates/core"));
        assert!(v[0].message.contains("span_open"));
    }

    #[test]
    fn allow_directive_and_test_regions_are_exempt() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(obs: &mut ObsSession) {\n    // lint-allow(obs-api): schema-drift fixture for the validator test\n    obs.counter_add(\"made.up\", 1);\n}\n#[cfg(test)]\nmod tests {\n    fn t(obs: &mut ObsSession) { obs.counter_add(\"scratch\", 1); }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
