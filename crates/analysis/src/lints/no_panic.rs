//! L4 `no-panic`: `crates/core` library paths must not `.unwrap()`,
//! `.expect(…)` or `panic!` — a panicking engine takes down the caller
//! (and, inside `partition::run_chunks`, poisons result slots) instead of
//! unwinding with a structured [`CoreError`]. Invariants that really are
//! unreachable carry a `lint-allow(no-panic): <proof>` justification;
//! everything else returns an error. `debug_assert!` (stripped in
//! release) and `assert!` on caller-contract violations are outside this
//! rule's scope, as is all `#[cfg(test)]` code.

use super::flag;
use crate::lexer::TokKind;
use crate::source::{Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "no-panic";

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in ws.core_files() {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            // `.unwrap(` / `.expect(` — method-call position only, so
            // `unwrap_or`, `unwrap_or_else`, `expect_err` etc. (different
            // identifiers) and field names never match.
            if (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                flag(
                    &mut out,
                    file,
                    RULE,
                    t.line,
                    format!(
                        "`.{}()` in a core library path: return a structured `CoreError` instead, or justify the unreachable invariant with `lint-allow(no-panic): <proof>`",
                        t.text
                    ),
                );
            }
            // `panic!(` / `todo!(` / `unimplemented!(`.
            if (t.text == "panic" || t.text == "todo" || t.text == "unimplemented")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                flag(
                    &mut out,
                    file,
                    RULE,
                    t.line,
                    format!(
                        "`{}!` in a core library path: errors must flow through `CoreError`",
                        t.text
                    ),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn unwrap_expect_and_panic_are_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(x: Option<u64>) -> u64 {\n    let a = x.unwrap();\n    let b = x.expect(\"present\");\n    if a != b { panic!(\"mismatch\"); }\n    a\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn unwrap_or_family_is_not_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(x: Option<u64>) -> u64 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn debug_assert_and_assert_are_out_of_scope() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(n: usize) { debug_assert!(n < 64); assert!(n < 64, \"caller contract\"); }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn justified_expect_passes() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(x: Option<u64>) -> u64 {\n    // lint-allow(no-panic): x was populated two lines above for every branch\n    x.unwrap()\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn file_scope_allow_covers_static_exhibit_modules() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/paper.rs",
            "// lint-allow-file(no-panic): static paper examples, validated by construction\npub fn ex() { build().expect(\"valid\"); other().unwrap(); }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn tests_and_other_crates_are_out_of_scope() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/engine.rs",
                "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(); }\n}\n",
            ),
            ("crates/cli/src/lib.rs", "pub fn f() { x.unwrap(); }\n"),
            ("tests/pipeline.rs", "fn t() { x.unwrap(); }\n"),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn strings_and_comments_do_not_trip_the_rule() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "// .unwrap() would be wrong here\npub fn f() -> &'static str { \"do not panic!(now)\" }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
