//! The invariant-lint registry.
//!
//! Each lint is a named, individually-testable rule over the
//! [`Workspace`] token model. The registry is the single place future
//! engine PRs extend; `run_all` is what the `pscds-lint` binary and the
//! CI gate execute. Every rule honors the `lint-allow` grammar of
//! [`crate::source`]:
//!
//! | code | id | invariant |
//! |------|----|-----------|
//! | L1 | `engine-twins` | every `check_*`/`analyze_*`/`count_*` engine in `crates/core` has budgeted + parallel twins and an `engine_parity.rs` reference |
//! | L2 | `budget-bypass` | no `thread::spawn` / `Instant::now` / un-ticked `loop`/`while` outside `govern`/`partition` |
//! | L3 | `relaxed-ordering` | every `Ordering::Relaxed` carries a justification |
//! | L4 | `no-panic` | no `.unwrap()` / `.expect()` / `panic!` in `crates/core` library paths |
//! | L5 | `error-provenance` | `SearchSpaceTooLarge` carries size+cap, `BudgetExceeded` is built in `govern` or re-wrapped field-for-field |
//! | L6 | `obs-api` | pscds-obs stays clock-free; consumers use `pscds_obs::names` constants and never hand-build `Span`s |
//! | L7 | `source-provider` | engine code in `crates/core` fetches view extensions through `source::extension_view`/`SourceProvider`, never `.extension()` directly |
//! | L8 | `determinism` | no HashMap/HashSet iteration on paths feeding engine results or counter merges |
//! | L9 | `counter-coverage` | every `pscds_obs::names` constant is emitted from a library path; emissions use registry constants |
//! | L10 | `dead-twin` | every registered engine twin is transitively called from `tests/engine_parity.rs` |
//!
//! The allow-directive grammar check itself reports under the
//! pseudo-code **L0** (`allow-grammar`) so machine consumers see one
//! code space.

pub mod budget_bypass;
pub mod counter_coverage;
pub mod dead_twin;
pub mod determinism;
pub mod engine_twins;
pub mod error_provenance;
pub mod no_panic;
pub mod obs_api;
pub mod relaxed_ordering;
pub mod source_provider;

use crate::lexer::{TokKind, Token};
use crate::source::{check_allow_grammar, SourceFile, Violation, Workspace};

/// One registered lint rule.
pub struct LintRule {
    /// Stable rule id — the name used in `lint-allow(<id>)`.
    pub id: &'static str,
    /// Short code (`L1` … `L10`).
    pub code: &'static str,
    /// One-line summary for `pscds-lint --list`.
    pub summary: &'static str,
    /// Longer rationale for `pscds-lint --explain CODE`: what the rule
    /// proves, why the invariant matters, and how to fix or justify a
    /// finding.
    pub explain: &'static str,
    /// The rule implementation.
    pub run: fn(&Workspace) -> Vec<Violation>,
}

/// Pseudo-code under which malformed `lint-allow` directives report.
pub const ALLOW_GRAMMAR_CODE: &str = "L0";

/// Pseudo-rule id of the allow-directive grammar check.
pub const ALLOW_GRAMMAR_RULE: &str = "allow-grammar";

/// `--explain` text for the grammar pseudo-rule.
pub const ALLOW_GRAMMAR_EXPLAIN: &str = "Suppressions are part of the audit \
surface: `lint-allow(<rule>): <reason>` must name a rule and carry a \
non-empty justification, because an unexplained suppression is \
indistinguishable from a stale one. A malformed directive is reported \
under this code instead of being silently inert. File-wide scope uses \
`lint-allow-file(<rule>): <reason>`; inline directives cover their own \
line through the next code line.";

/// The registry, in rule-code order. **Future engine PRs register new
/// invariants here** (and nowhere else); the CI gate and the
/// `engine_parity` generated test both read this list.
#[must_use]
pub fn registry() -> Vec<LintRule> {
    vec![
        LintRule {
            id: engine_twins::RULE,
            code: "L1",
            summary: "core engines expose _budgeted/_parallel twins and an engine_parity.rs case",
            explain: "Every super-polynomial engine entry point (a bare-pub \
check_*/analyze_*/count_* fn in crates/core) must be interruptible and \
parallelizable: declare <name>_budgeted and <name>_parallel twins (or take \
&Budget / &ParallelConfig directly) and reference the base name from \
tests/engine_parity.rs. The twins carry the paper's anytime contract; the \
parity harness makes the serial/budgeted/parallel bit-identity executable. \
Exempt a thin wrapper with lint-allow(engine-twins) and a justification.",
            run: engine_twins::run,
        },
        LintRule {
            id: budget_bypass::RULE,
            code: "L2",
            summary: "loops reachable from budgeted entries tick; no thread::spawn / Instant::now in core",
            explain: "The cooperative Budget is the only sanctioned way for core \
engines to spend unbounded time. thread::spawn and Instant::now are banned \
outright in crates/core/src library paths (govern.rs and partition.rs, the \
governance layer itself, are exempt): ad-hoc threads dodge forked budgets \
and shared cancellation, ad-hoc clocks dodge deadline accounting. The loop \
obligation is interprocedural: a loop/while violates only if its function \
is reachable on the call graph from a budgeted entry point (a core fn named \
*_budgeted/*_parallel or taking Budget/ParallelConfig) and the loop neither \
ticks (tick/check/charge) nor syntactically calls a callee that transitively \
ticks. Reachability follows call and reference edges (over-approximate); \
discharge follows call edges only — a mentioned-but-never-invoked ticking fn \
proves nothing. Tightly-bounded loops justify with lint-allow(budget-bypass).",
            run: budget_bypass::run,
        },
        LintRule {
            id: relaxed_ordering::RULE,
            code: "L3",
            summary: "Ordering::Relaxed requires an inline justification",
            explain: "Every Ordering::Relaxed in the workspace must carry an \
inline justification comment arguing why the relaxation cannot reorder \
into an observable race — the interleave model checker covers the two \
shipped protocols, but a bare Relaxed elsewhere is an unreviewed memory- \
model claim. Say why it is safe, on the line, where the next reader looks.",
            run: relaxed_ordering::run,
        },
        LintRule {
            id: no_panic::RULE,
            code: "L4",
            summary: "no unwrap/expect/panic in core library paths (errors flow through CoreError)",
            explain: "crates/core library paths must not panic: .unwrap(), \
.expect() and panic!/unreachable!/todo! are flagged outside test regions. \
Engines degrade by returning CoreError (budget trips, oversize search \
spaces, faulted sources) — a panic in the ladder turns a recoverable \
degradation into an abort and breaks the resilient front end's contract. \
Provably-unreachable cases justify with lint-allow(no-panic) stating the \
invariant that guards them.",
            run: no_panic::run,
        },
        LintRule {
            id: error_provenance::RULE,
            code: "L5",
            summary: "SearchSpaceTooLarge/BudgetExceeded constructions carry size+cap provenance",
            explain: "\"The engine gave up\" errors must be actionable: every \
SearchSpaceTooLarge construction carries the offending size and the cap it \
exceeded, and BudgetExceeded is built inside govern (or re-wrapped field- \
for-field) so phase/steps/deadline provenance survives the climb up the \
ladder. An empty give-up error costs the caller the exact information they \
need to re-run with a bigger budget.",
            run: error_provenance::run,
        },
        LintRule {
            id: obs_api::RULE,
            code: "L6",
            summary: "pscds-obs is clock-free; metric names come from pscds_obs::names, spans from ObsSession",
            explain: "Two invariants at the obs boundary: (1) no Instant::now / \
SystemTime::now inside crates/obs — timestamps are injected via \
Budget::elapsed_ns so traces stay coherent with budget accounting; (2) in \
consumer trees, counter_add/gauge_max take pscds_obs::names constants, \
never string literals, and Span values come from ObsSession::span_open, \
never struct literals — both keep the JSONL schema and the per-thread \
aggregation from drifting per call site.",
            run: obs_api::run,
        },
        LintRule {
            id: source_provider::RULE,
            code: "L7",
            summary: "core engines fetch extensions via source::extension_view / SourceProvider, never .extension()",
            explain: "Engine code in crates/core reaches view extensions \
through source::extension_view / the SourceProvider trait, never \
.extension() directly: the provider layer is where fault injection, retry/ \
backoff, circuit breaking and partial-availability accounting live. A \
direct fetch silently opts out of the failure model the resilient ladder \
is built on.",
            run: source_provider::run,
        },
        LintRule {
            id: determinism::RULE,
            code: "L8",
            summary: "no HashMap/HashSet iteration on paths feeding engine results or counter merges",
            explain: "Engine outputs and obs counters are bit-identity \
contracts (CI diffs totals across thread counts; the parity harness diffs \
twin outputs), and HashMap/HashSet iteration order varies per process. \
for-loops over hash-typed values in crates/core/src and crates/obs/src are \
flagged — hash-typedness is tracked through declarations, constructions, \
and one hop of let-binding taint (e.g. a map moved out of a map-of-maps). \
Fix by iterating a sorted snapshot (collect + sort, or BTreeMap); loops \
that are genuinely order-insensitive justify with lint-allow(determinism).",
            run: determinism::run,
        },
        LintRule {
            id: counter_coverage::RULE,
            code: "L9",
            summary: "every pscds_obs::names constant is emitted from a library path; emissions use constants",
            explain: "The metric registry and the emission sites must cover \
each other. A names.rs constant no library path ever passes to counter_add \
/gauge_max is advertised-but-unwired schema (the bench validator cannot \
tell \"always zero\" from \"never emitted\") and is flagged at its \
declaration; emissions in consumer trees that name no registry constant \
(names smuggled through locals or parameters) are flagged at the call. \
Test-only emissions do not count as coverage.",
            run: counter_coverage::run,
        },
        LintRule {
            id: dead_twin::RULE,
            code: "L10",
            summary: "every registered engine twin is transitively called from tests/engine_parity.rs",
            explain: "L1 makes twins exist and makes the harness mention the \
base name; L10 closes the gap by requiring each <base>_budgeted / \
<base>_parallel twin to be transitively *called* from \
tests/engine_parity.rs on the workspace call graph (call and reference \
edges — a twin handed to a table-driven runner counts). A twin the parity \
harness cannot reach is an untested bit-identity claim. Add a differential \
case, or justify with lint-allow(dead-twin) naming the covering harness.",
            run: dead_twin::run,
        },
    ]
}

/// The stable diagnostic code for a rule id (including the grammar
/// pseudo-rule), or `None` for an unregistered id.
#[must_use]
pub fn code_for(rule: &str) -> Option<&'static str> {
    if rule == ALLOW_GRAMMAR_RULE {
        return Some(ALLOW_GRAMMAR_CODE);
    }
    registry()
        .into_iter()
        .find(|r| r.id == rule)
        .map(|r| r.code)
}

/// The `--explain` entry for a stable code: `(rule id, text)`.
#[must_use]
pub fn explain_for(code: &str) -> Option<(&'static str, &'static str)> {
    if code == ALLOW_GRAMMAR_CODE {
        return Some((ALLOW_GRAMMAR_RULE, ALLOW_GRAMMAR_EXPLAIN));
    }
    registry()
        .into_iter()
        .find(|r| r.code == code)
        .map(|r| (r.id, r.explain))
}

/// The suppression census of a workspace — what `--format json` and the
/// CI baseline diff report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuppressionStats {
    /// Total `lint-allow`/`lint-allow-file` directives.
    pub directives: u64,
    /// How many of those are file-scoped.
    pub file_scope: u64,
    /// Files carrying at least one directive.
    pub files: u64,
    /// Directive counts per rule id, sorted by rule id.
    pub by_rule: Vec<(String, u64)>,
}

/// Counts every parsed allow directive in the workspace. The parsed
/// directives are the authority — prose mentions in doc comments are
/// not directives and are not counted.
#[must_use]
pub fn suppression_stats(ws: &Workspace) -> SuppressionStats {
    let mut directives = 0u64;
    let mut file_scope = 0u64;
    let mut files = 0u64;
    let mut by_rule: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for f in &ws.files {
        if !f.allows.is_empty() {
            files += 1;
        }
        for a in &f.allows {
            directives += 1;
            if a.file_scope {
                file_scope += 1;
            }
            *by_rule.entry(a.rule.clone()).or_insert(0) += 1;
        }
    }
    SuppressionStats {
        directives,
        file_scope,
        files,
        by_rule: by_rule.into_iter().collect(),
    }
}

/// Runs every registered rule plus the allow-directive grammar check,
/// returning all violations sorted by file and line.
#[must_use]
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let mut out = check_allow_grammar(ws);
    for rule in registry() {
        out.extend((rule.run)(ws));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// A `fn` declaration discovered by [`fn_decls`].
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// The function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// `true` for unrestricted `pub` visibility.
    pub is_pub: bool,
    /// Token index range of the parameter list, *inside* the parens.
    pub params: (usize, usize),
    /// Token index range of the body, *inside* the braces (`None` for
    /// block-less declarations).
    pub body: Option<(usize, usize)>,
}

/// Scans a file for `fn` declarations (library and test code alike —
/// callers filter with [`SourceFile::is_test_line`]).
#[must_use]
pub fn fn_decls(file: &SourceFile) -> Vec<FnDecl> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let is_pub = visibility_is_bare_pub(tokens, i);
            // Skip generics to the parameter list's `(`.
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('<') {
                    angle += 1;
                } else if tokens[j].is_punct('>') {
                    angle -= 1;
                } else if tokens[j].is_punct('(') && angle <= 0 {
                    break;
                }
                j += 1;
            }
            let params_start = j + 1;
            let mut depth = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let params_end = j;
            // Body: the first `{` at bracket depth 0 before a `;`.
            let mut k = j + 1;
            let mut body = None;
            let mut d = 0i32;
            while k < tokens.len() {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    d -= 1;
                } else if t.is_punct(';') && d == 0 {
                    break;
                } else if t.is_punct('{') && d == 0 {
                    let end = crate::source::balanced_block_end(tokens, k);
                    body = Some((k + 1, end));
                    break;
                }
                k += 1;
            }
            out.push(FnDecl {
                name: name_tok.text.clone(),
                line: tokens[i].line,
                is_pub,
                params: (params_start, params_end),
                body,
            });
        }
        i += 1;
    }
    out
}

/// Walks back from the `fn` keyword over modifiers (`const`, `async`,
/// `unsafe`, `extern "…"`) and reports whether the declaration is bare
/// `pub` (restricted `pub(crate)` etc. does not count — those are not
/// public API).
fn visibility_is_bare_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
        {
            continue;
        }
        if t.kind == TokKind::Literal {
            continue; // the ABI string of `extern "C"`
        }
        if t.is_ident("pub") {
            return !tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        }
        return false;
    }
    false
}

/// Token indices `i` where `a::b` occurs (`a` at `i`, `b` at `i+3`).
#[must_use]
pub fn find_path2(file: &SourceFile, a: &str, b: &str) -> Vec<usize> {
    let t = &file.tokens;
    (0..t.len().saturating_sub(3))
        .filter(|&i| {
            t[i].is_ident(a)
                && t[i + 1].is_punct(':')
                && t[i + 2].is_punct(':')
                && t[i + 3].is_ident(b)
        })
        .collect()
}

/// Pushes a violation unless a `lint-allow(rule)` directive covers it or
/// the line is inside a `#[cfg(test)]` region.
pub(crate) fn flag(
    out: &mut Vec<Violation>,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if file.is_test_line(line) || file.allows_rule(rule, line) {
        return;
    }
    out.push(Violation {
        rule,
        file: file.path.clone(),
        line,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn registry_has_ten_rules_with_distinct_ids_codes_and_explanations() {
        let reg = registry();
        assert_eq!(reg.len(), 10);
        let mut ids: Vec<&str> = reg.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "rule ids must be distinct");
        let codes: Vec<&str> = registry().iter().map(|r| r.code).collect();
        assert_eq!(
            codes,
            ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10"]
        );
        for r in &reg {
            assert!(
                r.explain.len() > 100,
                "{}: --explain text must actually explain",
                r.code
            );
        }
    }

    #[test]
    fn code_and_explain_lookups_cover_the_grammar_pseudo_rule() {
        assert_eq!(code_for(ALLOW_GRAMMAR_RULE), Some("L0"));
        assert_eq!(code_for("determinism"), Some("L8"));
        assert_eq!(code_for("no-such-rule"), None);
        assert_eq!(
            explain_for("L0").map(|(id, _)| id),
            Some(ALLOW_GRAMMAR_RULE)
        );
        assert_eq!(explain_for("L10").map(|(id, _)| id), Some("dead-twin"));
        assert_eq!(explain_for("L99"), None);
    }

    #[test]
    fn suppression_stats_count_parsed_directives_only() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/a.rs",
                "/// Prose about `lint-allow(no-panic)` is not a directive.\n\
                 // lint-allow(no-panic): guarded by the cap above\n\
                 pub fn f() {}\n\
                 // lint-allow(determinism): order-insensitive fold\n\
                 pub fn g() {}\n",
            ),
            (
                "crates/core/src/b.rs",
                "// lint-allow-file(no-panic): static exhibit module\npub fn h() {}\n",
            ),
            ("crates/core/src/c.rs", "pub fn clean() {}\n"),
        ]);
        let s = suppression_stats(&ws);
        assert_eq!(s.directives, 3);
        assert_eq!(s.file_scope, 1);
        assert_eq!(s.files, 2);
        assert_eq!(
            s.by_rule,
            vec![("determinism".to_owned(), 1), ("no-panic".to_owned(), 2)]
        );
    }

    #[test]
    fn fn_decl_scanner_reads_visibility_params_and_body() {
        let f = crate::source::SourceFile::from_source(
            "crates/core/src/x.rs",
            "pub fn count_things(x: u64, budget: &Budget) -> u64 { x }\n\
             fn helper() {}\n\
             pub(crate) fn internal() {}\n\
             pub fn generic<T: Clone>(v: Vec<T>) -> usize { v.len() }\n",
        );
        let decls = fn_decls(&f);
        assert_eq!(decls.len(), 4);
        assert!(decls[0].is_pub);
        assert_eq!(decls[0].name, "count_things");
        let (ps, pe) = decls[0].params;
        assert!(f.tokens[ps..pe].iter().any(|t| t.is_ident("Budget")));
        assert!(!decls[1].is_pub);
        assert!(!decls[2].is_pub, "pub(crate) is not bare pub");
        assert!(decls[3].is_pub);
        assert_eq!(decls[3].name, "generic");
    }

    #[test]
    fn run_all_is_sorted_and_includes_grammar_check() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/z.rs",
            "// lint-allow(no-panic)\npub fn f() {}\n",
        )]);
        let v = run_all(&ws);
        assert!(v.iter().any(|x| x.rule == "allow-grammar"));
    }
}
