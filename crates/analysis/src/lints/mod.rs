//! The invariant-lint registry.
//!
//! Each lint is a named, individually-testable rule over the
//! [`Workspace`] token model. The registry is the single place future
//! engine PRs extend; `run_all` is what the `pscds-lint` binary and the
//! CI gate execute. Every rule honors the `lint-allow` grammar of
//! [`crate::source`]:
//!
//! | code | id | invariant |
//! |------|----|-----------|
//! | L1 | `engine-twins` | every `check_*`/`analyze_*`/`count_*` engine in `crates/core` has budgeted + parallel twins and an `engine_parity.rs` reference |
//! | L2 | `budget-bypass` | no `thread::spawn` / `Instant::now` / un-ticked `loop`/`while` outside `govern`/`partition` |
//! | L3 | `relaxed-ordering` | every `Ordering::Relaxed` carries a justification |
//! | L4 | `no-panic` | no `.unwrap()` / `.expect()` / `panic!` in `crates/core` library paths |
//! | L5 | `error-provenance` | `SearchSpaceTooLarge` carries size+cap, `BudgetExceeded` is built in `govern` or re-wrapped field-for-field |
//! | L6 | `obs-api` | pscds-obs stays clock-free; consumers use `pscds_obs::names` constants and never hand-build `Span`s |
//! | L7 | `source-provider` | engine code in `crates/core` fetches view extensions through `source::extension_view`/`SourceProvider`, never `.extension()` directly |

pub mod budget_bypass;
pub mod engine_twins;
pub mod error_provenance;
pub mod no_panic;
pub mod obs_api;
pub mod relaxed_ordering;
pub mod source_provider;

use crate::lexer::{TokKind, Token};
use crate::source::{check_allow_grammar, SourceFile, Violation, Workspace};

/// One registered lint rule.
pub struct LintRule {
    /// Stable rule id — the name used in `lint-allow(<id>)`.
    pub id: &'static str,
    /// Short code (`L1` … `L7`).
    pub code: &'static str,
    /// One-line summary for `pscds-lint --list`.
    pub summary: &'static str,
    /// The rule implementation.
    pub run: fn(&Workspace) -> Vec<Violation>,
}

/// The registry, in rule-code order. **Future engine PRs register new
/// invariants here** (and nowhere else); the CI gate and the
/// `engine_parity` generated test both read this list.
#[must_use]
pub fn registry() -> Vec<LintRule> {
    vec![
        LintRule {
            id: engine_twins::RULE,
            code: "L1",
            summary: "core engines expose _budgeted/_parallel twins and an engine_parity.rs case",
            run: engine_twins::run,
        },
        LintRule {
            id: budget_bypass::RULE,
            code: "L2",
            summary: "no thread::spawn / Instant::now / un-ticked loop outside govern/partition",
            run: budget_bypass::run,
        },
        LintRule {
            id: relaxed_ordering::RULE,
            code: "L3",
            summary: "Ordering::Relaxed requires an inline justification",
            run: relaxed_ordering::run,
        },
        LintRule {
            id: no_panic::RULE,
            code: "L4",
            summary: "no unwrap/expect/panic in core library paths (errors flow through CoreError)",
            run: no_panic::run,
        },
        LintRule {
            id: error_provenance::RULE,
            code: "L5",
            summary: "SearchSpaceTooLarge/BudgetExceeded constructions carry size+cap provenance",
            run: error_provenance::run,
        },
        LintRule {
            id: obs_api::RULE,
            code: "L6",
            summary: "pscds-obs is clock-free; metric names come from pscds_obs::names, spans from ObsSession",
            run: obs_api::run,
        },
        LintRule {
            id: source_provider::RULE,
            code: "L7",
            summary: "core engines fetch extensions via source::extension_view / SourceProvider, never .extension()",
            run: source_provider::run,
        },
    ]
}

/// Runs every registered rule plus the allow-directive grammar check,
/// returning all violations sorted by file and line.
#[must_use]
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let mut out = check_allow_grammar(ws);
    for rule in registry() {
        out.extend((rule.run)(ws));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// A `fn` declaration discovered by [`fn_decls`].
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// The function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// `true` for unrestricted `pub` visibility.
    pub is_pub: bool,
    /// Token index range of the parameter list, *inside* the parens.
    pub params: (usize, usize),
    /// Token index range of the body, *inside* the braces (`None` for
    /// block-less declarations).
    pub body: Option<(usize, usize)>,
}

/// Scans a file for `fn` declarations (library and test code alike —
/// callers filter with [`SourceFile::is_test_line`]).
#[must_use]
pub fn fn_decls(file: &SourceFile) -> Vec<FnDecl> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let is_pub = visibility_is_bare_pub(tokens, i);
            // Skip generics to the parameter list's `(`.
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('<') {
                    angle += 1;
                } else if tokens[j].is_punct('>') {
                    angle -= 1;
                } else if tokens[j].is_punct('(') && angle <= 0 {
                    break;
                }
                j += 1;
            }
            let params_start = j + 1;
            let mut depth = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let params_end = j;
            // Body: the first `{` at bracket depth 0 before a `;`.
            let mut k = j + 1;
            let mut body = None;
            let mut d = 0i32;
            while k < tokens.len() {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    d -= 1;
                } else if t.is_punct(';') && d == 0 {
                    break;
                } else if t.is_punct('{') && d == 0 {
                    let end = crate::source::balanced_block_end(tokens, k);
                    body = Some((k + 1, end));
                    break;
                }
                k += 1;
            }
            out.push(FnDecl {
                name: name_tok.text.clone(),
                line: tokens[i].line,
                is_pub,
                params: (params_start, params_end),
                body,
            });
        }
        i += 1;
    }
    out
}

/// Walks back from the `fn` keyword over modifiers (`const`, `async`,
/// `unsafe`, `extern "…"`) and reports whether the declaration is bare
/// `pub` (restricted `pub(crate)` etc. does not count — those are not
/// public API).
fn visibility_is_bare_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
        {
            continue;
        }
        if t.kind == TokKind::Literal {
            continue; // the ABI string of `extern "C"`
        }
        if t.is_ident("pub") {
            return !tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        }
        return false;
    }
    false
}

/// Token indices `i` where `a::b` occurs (`a` at `i`, `b` at `i+3`).
#[must_use]
pub fn find_path2(file: &SourceFile, a: &str, b: &str) -> Vec<usize> {
    let t = &file.tokens;
    (0..t.len().saturating_sub(3))
        .filter(|&i| {
            t[i].is_ident(a)
                && t[i + 1].is_punct(':')
                && t[i + 2].is_punct(':')
                && t[i + 3].is_ident(b)
        })
        .collect()
}

/// Pushes a violation unless a `lint-allow(rule)` directive covers it or
/// the line is inside a `#[cfg(test)]` region.
pub(crate) fn flag(
    out: &mut Vec<Violation>,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if file.is_test_line(line) || file.allows_rule(rule, line) {
        return;
    }
    out.push(Violation {
        rule,
        file: file.path.clone(),
        line,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn registry_has_seven_rules_with_distinct_ids() {
        let reg = registry();
        assert_eq!(reg.len(), 7);
        let mut ids: Vec<&str> = reg.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 7, "rule ids must be distinct");
        let codes: Vec<&str> = registry().iter().map(|r| r.code).collect();
        assert_eq!(codes, ["L1", "L2", "L3", "L4", "L5", "L6", "L7"]);
    }

    #[test]
    fn fn_decl_scanner_reads_visibility_params_and_body() {
        let f = crate::source::SourceFile::from_source(
            "crates/core/src/x.rs",
            "pub fn count_things(x: u64, budget: &Budget) -> u64 { x }\n\
             fn helper() {}\n\
             pub(crate) fn internal() {}\n\
             pub fn generic<T: Clone>(v: Vec<T>) -> usize { v.len() }\n",
        );
        let decls = fn_decls(&f);
        assert_eq!(decls.len(), 4);
        assert!(decls[0].is_pub);
        assert_eq!(decls[0].name, "count_things");
        let (ps, pe) = decls[0].params;
        assert!(f.tokens[ps..pe].iter().any(|t| t.is_ident("Budget")));
        assert!(!decls[1].is_pub);
        assert!(!decls[2].is_pub, "pub(crate) is not bare pub");
        assert!(decls[3].is_pub);
        assert_eq!(decls[3].name, "generic");
    }

    #[test]
    fn run_all_is_sorted_and_includes_grammar_check() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/z.rs",
            "// lint-allow(no-panic)\npub fn f() {}\n",
        )]);
        let v = run_all(&ws);
        assert!(v.iter().any(|x| x.rule == "allow-grammar"));
    }
}
