//! L2 `budget-bypass`: the cooperative [`Budget`] is the only sanctioned
//! way for core engines to spend unbounded time. Three bypass shapes are
//! flagged in `crates/core/src` library paths (the `govern.rs` and
//! `partition.rs` modules — the budget and the parallel driver
//! themselves — are the allowlisted implementation layer):
//!
//! * `thread::spawn` — ad-hoc threading dodges the forked-budget /
//!   shared-cancellation discipline of `partition::run_chunks`;
//! * `Instant::now` — ad-hoc clocks dodge the deadline accounting of
//!   `Budget` (engines must not invent their own timeouts);
//! * a `loop` or `while` whose body never calls `tick` / `check` /
//!   `charge` and is not nested inside a loop that does — unbounded
//!   iteration invisible to the budget. Tightly-bounded loops carry a
//!   `lint-allow(budget-bypass)` justification instead.

use super::{find_path2, flag};
use crate::source::{balanced_block_end, SourceFile, Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "budget-bypass";

/// Modules exempt from this rule (the governance layer itself).
pub const EXEMPT_FILES: [&str; 2] = ["govern.rs", "partition.rs"];

/// The calls that make a loop budget-visible.
const BUDGET_CALLS: [&str; 3] = ["tick", "check", "charge"];

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in ws.core_files() {
        if EXEMPT_FILES.contains(&file.file_name()) {
            continue;
        }
        for i in find_path2(file, "thread", "spawn") {
            flag(
                &mut out,
                file,
                RULE,
                file.tokens[i].line,
                "`thread::spawn` in a core library path: thread through `partition::run_chunks` so workers inherit forked budgets and the shared cancel flag".to_owned(),
            );
        }
        for i in find_path2(file, "Instant", "now") {
            flag(
                &mut out,
                file,
                RULE,
                file.tokens[i].line,
                "`Instant::now` in a core library path: wall-clock limits must flow through `Budget` deadlines, not ad-hoc clocks".to_owned(),
            );
        }
        check_loops(file, &mut out);
    }
    out
}

/// A discovered loop: token range of its body and whether the body calls
/// the budget.
struct Loop {
    line: u32,
    body: (usize, usize),
    ticks: bool,
}

fn check_loops(file: &SourceFile, out: &mut Vec<Violation>) {
    let tokens = &file.tokens;
    let mut loops: Vec<Loop> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let body_open = if t.is_ident("loop") {
            tokens
                .get(i + 1)
                .is_some_and(|n| n.is_punct('{'))
                .then(|| i + 1)
        } else if t.is_ident("while") {
            // The body is the first `{` at paren/bracket depth 0 after
            // the condition.
            let mut j = i + 1;
            let mut depth = 0i32;
            loop {
                match tokens.get(j) {
                    None => break None,
                    Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
                    Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                    Some(t) if t.is_punct('{') && depth == 0 => break Some(j),
                    Some(t) if t.is_punct(';') && depth == 0 => break None,
                    Some(_) => {}
                }
                j += 1;
            }
        } else {
            None
        };
        if let Some(open) = body_open {
            let end = balanced_block_end(tokens, open);
            let ticks = tokens[open + 1..end]
                .iter()
                .any(|t| BUDGET_CALLS.iter().any(|c| t.is_ident(c)));
            loops.push(Loop {
                line: t.line,
                body: (open + 1, end),
                ticks,
            });
        }
        i += 1;
    }
    for (idx, l) in loops.iter().enumerate() {
        if l.ticks {
            continue;
        }
        // Nested inside a loop that ticks? Then the budget observes every
        // ancestor iteration and the inner (bounded-advance) loop rides
        // along.
        let covered = loops.iter().enumerate().any(|(j, outer)| {
            j != idx && outer.ticks && outer.body.0 <= l.body.0 && l.body.1 <= outer.body.1
        });
        if !covered {
            flag(
                out,
                file,
                RULE,
                l.line,
                "loop without a `tick`/`check`/`charge` call: every hot loop must be visible to the cooperative `Budget` (or carry a `lint-allow(budget-bypass)` justification for tightly-bounded iteration)".to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn spawn_and_instant_are_flagged_outside_exempt_modules() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f() {\n    let h = std::thread::spawn(|| 1);\n    let t = Instant::now();\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("thread::spawn"));
        assert!(v[1].message.contains("Instant::now"));
    }

    #[test]
    fn govern_and_partition_are_exempt() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/govern.rs",
                "pub fn f() { let t = Instant::now(); }\n",
            ),
            (
                "crates/core/src/partition.rs",
                "pub fn g() { loop { let x = 1; break; } }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn unticked_loop_is_flagged_and_ticked_loop_passes() {
        let bad = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f() { loop { work(); } }\n",
        )]);
        assert_eq!(run(&bad).len(), 1);

        let good = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(b: &Budget) -> Result<(), E> { loop { b.tick(\"f\")?; work(); } }\n",
        )]);
        assert_eq!(run(&good), vec![]);
    }

    #[test]
    fn while_loops_are_checked_too() {
        let bad = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(mut v: u64) { while v < (1 << 31) { v = next(v); } }\n",
        )]);
        let v = run(&bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("tick"));
    }

    #[test]
    fn inner_loop_nested_in_ticking_loop_is_covered() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(b: &Budget) -> Result<(), E> {\n\
             loop {\n\
                 b.tick(\"f\")?;\n\
                 let advanced = loop { if done() { break true; } };\n\
                 if !advanced { return Ok(()); }\n\
             }\n\
             }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn allow_directive_suppresses_with_justification() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(mut v: u64) {\n    // lint-allow(budget-bypass): Gosper step, bounded by 32 iterations\n    while v > 0 { v >>= 1; }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn test_regions_are_skipped() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { loop { std::thread::spawn(|| 1); } }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
