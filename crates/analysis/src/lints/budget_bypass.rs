//! L2 `budget-bypass`: the cooperative [`Budget`] is the only sanctioned
//! way for core engines to spend unbounded time. Two bypass shapes are
//! flagged unconditionally in `crates/core/src` library paths (the
//! `govern.rs` and `partition.rs` modules — the budget and the parallel
//! driver themselves — are the allowlisted implementation layer):
//!
//! * `thread::spawn` — ad-hoc threading dodges the forked-budget /
//!   shared-cancellation discipline of `partition::run_chunks`;
//! * `Instant::now` — ad-hoc clocks dodge the deadline accounting of
//!   `Budget` (engines must not invent their own timeouts).
//!
//! The loop obligation is **interprocedural** (this is the rule the
//! call graph was built for): a `loop`/`while` is a violation only if
//!
//! 1. its function is *reachable from a budgeted entry point* — a core
//!    function named `*_budgeted`/`*_parallel` or taking a [`Budget`] /
//!    `ParallelConfig` parameter (reachability follows call **and**
//!    reference edges, so function values passed to drivers count); and
//! 2. the loop body neither calls `tick`/`check`/`charge` directly,
//!    nor (syntactically) calls a callee that **transitively ticks**,
//!    nor sits inside an enclosing loop that does either.
//!
//! Loops in code no budgeted entry point can reach — catalog parsing,
//! constructors, formatting — are *not* the budget's business, and the
//! old token-level heuristic's `lint-allow(budget-bypass)` suppressions
//! for them are retired. The evidence model (what reachability can and
//! cannot prove, and in which direction each approximation errs) is
//! DESIGN.md §3.15.

use super::flag;
use crate::callgraph::{CallGraph, EdgeFilter};
use crate::items::CallKind;
use crate::source::{balanced_block_end, SourceFile, Violation, Workspace};
use crate::symbols::{FnId, SymbolTable};

/// Rule id for `lint-allow`.
pub const RULE: &str = "budget-bypass";

/// Modules exempt from this rule (the governance layer itself).
pub const EXEMPT_FILES: [&str; 2] = ["govern.rs", "partition.rs"];

/// The calls that make a loop budget-visible.
const BUDGET_CALLS: [&str; 3] = ["tick", "check", "charge"];

/// `true` iff the file is a core library file this rule scans.
fn in_scope(file: &SourceFile) -> bool {
    file.under("crates/core/src/") && !EXEMPT_FILES.contains(&file.file_name())
}

/// Budgeted entry points: core functions whose name or signature makes
/// them part of the interruptible surface.
fn budgeted_entries(table: &SymbolTable<'_>) -> Vec<FnId> {
    let mut out = Vec::new();
    for (id, sym) in table.fns.iter().enumerate() {
        let file = table.file_of(id);
        if !file.under("crates/core/src/") || file.is_test_line(sym.item.line) {
            continue;
        }
        let named = sym.item.name.ends_with("_budgeted") || sym.item.name.ends_with("_parallel");
        let (ps, pe) = sym.item.params;
        let by_param = file.tokens[ps..pe.min(file.tokens.len())]
            .iter()
            .any(|t| t.is_ident("Budget") || t.is_ident("ParallelConfig"));
        if named || by_param {
            out.push(id);
        }
    }
    out
}

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    // Token-level bans, unconditional in scope.
    for file in ws.core_files() {
        if !in_scope(file) {
            continue;
        }
        for i in super::find_path2(file, "thread", "spawn") {
            flag(
                &mut out,
                file,
                RULE,
                file.tokens[i].line,
                "`thread::spawn` in a core library path: thread through `partition::run_chunks` so workers inherit forked budgets and the shared cancel flag".to_owned(),
            );
        }
        for i in super::find_path2(file, "Instant", "now") {
            flag(
                &mut out,
                file,
                RULE,
                file.tokens[i].line,
                "`Instant::now` in a core library path: wall-clock limits must flow through `Budget` deadlines, not ad-hoc clocks".to_owned(),
            );
        }
    }

    // Interprocedural loop obligation.
    let table = SymbolTable::build(ws);
    let graph = CallGraph::build(&table);
    let entries = budgeted_entries(&table);
    let reachable = graph.reachable_from(&entries, EdgeFilter::CallsAndRefs);
    let ticks = ticking_fns(&table, &graph);

    for (id, sym) in table.fns.iter().enumerate() {
        if !reachable[id] {
            continue;
        }
        let file = table.file_of(id);
        if !in_scope(file) || file.is_test_line(sym.item.line) {
            continue;
        }
        let Some(body) = sym.item.body else { continue };
        check_loops(&table, &ticks, id, body, file, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Per-function fixpoint: `true` for functions whose body discharges
/// the budget obligation (direct tick, or a syntactic call to a
/// discharging callee).
fn ticking_fns(table: &SymbolTable<'_>, graph: &CallGraph) -> Vec<bool> {
    let base: Vec<bool> = table
        .fns
        .iter()
        .map(|sym| {
            sym.calls.iter().any(|c| {
                matches!(c.site.kind, CallKind::Call | CallKind::Method)
                    && BUDGET_CALLS.contains(&c.site.name.as_str())
            })
        })
        .collect();
    graph.propagate_up(&base)
}

/// A discovered loop inside one function body.
struct Loop {
    line: u32,
    body: (usize, usize),
    discharges: bool,
}

fn check_loops(
    table: &SymbolTable<'_>,
    ticks: &[bool],
    id: FnId,
    body: (usize, usize),
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    let tokens = &file.tokens;
    let sym = &table.fns[id];
    let mut loops: Vec<Loop> = Vec::new();
    let mut i = body.0;
    while i < body.1.min(tokens.len()) {
        let t = &tokens[i];
        let body_open = if t.is_ident("loop") {
            tokens
                .get(i + 1)
                .is_some_and(|n| n.is_punct('{'))
                .then_some(i + 1)
        } else if t.is_ident("while") {
            let mut j = i + 1;
            let mut depth = 0i32;
            loop {
                match tokens.get(j) {
                    None => break None,
                    Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
                    Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                    Some(t) if t.is_punct('{') && depth == 0 => break Some(j),
                    Some(t) if t.is_punct(';') && depth == 0 => break None,
                    Some(_) => {}
                }
                j += 1;
            }
        } else {
            None
        };
        if let Some(open) = body_open {
            let end = balanced_block_end(tokens, open);
            loops.push(Loop {
                line: t.line,
                body: (open + 1, end),
                discharges: loop_discharges(sym, ticks, tokens, (open + 1, end)),
            });
        }
        i += 1;
    }
    for (idx, l) in loops.iter().enumerate() {
        if l.discharges {
            continue;
        }
        let covered = loops.iter().enumerate().any(|(j, outer)| {
            j != idx && outer.discharges && outer.body.0 <= l.body.0 && l.body.1 <= outer.body.1
        });
        if !covered {
            flag(
                out,
                file,
                RULE,
                l.line,
                format!(
                    "loop reachable from a budgeted entry point neither ticks nor calls a ticking callee: make the iteration visible to the cooperative `Budget` (`tick`/`check`/`charge`, directly or in a callee), or justify tightly-bounded iteration with `lint-allow({RULE})`"
                ),
            );
        }
    }
}

/// `true` iff the loop body ticks directly or syntactically calls a
/// callee that transitively ticks.
fn loop_discharges(
    sym: &crate::symbols::FnSymbol,
    ticks: &[bool],
    tokens: &[crate::lexer::Token],
    body: (usize, usize),
) -> bool {
    if tokens[body.0..body.1.min(tokens.len())]
        .iter()
        .any(|t| BUDGET_CALLS.iter().any(|c| t.is_ident(c)))
    {
        return true;
    }
    // Call sites were resolved per function; narrow to the loop's token
    // range by line span (token indices are not kept per call site).
    let first_line = tokens.get(body.0).map_or(0, |t| t.line);
    let last_line = tokens
        .get(body.1.saturating_sub(1))
        .map_or(u32::MAX, |t| t.line);
    sym.calls.iter().any(|c| {
        matches!(c.site.kind, CallKind::Call | CallKind::Method)
            && c.site.line >= first_line
            && c.site.line <= last_line
            && c.targets.iter().any(|&t| ticks[t])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn spawn_and_instant_are_flagged_outside_exempt_modules() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f() {\n    let h = std::thread::spawn(|| 1);\n    let t = Instant::now();\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("thread::spawn"));
        assert!(v[1].message.contains("Instant::now"));
    }

    #[test]
    fn govern_and_partition_are_exempt() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/govern.rs",
                "pub fn f() { let t = Instant::now(); }\n",
            ),
            (
                "crates/core/src/partition.rs",
                "pub fn run_chunks(b: &Budget) { loop { let x = 1; break; } }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn unticked_loop_in_budgeted_fn_is_flagged_and_ticked_passes() {
        let bad = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_x_budgeted(n: u64) -> u64 { loop { work(); } }\n",
        )]);
        assert_eq!(run(&bad).len(), 1);

        let good = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_x_budgeted(b: &Budget) -> Result<(), E> { loop { b.tick(\"f\")?; work(); } }\n",
        )]);
        assert_eq!(run(&good), vec![]);
    }

    #[test]
    fn unreachable_loops_are_not_the_budgets_business() {
        // The parsing helper is never called from a budgeted entry
        // point: under the old token heuristic this needed a
        // lint-allow, under reachability it is simply out of scope.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/faults.rs",
            "pub fn parse_plan(s: &str) -> Plan {\n    let mut i = 0;\n    while i < s.len() { i += 1; }\n    Plan\n}\n\
             pub fn count_y_budgeted(b: &Budget) -> Result<(), E> { b.tick(\"y\")?; Ok(()) }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn loops_in_transitive_callees_of_budgeted_entries_are_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_z_budgeted(b: &Budget) -> u64 { helper() }\n\
             fn helper() -> u64 { let mut v = 1u64; while v < 9 { v = step(v); } v }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("reachable from a budgeted entry"));
    }

    #[test]
    fn calling_a_ticking_callee_discharges_the_loop() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_w_budgeted(b: &Budget) -> u64 {\n\
                 let mut acc = 0;\n\
                 loop { acc += ticked_step(b); if acc > 9 { break; } }\n\
                 acc\n\
             }\n\
             fn ticked_step(b: &Budget) -> u64 { b.tick(\"step\").unwrap_or(0); 1 }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn a_bare_mention_of_a_ticking_fn_does_not_discharge() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_v_budgeted(b: &Budget) -> u64 {\n\
                 loop { let table = [ticked_step]; work(); }\n\
             }\n\
             fn ticked_step(b: &Budget) { b.tick(\"step\"); }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "mention without call must not discharge: {v:?}");
    }

    #[test]
    fn ref_edges_extend_entry_reachability() {
        // The worker is only reachable through a function value handed
        // to a driver — reachability must still see its loop.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_u_parallel(c: &ParallelConfig) { drive(worker); }\n\
             fn drive(f: fn() -> u64) -> u64 { f() }\n\
             fn worker() -> u64 { let mut v = 0; while v < 9 { v += 1; } v }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn inner_loop_nested_in_discharging_loop_is_covered() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn check_q_budgeted(b: &Budget) -> Result<(), E> {\n\
             loop {\n\
                 b.tick(\"f\")?;\n\
                 let advanced = loop { if done() { break true; } };\n\
                 if !advanced { return Ok(()); }\n\
             }\n\
             }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn allow_directive_suppresses_with_justification() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn count_t_budgeted(mut v: u64, b: &Budget) -> u64 {\n    // lint-allow(budget-bypass): Gosper step, bounded by 32 iterations\n    while v > 0 { v >>= 1; }\n    v\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn test_regions_are_skipped() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "#[cfg(test)]\nmod tests {\n    fn count_s_budgeted() { loop { std::thread::spawn(|| 1); } }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
