//! L7 `source-provider`: engine code fetches view extensions through the
//! `pscds_core::source` layer, never by reaching into the descriptor.
//!
//! The fault-injection/recovery stack (`SourceProvider`, retries,
//! breakers, the partial-availability interval rung) only governs
//! fetches that go through `source::extension_view` or a provider's
//! `fetch`. A direct `.extension()` call in engine code silently reads
//! the catalog snapshot, so a source the breaker has quarantined — or a
//! fault plan has taken down — still "answers", and the partial-answer
//! semantics (and its `interval.*` accounting) are quietly bypassed.
//!
//! The rule therefore bans the `.extension()` accessor in
//! `crates/core/src` outside the two layers that legitimately sit below
//! the provider: `source.rs` (the choke point itself) and
//! `descriptor.rs` (the accessor's home). Catalog-snapshot constructors
//! carry `lint-allow(source-provider)` with a justification; test
//! regions are exempt as usual.

use super::flag;
use crate::source::{Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "source-provider";

/// Files that legitimately sit below the provider boundary.
const BELOW_PROVIDER: [&str; 2] = ["source.rs", "descriptor.rs"];

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !file.under("crates/core/src/") {
            continue;
        }
        if BELOW_PROVIDER.contains(&file.file_name()) {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len().saturating_sub(2) {
            if tokens[i].is_punct('.')
                && tokens[i + 1].is_ident("extension")
                && tokens[i + 2].is_punct('(')
            {
                flag(
                    &mut out,
                    file,
                    RULE,
                    tokens[i + 1].line,
                    "direct `.extension()` access in engine code: fetch view extensions \
                     through `source::extension_view` (or a `SourceProvider`) so the \
                     retry/breaker/partial-availability stack governs every read"
                        .to_owned(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn direct_extension_access_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(s: &SourceDescriptor) -> usize { s.extension().len() }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("extension_view"), "{v:?}");
    }

    #[test]
    fn the_choke_point_and_the_descriptor_are_below_the_boundary() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/source.rs",
                "pub fn extension_view(s: &SourceDescriptor) -> &BTreeSet<Fact> { s.extension() }\n",
            ),
            (
                "crates/core/src/descriptor.rs",
                "impl SourceDescriptor { pub fn check(&self) -> bool { self.extension().is_empty() } }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn extension_view_calls_pass() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(s: &SourceDescriptor) -> usize { crate::source::extension_view(s).len() }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn other_crates_are_not_this_rules_business() {
        let ws = Workspace::from_sources(&[(
            "crates/cli/src/lib.rs",
            "pub fn f(s: &SourceDescriptor) -> usize { s.extension().len() }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn allow_directive_and_test_regions_are_exempt() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/collection.rs",
            "pub fn constants(s: &SourceDescriptor) {\n    // lint-allow(source-provider): catalog-snapshot constructor, below the provider\n    let _ = s.extension();\n}\n#[cfg(test)]\nmod tests {\n    fn t(s: &SourceDescriptor) { let _ = s.extension(); }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
