//! L3 `relaxed-ordering`: every `Ordering::Relaxed` in the core and CLI
//! library paths must carry an inline justification. The hand-rolled
//! `partition` layer's atomics (`SearchControl` lowest-chunk-wins, forked
//! cancel flags) are only linearizable because each relaxed access has a
//! reason it cannot reorder into a wrong answer — a `Relaxed` without
//! that reasoning is a latent Theorem 4.1 / 5.1 parity bug waiting for a
//! weaker memory model. `lint-allow(relaxed-ordering): <why>` is the
//! required shape; `Acquire`/`Release`/`SeqCst` need no comment.

use super::{find_path2, flag};
use crate::source::{Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "relaxed-ordering";

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in ws
        .files
        .iter()
        .filter(|f| f.under("crates/core/src/") || f.under("crates/cli/src/"))
    {
        for i in find_path2(file, "Ordering", "Relaxed") {
            flag(
                &mut out,
                file,
                RULE,
                file.tokens[i].line,
                "`Ordering::Relaxed` without a justification: explain why this access cannot reorder into a wrong answer (`lint-allow(relaxed-ordering): <why>`), or use a stronger ordering".to_owned(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn unjustified_relaxed_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/ctl.rs",
            "pub fn f(a: &AtomicBool) -> bool { a.load(Ordering::Relaxed) }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE);
    }

    #[test]
    fn justified_relaxed_passes() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/ctl.rs",
            "pub fn f(a: &AtomicBool) -> bool {\n    // lint-allow(relaxed-ordering): monotone flag, re-checked on the slow path\n    a.load(Ordering::Relaxed)\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn seqcst_needs_no_comment_and_other_crates_are_out_of_scope() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/ctl.rs",
                "pub fn f(a: &AtomicUsize) { a.fetch_min(7, Ordering::SeqCst); }\n",
            ),
            (
                "crates/bench/src/bin/e9.rs",
                "fn main() { x.load(Ordering::Relaxed); }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn cli_is_in_scope_and_test_regions_are_not() {
        let ws = Workspace::from_sources(&[(
            "crates/cli/src/lib.rs",
            "pub fn trip(a: &AtomicBool) { a.store(true, Ordering::Relaxed); }\n\
             #[cfg(test)]\nmod tests {\n    fn t(a: &AtomicBool) { a.store(true, Ordering::Relaxed); }\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }
}
