//! L10 `dead-twin`: a registered engine twin that the parity harness
//! never executes is an untested contract. L1 `engine-twins` makes the
//! twin *exist* and makes the harness *mention* the base name; this
//! rule closes the remaining gap — a `<base>_budgeted` /
//! `<base>_parallel` twin declared in `crates/core/src` must be
//! **transitively called** from `tests/engine_parity.rs`, the
//! differential harness that makes the bit-identity contract
//! executable. A twin only mentioned in a doc comment, or called from
//! nowhere the harness reaches, passes L1 and still ships untested.
//!
//! "Transitively called" is a call-graph reachability query seeded at
//! every function the harness declares, following call **and**
//! reference edges (a twin handed to a table-driven runner counts —
//! over-approximation in the lenient direction, DESIGN.md §3.15).
//! If the harness file is missing entirely, L1 already reports it;
//! this rule stays quiet rather than double-flagging.

use super::engine_twins::{engine_bases, PARITY_TEST};
use super::flag;
use crate::callgraph::{CallGraph, EdgeFilter};
use crate::source::{Violation, Workspace};
use crate::symbols::SymbolTable;

/// Rule id for `lint-allow`.
pub const RULE: &str = "dead-twin";

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    if ws.file(PARITY_TEST).is_none() {
        return out;
    }
    let bases = engine_bases(ws);
    if bases.is_empty() {
        return out;
    }
    let table = SymbolTable::build(ws);
    let graph = CallGraph::build(&table);
    let seeds = table.fns_in_file(PARITY_TEST);
    let reachable = graph.reachable_from(&seeds, EdgeFilter::CallsAndRefs);

    for base in &bases {
        for suffix in ["_budgeted", "_parallel"] {
            let twin = format!("{}{}", base.name, suffix);
            for &id in table.named(&twin) {
                let file = table.file_of(id);
                let line = table.fns[id].item.line;
                if !file.under("crates/core/src/") || file.is_test_line(line) {
                    continue;
                }
                if !reachable[id] {
                    flag(
                        &mut out,
                        file,
                        RULE,
                        line,
                        format!(
                            "twin `{twin}` of engine `{}` is never transitively called from {PARITY_TEST}: a registered twin the parity harness cannot reach is an untested bit-identity contract — add a differential case exercising it",
                            base.name
                        ),
                    );
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    const ENGINE: &str = "pub fn count_widgets(n: u64) -> u64 { n }\n\
                          pub fn count_widgets_budgeted(n: u64, b: &Budget) -> u64 { n }\n\
                          pub fn count_widgets_parallel(n: u64, c: &ParallelConfig) -> u64 { n }\n";

    #[test]
    fn uncalled_twins_are_flagged() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/widgets.rs", ENGINE),
            (
                "tests/engine_parity.rs",
                "#[test]\nfn parity() { assert_eq!(count_widgets(3), 3); }\n",
            ),
        ]);
        let v = run(&ws);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("count_widgets_budgeted"));
        assert!(v[1].message.contains("count_widgets_parallel"));
    }

    #[test]
    fn directly_called_twins_pass() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/widgets.rs", ENGINE),
            (
                "tests/engine_parity.rs",
                "#[test]\nfn parity() {\n\
                     assert_eq!(count_widgets(3), count_widgets_budgeted(3, &b));\n\
                     assert_eq!(count_widgets(3), count_widgets_parallel(3, &c));\n\
                 }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn transitive_calls_through_helpers_count() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/widgets.rs", ENGINE),
            (
                "tests/engine_parity.rs",
                "fn drive_all(n: u64) -> (u64, u64) {\n\
                     (count_widgets_budgeted(n, &b), count_widgets_parallel(n, &c))\n\
                 }\n\
                 #[test]\nfn parity() { let (a, b) = drive_all(3); assert_eq!(a, b); assert_eq!(a, count_widgets(3)); }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn twins_handed_to_table_driven_runners_count() {
        // A reference edge: the twin appears as a function value in a
        // harness table, not as a syntactic call.
        let ws = Workspace::from_sources(&[
            ("crates/core/src/widgets.rs", ENGINE),
            (
                "tests/engine_parity.rs",
                "#[test]\nfn parity() {\n\
                     count_widgets(1);\n\
                     let cases = [count_widgets_budgeted, count_widgets_parallel];\n\
                     run_table(&cases);\n\
                 }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn doc_comment_mentions_do_not_count() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/widgets.rs", ENGINE),
            (
                "tests/engine_parity.rs",
                "//! Also covers count_widgets_budgeted and count_widgets_parallel (someday).\n\
                 #[test]\nfn parity() { count_widgets(1); }\n",
            ),
        ]);
        assert_eq!(run(&ws).len(), 2);
    }

    #[test]
    fn missing_harness_is_l1s_report_not_ours() {
        let ws = Workspace::from_sources(&[("crates/core/src/widgets.rs", ENGINE)]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn allow_directive_suppresses_with_justification() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/widgets.rs",
                "pub fn count_widgets(n: u64) -> u64 { n }\n\
                 // lint-allow(dead-twin): exercised by the fuzz harness, parity case lands with the next fixture drop\n\
                 pub fn count_widgets_budgeted(n: u64, b: &Budget) -> u64 { n }\n\
                 pub fn count_widgets_parallel(n: u64, c: &ParallelConfig) -> u64 { n }\n",
            ),
            (
                "tests/engine_parity.rs",
                "#[test]\nfn parity() { count_widgets(1); count_widgets_parallel(1, &c); }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }
}
