//! L8 `determinism`: engine results and obs counter merges are
//! bit-identity contracts — CI diffs counter totals between serial and
//! multi-threaded runs, and the parity harness diffs engine outputs
//! across twins. Iterating a `HashMap`/`HashSet` feeds **hash order**
//! into those paths: whenever the loop does anything order-sensitive
//! (capped migration, first-wins insertion, output accumulation), the
//! result silently varies from run to run even on one thread, because
//! `RandomState` reseeds per process.
//!
//! The rule flags `for … in` iteration over hash-typed values in
//! `crates/core/src` and `crates/obs/src` library paths. Hash-typedness
//! is tracked per file, token-level (DESIGN.md §3.15):
//!
//! * declarations — `name: HashMap<…>` / `name: HashSet<…>` fields,
//!   params, and annotated `let`s;
//! * constructions — `name = HashMap::new()` and friends;
//! * one-hop taint — a `let` whose initializer applies `remove` /
//!   `take` / `or_default` / `or_insert` to a known hash name binds
//!   hash-typed values (`let Some(moved) = self.nodes.remove(&k)`).
//!
//! The sanctioned remediation — collect into a `Vec`, sort, iterate
//! the `Vec` (or switch the container to `BTreeMap`) — is deliberately
//! *not* flagged: `.collect()` does not propagate taint, and ranges
//! (`0..map.len()`) are skipped. Loops whose bodies are genuinely
//! order-insensitive can say so with `lint-allow(determinism)`.

use super::flag;
use crate::lexer::{TokKind, Token};
use crate::source::{SourceFile, Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "determinism";

/// The trees whose results must be run-to-run identical.
const SCOPE: [&str; 2] = ["crates/core/src/", "crates/obs/src/"];

/// The hash container type names.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Iterator adapters that preserve (nondeterministic) hash order.
const ADAPTERS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "cloned",
    "copied",
];

/// Methods whose results carry a hash container's contents onward.
const TAINT_OPS: [&str; 4] = ["remove", "take", "or_default", "or_insert"];

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPE.iter().any(|tree| file.under(tree)) {
            continue;
        }
        let hashes = hash_names(file);
        if hashes.is_empty() {
            continue;
        }
        for (line, name) in hash_iterations(&file.tokens, &hashes) {
            if file.is_test_line(line) {
                continue;
            }
            flag(
                &mut out,
                file,
                RULE,
                line,
                format!(
                    "iteration over hash-typed `{name}` feeds hash order into a determinism contract: collect into a Vec and sort (or use BTreeMap) before anything order-sensitive, or justify order-insensitivity with `lint-allow({RULE})`"
                ),
            );
        }
    }
    out
}

/// Names bound to hash-typed values in this file: declarations,
/// constructions, then a single in-order taint pass over `let`
/// statements.
fn hash_names(file: &SourceFile) -> Vec<String> {
    let tokens = &file.tokens;
    let mut names: Vec<String> = Vec::new();
    let add = |n: &str, names: &mut Vec<String>| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_owned());
        }
    };
    for i in 0..tokens.len() {
        if tokens[i].kind != TokKind::Ident {
            continue;
        }
        // `name : [& mut 'a std::collections::] HashMap`
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i + 2;
            while j < tokens.len() && j < i + 10 && is_type_prefix(&tokens[j]) {
                j += 1;
            }
            if tokens
                .get(j)
                .is_some_and(|t| HASH_TYPES.iter().any(|h| t.is_ident(h)))
            {
                add(&tokens[i].text, &mut names);
            }
        }
        // `name = [std::collections::] HashMap :: …`
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('=')) {
            let mut j = i + 2;
            while j < tokens.len() && j < i + 10 && is_type_prefix(&tokens[j]) {
                j += 1;
            }
            if tokens
                .get(j)
                .is_some_and(|t| HASH_TYPES.iter().any(|h| t.is_ident(h)))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                add(&tokens[i].text, &mut names);
            }
        }
    }
    // Taint pass: `let <pat> = <rhs>;` where the rhs applies a carrying
    // op to a known hash name.
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut pat: Vec<&str> = Vec::new();
        let mut depth = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && (t.is_punct(';')
                    || (t.is_punct('=')
                        && !tokens[j + 1..].first().is_some_and(|n| n.is_punct('='))))
            {
                break;
            } else if t.kind == TokKind::Ident
                && !matches!(
                    t.text.as_str(),
                    "mut" | "ref" | "Some" | "Ok" | "Err" | "None"
                )
                && t.text.chars().next().is_some_and(char::is_lowercase)
            {
                pat.push(&t.text);
            }
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('=')) {
            i = j + 1;
            continue;
        }
        let rhs_start = j + 1;
        let mut k = rhs_start;
        let mut d = 0i32;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
            } else if t.is_punct(';') && d <= 0 {
                break;
            }
            k += 1;
        }
        let rhs = &tokens[rhs_start..k.min(tokens.len())];
        let mentions_hash = rhs
            .iter()
            .any(|t| t.kind == TokKind::Ident && names.iter().any(|n| n == &t.text));
        let carries = rhs
            .iter()
            .any(|t| TAINT_OPS.iter().any(|op| t.is_ident(op)));
        if mentions_hash && carries {
            for p in pat {
                add(p, &mut names);
            }
        }
        i = k + 1;
    }
    names
}

fn is_type_prefix(t: &Token) -> bool {
    t.is_punct('&')
        || t.is_punct(':')
        || t.kind == TokKind::Lifetime
        || t.is_ident("mut")
        || t.is_ident("std")
        || t.is_ident("collections")
}

/// `for … in <expr> {` headers whose expression resolves to a hash
/// name; returns `(line, name)` pairs.
fn hash_iterations(tokens: &[Token], hashes: &[String]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("for") {
            continue;
        }
        // Find the `in` keyword at depth 0, then the expr up to `{`.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_at = None;
        while j < tokens.len() && j < i + 40 {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_ident("in") && depth == 0 {
                in_at = Some(j);
                break;
            } else if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(in_at) = in_at else { continue };
        let mut k = in_at + 1;
        let mut d = 0i32;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                d -= 1;
            } else if t.is_punct('{') && d == 0 {
                break;
            }
            k += 1;
        }
        if let Some(name) = hash_root(&tokens[in_at + 1..k.min(tokens.len())], hashes) {
            out.push((tokens[i].line, name));
        }
    }
    out
}

/// Resolves a for-header expression to the hash name it iterates, if
/// any: strips leading `&`/`mut`, trailing known adapter calls, then
/// requires a plain dotted chain ending in a hash name. Ranges (`..`)
/// are deterministic and resolve to nothing.
fn hash_root(expr: &[Token], hashes: &[String]) -> Option<String> {
    let mut depth = 0i32;
    for w in expr.windows(2) {
        if w[0].is_punct('(') || w[0].is_punct('[') {
            depth += 1;
        } else if w[0].is_punct(')') || w[0].is_punct(']') {
            depth -= 1;
        } else if w[0].is_punct('.') && w[1].is_punct('.') && depth == 0 {
            return None;
        }
    }
    let mut toks: Vec<&Token> = expr.iter().collect();
    while toks
        .first()
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        toks.remove(0);
    }
    // Strip trailing `. adapter ( )` groups.
    loop {
        let n = toks.len();
        if n >= 4
            && toks[n - 1].is_punct(')')
            && toks[n - 2].is_punct('(')
            && ADAPTERS.iter().any(|a| toks[n - 3].is_ident(a))
            && toks[n - 4].is_punct('.')
        {
            toks.truncate(n - 4);
        } else {
            break;
        }
    }
    // Remaining: `ident (. ident)*` — anything else (calls, indexing,
    // arithmetic) is not a bare hash value.
    if toks.is_empty() {
        return None;
    }
    for (i, t) in toks.iter().enumerate() {
        let ok = if i % 2 == 0 {
            t.kind == TokKind::Ident
        } else {
            t.is_punct('.')
        };
        if !ok {
            return None;
        }
    }
    let last = toks.last()?;
    hashes.iter().find(|h| last.is_ident(h)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn direct_iteration_over_hash_fields_and_locals_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/cache.rs",
            "pub struct C { nodes: HashMap<u32, u64> }\n\
             impl C {\n\
                 pub fn dump(&self) -> Vec<u64> {\n\
                     let mut out = Vec::new();\n\
                     for (k, v) in self.nodes.iter() { out.push(*v); }\n\
                     out\n\
                 }\n\
             }\n\
             pub fn local() { let mut seen = HashSet::new(); for s in seen.drain() { use_it(s); } }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("nodes"));
        assert!(v[1].message.contains("seen"));
    }

    #[test]
    fn one_hop_taint_catches_moved_out_maps() {
        // The live bug shape: a map removed from a map-of-maps, then
        // iterated under a migration cap.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/cache.rs",
            "pub struct C { nodes: HashMap<u32, HashMap<K, V>> }\n\
             impl C {\n\
                 pub fn migrate(&mut self, ctx: u32) {\n\
                     let Some(old_nodes) = self.nodes.remove(&ctx) else { return; };\n\
                     for (key, value) in old_nodes { place(key, value); }\n\
                 }\n\
             }\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("old_nodes"));
    }

    #[test]
    fn sorted_snapshot_remediation_is_clean() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/cache.rs",
            "pub fn dump(map: &HashMap<u32, u64>) -> Vec<(u32, u64)> {\n\
                 let mut entries: Vec<(u32, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();\n\
                 entries.sort_unstable();\n\
                 let mut out = Vec::new();\n\
                 for (k, v) in entries { out.push((k, v)); }\n\
                 out\n\
             }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn ranges_over_hash_lengths_are_deterministic() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/cache.rs",
            "pub fn f(map: &HashMap<u32, u64>) { for i in 0..map.len() { step(i); } }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn vec_iteration_is_not_this_rules_business() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/cache.rs",
            "pub fn f(items: &[u64], map: &HashMap<u32, u64>) {\n\
                 for x in items.iter() { use_it(*x); }\n\
                 for (i, x) in items.iter().enumerate() { use_both(i, x); }\n\
             }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn out_of_scope_trees_and_test_regions_are_skipped() {
        let ws = Workspace::from_sources(&[
            (
                "crates/cli/src/lib.rs",
                "pub fn f(map: HashMap<u32, u64>) { for (k, v) in map { print(k, v); } }\n",
            ),
            (
                "crates/core/src/cache.rs",
                "#[cfg(test)]\nmod tests {\n    fn t(map: HashMap<u32, u64>) { for (k, v) in map { check(k, v); } }\n}\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn allow_directive_suppresses_with_justification() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/cache.rs",
            "pub fn total(map: &HashMap<u32, u64>) -> u64 {\n\
                 let mut sum = 0;\n\
                 // lint-allow(determinism): summation is order-insensitive\n\
                 for v in map.values() { sum += v; }\n\
                 sum\n\
             }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
