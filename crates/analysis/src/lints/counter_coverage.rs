//! L9 `counter-coverage`: the metric-name registry
//! (`crates/obs/src/names.rs`) and the emission sites must cover each
//! other, in both directions:
//!
//! * **No orphan constants.** Every `pub const NAME: &str = "…"` in the
//!   registry must be emitted — passed to `counter_add`/`gauge_max`/
//!   `histogram_record`/`span_open`/`event` — from at least one
//!   *library* path somewhere in the workspace. An
//!   orphan means the JSONL schema advertises a metric no run can ever
//!   produce: the bench validator and the CI counter-diff then treat
//!   "always zero" and "never wired" as the same thing, which is
//!   exactly the drift the registry exists to prevent.
//! * **No unregistered emissions.** Every emission in the consumer
//!   trees must name a registry constant. String literals are L6's
//!   business; this direction catches names smuggled through locals or
//!   parameters, which defeat the registry just as thoroughly.
//!
//! The `COUNTERS`/`GAUGES`/`HISTOGRAMS`/`SPANS`/`EVENTS` reporting
//! arrays in the registry are not emissions and do not count as
//! coverage — only real recording call sites do.

use super::flag;
use crate::lexer::TokKind;
use crate::source::{SourceFile, Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "counter-coverage";

/// The registry file.
pub const NAMES_FILE: &str = "crates/obs/src/names.rs";

/// The recording calls that constitute an emission. `span_open` covers
/// both `ObsSession::span_open` and the worker-side
/// `SpanStack::span_open` alias (the bare `open` is deliberately not
/// matched: `File::open("…")` and friends are not emissions).
const METRIC_CALLS: [&str; 5] = [
    "counter_add",
    "gauge_max",
    "histogram_record",
    "span_open",
    "event",
];

/// The source trees whose emissions must use registry constants.
const CONSUMER_TREES: [&str; 3] = ["crates/core/src/", "crates/cli/src/", "crates/bench/src/"];

/// A registry constant: `pub const NAME: &str = "value";`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricConst {
    /// The constant's identifier (e.g. `DP_CACHE_HITS`).
    pub name: String,
    /// The metric string it carries.
    pub value: String,
    /// 1-based declaration line in the registry file.
    pub line: u32,
}

/// Parses the registry's string constants. Array aggregates
/// (`COUNTERS`, `GAUGES`) are typed `[&str; N]` and fall out naturally:
/// only `&str`-typed constants with a literal initializer match.
#[must_use]
pub fn metric_consts(file: &SourceFile) -> Vec<MetricConst> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("const") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        // `& ['static] str = "literal"`
        let mut j = i + 3;
        if !tokens.get(j).is_some_and(|t| t.is_punct('&')) {
            continue;
        }
        j += 1;
        if tokens.get(j).is_some_and(|t| t.kind == TokKind::Lifetime) {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_ident("str")) {
            continue;
        }
        if !tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let Some(lit) = tokens
            .get(j + 2)
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('"'))
        else {
            continue;
        };
        out.push(MetricConst {
            name: name.text.clone(),
            value: lit.text.trim_matches('"').to_owned(),
            line: tokens[i].line,
        });
    }
    out
}

/// An emission site: a `counter_add`/`gauge_max` call with the token
/// range of its argument list (inside the parens).
struct Emission {
    line: u32,
    args: (usize, usize),
}

fn emissions(file: &SourceFile) -> Vec<Emission> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !METRIC_CALLS.iter().any(|c| tokens[i].is_ident(c)) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        out.push(Emission {
            line: tokens[i].line,
            args: (i + 2, j),
        });
    }
    out
}

/// `true` for files that are test code wholesale (under a `tests/`
/// directory) — their emissions exercise the API but do not wire a
/// metric into any real run.
fn is_test_file(file: &SourceFile) -> bool {
    file.path.starts_with("tests/") || file.path.contains("/tests/")
}

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(names_file) = ws.file(NAMES_FILE) else {
        return out; // No registry, nothing to cover (synthetic corpora).
    };
    let consts = metric_consts(names_file);
    if consts.is_empty() {
        return out;
    }

    let mut emitted: Vec<bool> = vec![false; consts.len()];
    for file in &ws.files {
        if file.path == NAMES_FILE || is_test_file(file) {
            continue;
        }
        for em in emissions(file) {
            if file.is_test_line(em.line) {
                continue;
            }
            let args = &file.tokens[em.args.0..em.args.1.min(file.tokens.len())];
            let uses_const = consts.iter().enumerate().any(|(ci, c)| {
                let hit = args.iter().any(|t| t.is_ident(&c.name));
                if hit {
                    emitted[ci] = true;
                }
                hit
            });
            // Unregistered-emission direction, consumer trees only.
            if !uses_const
                && CONSUMER_TREES.iter().any(|tree| file.under(tree))
                && !args
                    .first()
                    .is_some_and(|t| t.kind == TokKind::Literal && t.text.starts_with('"'))
            {
                flag(
                    &mut out,
                    file,
                    RULE,
                    em.line,
                    "metric emission names no `pscds_obs::names` constant: route the name through the registry so the bench validator and the CI counter-diff see every metric the run can produce".to_owned(),
                );
            }
        }
    }
    for (ci, c) in consts.iter().enumerate() {
        if !emitted[ci] {
            flag(
                &mut out,
                names_file,
                RULE,
                c.line,
                format!(
                    "registry constant `{}` (\"{}\") is never emitted from a library path: wire a `counter_add`/`gauge_max` call or retire the constant — an advertised-but-unwired metric is schema drift",
                    c.name, c.value
                ),
            );
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    const REGISTRY: &str = "pub const DP_CACHE_HITS: &str = \"dp.cache_hits\";\n\
                            pub const BUDGET_TICKS: &str = \"budget.ticks\";\n\
                            pub const COUNTERS: [&str; 2] = [DP_CACHE_HITS, BUDGET_TICKS];\n";

    #[test]
    fn registry_parser_reads_string_consts_only() {
        let f = crate::source::SourceFile::from_source(NAMES_FILE, REGISTRY);
        let consts = metric_consts(&f);
        assert_eq!(consts.len(), 2, "arrays are not string consts");
        assert_eq!(consts[0].name, "DP_CACHE_HITS");
        assert_eq!(consts[0].value, "dp.cache_hits");
    }

    #[test]
    fn orphan_constants_are_flagged_at_their_declaration() {
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, REGISTRY),
            (
                "crates/core/src/engine.rs",
                "pub fn f(obs: &mut ObsSession) { obs.counter_add(names::DP_CACHE_HITS, 1); }\n",
            ),
        ]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].file, NAMES_FILE);
        assert!(v[0].message.contains("BUDGET_TICKS"));
    }

    #[test]
    fn emissions_in_test_code_do_not_count_as_coverage() {
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, REGISTRY),
            (
                "crates/core/src/engine.rs",
                "pub fn f(obs: &mut ObsSession) { obs.counter_add(names::DP_CACHE_HITS, 1); }\n\
                 #[cfg(test)]\nmod tests {\n    fn t(obs: &mut ObsSession) { obs.counter_add(names::BUDGET_TICKS, 1); }\n}\n",
            ),
            (
                "crates/obs/tests/smoke.rs",
                "fn t(obs: &mut ObsSession) { obs.counter_add(names::BUDGET_TICKS, 1); }\n",
            ),
        ]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "test-only coverage is not coverage: {v:?}");
        assert!(v[0].message.contains("BUDGET_TICKS"));
    }

    #[test]
    fn fully_covered_registry_is_clean() {
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, REGISTRY),
            (
                "crates/core/src/engine.rs",
                "pub fn f(obs: &mut ObsSession) {\n\
                     obs.counter_add(names::DP_CACHE_HITS, 1);\n\
                     obs.counter_add(names::BUDGET_TICKS, 2);\n\
                 }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn consumer_emissions_through_locals_are_flagged() {
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, REGISTRY),
            (
                "crates/core/src/engine.rs",
                "pub fn f(obs: &mut ObsSession, which: &'static str) {\n\
                     obs.counter_add(which, 1);\n\
                     obs.counter_add(names::DP_CACHE_HITS, 1);\n\
                     obs.counter_add(names::BUDGET_TICKS, 1);\n\
                 }\n",
            ),
        ]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("registry"));
    }

    #[test]
    fn obs_internal_plumbing_is_not_a_consumer() {
        // The session forwards its `name` parameter to the metric set —
        // that is the API's own implementation, not an emission bypass.
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, REGISTRY),
            (
                "crates/obs/src/session.rs",
                "impl ObsSession { pub fn counter_add(&mut self, name: &'static str, d: u64) { self.metrics.counter_add(name, d); } }\n",
            ),
            (
                "crates/core/src/engine.rs",
                "pub fn f(obs: &mut ObsSession) {\n\
                     obs.counter_add(names::DP_CACHE_HITS, 1);\n\
                     obs.counter_add(names::BUDGET_TICKS, 1);\n\
                 }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn span_histogram_and_event_emissions_count_as_coverage() {
        let registry = "pub const SPAN_DP_RUN: &str = \"dp.run\";\n\
                        pub const DP_CHUNK_STEPS: &str = \"dp.chunk_steps\";\n\
                        pub const EVENT_BUDGET_TRIP: &str = \"budget.trip\";\n";
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, registry),
            (
                "crates/core/src/engine.rs",
                "pub fn f(obs: &mut ObsSession, spans: &mut SpanStack) {\n\
                     obs.span_open(names::SPAN_DP_RUN, 0);\n\
                     spans.span_open(names::SPAN_DP_RUN, 0);\n\
                     obs.histogram_record(names::DP_CHUNK_STEPS, 1);\n\
                     obs.event(names::EVENT_BUDGET_TRIP, 0, &[]);\n\
                 }\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn bare_open_calls_are_not_emissions() {
        let registry = "pub const SPAN_DP_RUN: &str = \"dp.run\";\n";
        let ws = Workspace::from_sources(&[
            (NAMES_FILE, registry),
            (
                "crates/core/src/engine.rs",
                "pub fn f(stack: &mut SpanStack) { stack.open(names::SPAN_DP_RUN, 0); let _ = File::open(\"x\"); }\n",
            ),
        ]);
        let v = run(&ws);
        assert_eq!(v.len(), 1, "bare `open` is not a recording call: {v:?}");
        assert!(v[0].message.contains("SPAN_DP_RUN"));
    }

    #[test]
    fn missing_registry_file_means_nothing_to_cover() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(obs: &mut ObsSession) { obs.counter_add(local, 1); }\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }
}
