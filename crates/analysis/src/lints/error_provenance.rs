//! L5 `error-provenance`: the two "the engine gave up" errors must carry
//! enough provenance for a caller to act on.
//!
//! * **`SearchSpaceTooLarge`** constructions must build their message
//!   with `format!` interpolating the offending size *and* naming the cap
//!   that was exceeded (the format string contains a `{…}` placeholder
//!   and one of "cap" / "limit" / "exceed"). A bare string literal tells
//!   the operator nothing about how far over the line the instance was,
//!   or which knob (`--timeout-ms`, a budget, a hard representation
//!   limit) would help.
//! * **`BudgetExceeded`** values are constructed in `govern.rs` only
//!   (via `Budget::exceeded`, which stamps the budget's true step and
//!   elapsed counters). Outside `govern.rs` the only accepted shape is a
//!   field-for-field re-wrap — shorthand `{ phase, steps, elapsed }`
//!   rebuilt from a destructured error — so provenance can be forwarded
//!   but never invented.
//!
//! Match *patterns* (`{ .. }`, bare field bindings) are not
//! constructions and are ignored, as is `error.rs` (the defining
//! module).

use super::flag;
use crate::lexer::TokKind;
use crate::source::{balanced_block_end, SourceFile, Violation, Workspace};

/// Rule id for `lint-allow`.
pub const RULE: &str = "error-provenance";

/// Words that count as naming the violated cap.
const CAP_WORDS: [&str; 3] = ["cap", "limit", "exceed"];

/// Runs the rule.
#[must_use]
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in ws.core_files() {
        if file.file_name() == "error.rs" {
            continue;
        }
        check_search_space(file, &mut out);
        check_budget_exceeded(file, &mut out);
    }
    out
}

/// Finds `<Name> {` occurrences and returns the token range inside the
/// braces, or `None` when the brace region is a pattern (`..`).
fn brace_regions(file: &SourceFile, name: &str) -> Vec<(u32, usize, usize)> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident(name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            let end = balanced_block_end(tokens, i + 1);
            out.push((tokens[i].line, i + 2, end));
        }
    }
    out
}

/// `true` iff the region contains the rest pattern `..` (two adjacent
/// dot puncts that are not part of a wider token).
fn has_rest_pattern(file: &SourceFile, start: usize, end: usize) -> bool {
    let t = &file.tokens;
    (start..end.saturating_sub(1)).any(|i| t[i].is_punct('.') && t[i + 1].is_punct('.'))
}

fn check_search_space(file: &SourceFile, out: &mut Vec<Violation>) {
    for (line, start, end) in brace_regions(file, "SearchSpaceTooLarge") {
        if has_rest_pattern(file, start, end) {
            continue; // match pattern
        }
        let tokens = &file.tokens;
        // A construction names the `message` field with a value.
        let is_construction = (start..end.saturating_sub(1))
            .any(|i| tokens[i].is_ident("message") && tokens[i + 1].is_punct(':'));
        if !is_construction {
            continue; // binding pattern `{ message }`
        }
        // Require format!("…{…}… cap/limit/exceed …").
        let fmt_lit = (start..end).find_map(|i| {
            (tokens[i].is_ident("format") && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')))
                .then(|| {
                    tokens[i + 2..end]
                        .iter()
                        .find(|t| t.kind == TokKind::Literal && t.text.starts_with('"'))
                })
                .flatten()
        });
        match fmt_lit {
            None => flag(
                out,
                file,
                RULE,
                line,
                "`SearchSpaceTooLarge` built without `format!`: the message must interpolate the offending size and name the exceeded cap".to_owned(),
            ),
            Some(lit) => {
                let has_placeholder = lit.text.contains('{');
                let names_cap = CAP_WORDS.iter().any(|w| lit.text.to_lowercase().contains(w));
                if !has_placeholder || !names_cap {
                    flag(
                        out,
                        file,
                        RULE,
                        line,
                        format!(
                            "`SearchSpaceTooLarge` message lacks {}: interpolate the instance size and say which cap/limit was exceeded",
                            if has_placeholder { "a cap reference" } else { "size interpolation" }
                        ),
                    );
                }
            }
        }
    }
}

fn check_budget_exceeded(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.file_name() == "govern.rs" {
        return; // the defining construction site (Budget::exceeded)
    }
    for (line, start, end) in brace_regions(file, "BudgetExceeded") {
        if has_rest_pattern(file, start, end) {
            continue;
        }
        let tokens = &file.tokens;
        let has = |name: &str| tokens[start..end].iter().any(|t| t.is_ident(name));
        let has_colon = tokens[start..end].iter().any(|t| t.is_punct(':'));
        let is_full_shorthand = has("phase") && has("steps") && has("elapsed") && !has_colon;
        if !is_full_shorthand {
            flag(
                out,
                file,
                RULE,
                line,
                "`BudgetExceeded` constructed outside `govern.rs` with invented fields: only `Budget::exceeded` (govern.rs) or a field-for-field re-wrap `{ phase, steps, elapsed }` of a caught error may build this variant".to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    #[test]
    fn bare_string_message_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f() -> CoreError {\n    CoreError::SearchSpaceTooLarge { message: \"too big\".to_owned() }\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("format!"));
    }

    #[test]
    fn format_without_cap_word_or_placeholder_is_flagged() {
        let no_cap = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(n: usize) -> CoreError {\n    CoreError::SearchSpaceTooLarge { message: format!(\"{n} items is a lot\") }\n}\n",
        )]);
        assert_eq!(run(&no_cap).len(), 1);

        let no_size = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f() -> CoreError {\n    CoreError::SearchSpaceTooLarge { message: format!(\"over the cap\") }\n}\n",
        )]);
        assert_eq!(run(&no_size).len(), 1);
    }

    #[test]
    fn size_plus_cap_message_passes() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(n: usize) -> CoreError {\n    CoreError::SearchSpaceTooLarge {\n        message: format!(\"2^{n} worlds exceed the enumeration cap of {MAX} (set a budget)\"),\n    }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn match_patterns_are_not_constructions() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f(e: &CoreError) -> bool {\n    matches!(e, CoreError::SearchSpaceTooLarge { .. })\n        || matches!(e, CoreError::BudgetExceeded { .. })\n}\npub fn g(e: CoreError) -> String {\n    match e { CoreError::SearchSpaceTooLarge { message } => message, _ => String::new() }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn budget_exceeded_invented_outside_govern_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/engine.rs",
            "pub fn f() -> CoreError {\n    CoreError::BudgetExceeded { phase: \"fake\".into(), steps: 0, elapsed: Duration::ZERO }\n}\n",
        )]);
        let v = run(&ws);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("govern.rs"));
    }

    #[test]
    fn field_for_field_rewrap_passes() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/resilient.rs",
            "pub fn f(e: CoreError) -> CoreError {\n    match e {\n        CoreError::BudgetExceeded { phase, steps, elapsed } => {\n            CoreError::BudgetExceeded { phase, steps, elapsed }\n        }\n        other => other,\n    }\n}\n",
        )]);
        assert_eq!(run(&ws), vec![]);
    }

    #[test]
    fn govern_and_error_modules_are_exempt() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/govern.rs",
                "fn exceeded(&self) -> CoreError {\n    CoreError::BudgetExceeded { phase: p.to_owned(), steps: s, elapsed: e }\n}\n",
            ),
            (
                "crates/core/src/error.rs",
                "pub enum CoreError {\n    SearchSpaceTooLarge { message: String },\n    BudgetExceeded { phase: String, steps: u64, elapsed: Duration },\n}\n",
            ),
        ]);
        assert_eq!(run(&ws), vec![]);
    }
}
