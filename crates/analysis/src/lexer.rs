//! A minimal, dependency-free Rust lexer.
//!
//! The invariant lints in this crate need just enough token structure to
//! recognise item boundaries (`pub fn name`), qualified paths
//! (`Ordering::Relaxed`), macro invocations (`panic!`), balanced brace
//! regions, and comments (which carry the `lint-allow` grammar). This
//! lexer produces exactly that: a flat token stream with line numbers,
//! plus the comment text collected separately. It understands the lexical
//! shapes that would otherwise confuse a naive scanner — nested block
//! comments, raw strings, byte strings, char literals vs. lifetimes, and
//! range punctuation inside numeric contexts — and deliberately nothing
//! more (no keywords table, no precedence, no spans beyond lines).

/// The coarse class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `loop`, `Ordering`, …).
    Ident,
    /// A single punctuation character (`{`, `:`, `!`, …). Multi-character
    /// operators appear as consecutive tokens.
    Punct,
    /// A string / char / byte / numeric literal, with its source text
    /// (including quotes) preserved.
    Literal,
    /// A lifetime (`'a`), kept distinct so it is never mistaken for an
    /// unterminated char literal.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Punct`] this is a single character.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// `true` iff this is an identifier with exactly the text `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` iff this is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block), with its text and starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// The comment body, *without* the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based source line where the comment starts.
    pub line: u32,
}

/// The output of [`lex`]: the token stream and the comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order (one entry per `//` line, one per
    /// block comment).
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Never fails: unterminated constructs are
/// consumed to end-of-file, which is good enough for linting (the real
/// compiler is the authority on well-formedness).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `idx` over `n` characters, updating the line counter.
    let bump = |idx: &mut usize, line: &mut u32, chars: &[char], n: usize| {
        for _ in 0..n {
            if *idx < chars.len() {
                if chars[*idx] == '\n' {
                    *line += 1;
                }
                *idx += 1;
            }
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        // Whitespace.
        if c.is_whitespace() {
            bump(&mut i, &mut line, &chars, 1);
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: chars[i + 2..j].iter().collect(),
                line: start_line,
            });
            let n = j - i;
            bump(&mut i, &mut line, &chars, n);
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let body_end = j.saturating_sub(2).max(i + 2);
            out.comments.push(Comment {
                text: chars[i + 2..body_end].iter().collect(),
                line: start_line,
            });
            let n = j - i;
            bump(&mut i, &mut line, &chars, n);
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
        if (c == 'r' || c == 'b') && is_string_ahead(&chars, i) {
            let j = scan_string_like(&chars, i);
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            let n = j - i;
            bump(&mut i, &mut line, &chars, n);
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            let n = j - i;
            bump(&mut i, &mut line, &chars, n);
            continue;
        }
        // Number: digits with embedded `_`, `.` (not `..`), exponents and
        // radix/type-suffix letters.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() {
                let d = chars[j];
                let continues = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(j + 1) != Some(&'.'))
                    || ((d == '+' || d == '-')
                        && matches!(chars.get(j - 1), Some('e' | 'E'))
                        && chars[i..j]
                            .iter()
                            .any(|&x| x == '.' || x == 'e' || x == 'E'));
                if continues {
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            let n = j - i;
            bump(&mut i, &mut line, &chars, n);
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let j = scan_quoted(&chars, i + 1, '"');
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            let n = j - i;
            bump(&mut i, &mut line, &chars, n);
            continue;
        }
        // `'`: lifetime or char literal.
        if c == '\'' {
            if is_lifetime_ahead(&chars, i) {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line: start_line,
                });
                let n = j - i;
                bump(&mut i, &mut line, &chars, n);
            } else {
                let j = scan_quoted(&chars, i + 1, '\'');
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: chars[i..j].iter().collect(),
                    line: start_line,
                });
                let n = j - i;
                bump(&mut i, &mut line, &chars, n);
            }
            continue;
        }
        // Everything else: one punctuation character.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        bump(&mut i, &mut line, &chars, 1);
    }
    out
}

/// After `r`/`b` at `i`, is a (raw/byte) string literal starting?
fn is_string_ahead(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if chars[i] == 'b' && chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"') || (chars[i] == 'b' && chars.get(i + 1) == Some(&'\''))
}

/// Scans a raw/byte string (or byte char) starting at the `r`/`b` prefix;
/// returns the index one past the closing delimiter.
fn scan_string_like(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    let mut raw = chars[i] == 'r';
    if chars[i] == 'b' {
        if chars.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        } else if chars.get(j) == Some(&'\'') {
            return scan_quoted(chars, j + 1, '\'');
        }
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1;
    if raw {
        // Raw: ends at `"` followed by `hashes` #s, no escapes.
        while j < chars.len() {
            if chars[j] == '"'
                && chars[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&h| h == '#')
                    .count()
                    == hashes
            {
                return j + 1 + hashes;
            }
            j += 1;
        }
        j
    } else {
        scan_quoted(chars, j, '"')
    }
}

/// Scans a quoted literal body starting just *after* the opening quote;
/// returns the index one past the closing quote. Honors `\` escapes.
fn scan_quoted(chars: &[char], mut j: usize, quote: char) -> usize {
    while j < chars.len() {
        if chars[j] == '\\' {
            j += 2;
        } else if chars[j] == quote {
            return j + 1;
        } else {
            j += 1;
        }
    }
    j
}

/// After `'` at `i`: lifetime iff an identifier starts and the construct
/// is not closed by another `'` right after one character (`'a'` is a
/// char literal; `'a` / `'static` are lifetimes).
fn is_lifetime_ahead(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(&c) if c.is_alphabetic() || c == '_' => chars.get(i + 2) != Some(&'\''),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn main() {\n    x.unwrap();\n}\n");
        assert!(l.tokens[0].is_ident("fn"));
        assert!(l.tokens[1].is_ident("main"));
        let unwrap = l.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn comments_are_separated() {
        let l = lex("// lint-allow(no-panic): fine\nlet x = 1; /* block\ncomment */ let y;\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("lint-allow(no-panic)"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(!l.tokens.iter().any(|t| t.text.contains("comment")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("still outer"));
        assert!(l.tokens[0].is_ident("fn"));
    }

    #[test]
    fn strings_hide_their_contents() {
        // `loop` inside a string must not look like a loop token.
        let src = "let s = \"loop { panic!() }\"; let r = r#\"also loop\"#;";
        let l = lex(src);
        assert!(!idents(src).contains(&"loop".to_string()));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r##\"has \"# inside\"##; let t = 1;";
        let l = lex(src);
        let lit = l
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Literal && t.text.starts_with('r'))
            .unwrap();
        assert!(lit.text.contains("inside"));
        assert!(l.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
                .count(),
            2
        );
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let l = lex("for i in 0..10 { }");
        let lits: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["0", "10"]);
    }

    #[test]
    fn floats_and_exponents() {
        let l = lex("let x = 1.5e-3; let y = 0x1F_u64;");
        let lits: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["1.5e-3", "0x1F_u64"]);
    }
}
