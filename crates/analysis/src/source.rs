//! Workspace source model for the invariant lints.
//!
//! A [`Workspace`] holds every lexed `.rs` file the lints care about,
//! with three per-file derived structures:
//!
//! * the token stream (see [`crate::lexer`]);
//! * **test regions** — line ranges covered by `#[cfg(test)]` items,
//!   which the library-path lints skip;
//! * **allow directives** — the `lint-allow` grammar parsed out of
//!   comments. An inline `// lint-allow(<rule>): <reason>` suppresses the
//!   named rule on the directive's own line *through the next code line*
//!   (so a directive may sit at the end of the offending line or on its
//!   own line(s) directly above). A `// lint-allow-file(<rule>): <reason>`
//!   anywhere in a file suppresses the rule for the whole file. A
//!   directive with an empty reason is itself reported as a violation —
//!   justifications are the point.

use crate::lexer::{lex, Comment, Lexed, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// A parsed `lint-allow` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule id being allowed (e.g. `no-panic`).
    pub rule: String,
    /// The justification after the colon. Must be non-empty.
    pub reason: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// First code line at or after the directive — the last line the
    /// directive covers.
    pub covers_through: u32,
    /// `true` for `lint-allow-file` (whole-file scope).
    pub file_scope: bool,
}

/// One lexed source file, workspace-relative.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// Token stream (comments excluded).
    pub tokens: Vec<Token>,
    /// Comments, for diagnostics.
    pub comments: Vec<Comment>,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` into a file model under the given relative path.
    #[must_use]
    pub fn from_source(path: &str, text: &str) -> Self {
        let Lexed { tokens, comments } = lex(text);
        let test_regions = find_test_regions(&tokens);
        let allows = parse_allows(&comments, &tokens);
        SourceFile {
            path: path.replace('\\', "/"),
            tokens,
            comments,
            allows,
            test_regions,
        }
    }

    /// `true` iff `line` falls inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` iff an allow directive for `rule` covers `line`.
    #[must_use]
    pub fn allows_rule(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && (a.file_scope || (a.line <= line && line <= a.covers_through))
        })
    }

    /// The file name component of the path.
    #[must_use]
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// `true` iff the path is under the given workspace-relative prefix.
    #[must_use]
    pub fn under(&self, prefix: &str) -> bool {
        self.path.starts_with(prefix)
    }

    /// `true` iff any identifier token equals `name` (test regions
    /// included — references from tests count as references).
    #[must_use]
    pub fn mentions_ident(&self, name: &str) -> bool {
        self.tokens.iter().any(|t| t.is_ident(name))
    }
}

/// The set of files the lints run over.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// All scanned files.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(path, source)` pairs — the
    /// test harness for synthetic violations.
    #[must_use]
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        Workspace {
            files: sources
                .iter()
                .map(|(p, s)| SourceFile::from_source(p, s))
                .collect(),
        }
    }

    /// Scans a workspace root on disk: `crates/*/src/**/*.rs`,
    /// `crates/*/tests/**/*.rs`, `src/**/*.rs` and `tests/**/*.rs`.
    /// `vendor/`, `target/`, and `fixtures/` directories (the lint's
    /// own violation corpora) are never entered.
    ///
    /// # Errors
    /// I/O errors reading directories or files.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        let mut rel_dirs: Vec<PathBuf> = vec![PathBuf::from("src"), PathBuf::from("tests")];
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let entry = entry?;
                if entry.file_type()?.is_dir() {
                    let name = PathBuf::from("crates").join(entry.file_name());
                    rel_dirs.push(name.join("src"));
                    rel_dirs.push(name.join("tests"));
                }
            }
        }
        for rel in rel_dirs {
            let abs = root.join(&rel);
            if abs.is_dir() {
                collect_rs_files(root, &abs, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Files under `crates/core/src/`.
    pub fn core_files(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().filter(|f| f.under("crates/core/src/"))
    }

    /// The file at the given workspace-relative path, if scanned.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            // Fixture corpora are deliberate violations for the lint's
            // own tests — scanning them would fail the live tree.
            if entry.file_name() == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::from_source(&rel, &text));
        }
    }
    Ok(())
}

/// A lint violation (or a malformed allow directive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (e.g. `budget-bypass`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Finds `#[cfg(test)]`-covered line ranges: the attribute, any further
/// attributes, then the next item's full extent (through its balanced
/// `{…}` block, or through `;` for block-less items).
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test(tokens, i) {
            let start_line = tokens[i].line;
            let mut j = after_attr;
            // Skip any further attributes on the same item.
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attribute(tokens, j);
            }
            // Scan to the item's end: first `{` at depth 0 (then its
            // balanced close) or a `;` at depth 0.
            let mut depth_paren = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth_paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth_paren -= 1;
                } else if t.is_punct(';') && depth_paren == 0 {
                    break;
                } else if t.is_punct('{') && depth_paren == 0 {
                    j = balanced_block_end(tokens, j);
                    break;
                }
                j += 1;
            }
            let end_line = tokens
                .get(j.min(tokens.len().saturating_sub(1)))
                .map_or(start_line, |t| t.line);
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// If tokens at `i` begin `#[cfg(…test…)]`, returns the index one past
/// the closing `]`.
fn match_cfg_test(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    if !tokens.get(i + 2)?.is_ident("cfg") {
        return None;
    }
    let end = skip_attribute(tokens, i);
    let has_test = tokens[i + 3..end.saturating_sub(1)]
        .iter()
        .any(|t| t.is_ident("test"));
    has_test.then_some(end)
}

/// Given `#` at `i`, returns the index one past the attribute's `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Given `{` at `i`, returns the index of the matching `}` (or the last
/// token on unbalanced input).
#[must_use]
pub fn balanced_block_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Parses `lint-allow(<rule>): <reason>` / `lint-allow-file(<rule>):
/// <reason>` out of comments. A directive covers its own line through the
/// next line holding a code token.
fn parse_allows(comments: &[Comment], tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // Doc comments (`///` → text starts with `/`, `//!` → `!`) are
        // prose: a `lint-allow` mention there documents the grammar, it
        // does not invoke it. Directives live in plain `//` comments.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let mut rest: &str = &c.text;
        while let Some(pos) = rest.find("lint-allow") {
            rest = &rest[pos + "lint-allow".len()..];
            let file_scope = rest.starts_with("-file");
            let body = if file_scope {
                &rest["-file".len()..]
            } else {
                rest
            };
            let Some(open) = body.strip_prefix('(') else {
                continue;
            };
            let Some(close) = open.find(')') else {
                continue;
            };
            let rule = open[..close].trim().to_string();
            let after = &open[close + 1..];
            let reason = after
                .strip_prefix(':')
                .map(str::trim)
                .unwrap_or("")
                .to_string();
            let covers_through = tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l >= c.line)
                .unwrap_or(c.line);
            allows.push(Allow {
                rule,
                reason,
                line: c.line,
                covers_through,
                file_scope,
            });
            rest = after;
        }
    }
    allows
}

/// Reports malformed allow directives (empty rule or empty reason) as
/// violations — the allowlist grammar requires a justification.
#[must_use]
pub fn check_allow_grammar(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        for a in &f.allows {
            if a.rule.is_empty() || a.reason.is_empty() {
                out.push(Violation {
                    rule: "allow-grammar",
                    file: f.path.clone(),
                    line: a.line,
                    message: format!(
                        "malformed allow directive for rule `{}`: expected `lint-allow(<rule>): <reason>` with a non-empty reason",
                        a.rule
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "pub fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(6));
        assert!(f.is_test_line(7));
    }

    #[test]
    fn cfg_test_on_blockless_item_covers_one_statement() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nuse std::thread;\n\npub fn real() {}\n",
        );
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(4));
    }

    #[test]
    fn cfg_all_test_is_detected() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "#[cfg(all(test, feature = \"x\"))]\nmod harness { fn f() {} }\npub fn real() {}\n",
        );
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn allow_covers_same_and_next_code_line() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "fn f() {\n    // lint-allow(no-panic): provably unreachable —\n    // the cap above bounds n\n    x.unwrap();\n}\n",
        );
        assert!(f.allows_rule("no-panic", 2));
        assert!(
            f.allows_rule("no-panic", 4),
            "covers through next code line"
        );
        assert!(!f.allows_rule("no-panic", 5));
        assert!(!f.allows_rule("other-rule", 4));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "fn f() {\n    x.unwrap(); // lint-allow(no-panic): guarded above\n}\n",
        );
        assert!(f.allows_rule("no-panic", 2));
        assert!(!f.allows_rule("no-panic", 3));
    }

    #[test]
    fn file_scope_allow_covers_everything() {
        let f = SourceFile::from_source(
            "crates/core/src/x.rs",
            "// lint-allow-file(no-panic): static exhibit module\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n",
        );
        assert!(f.allows_rule("no-panic", 2));
        assert!(f.allows_rule("no-panic", 3));
    }

    #[test]
    fn empty_reason_is_a_grammar_violation() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "// lint-allow(no-panic)\nfn f() {}\n",
        )]);
        let v = check_allow_grammar(&ws);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "allow-grammar");
    }

    #[test]
    fn doc_comment_mentions_are_prose_not_directives() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "//! Use `lint-allow(no-panic)` to justify invariants.\n\
             /// A `lint-allow(budget-bypass)` directive covers the line.\n\
             fn f(x: Option<u64>) -> u64 { x.unwrap_or(0) }\n",
        )]);
        assert!(ws.files[0].allows.is_empty());
        assert_eq!(check_allow_grammar(&ws), vec![]);
    }

    #[test]
    fn mentions_ident_sees_tests_too() {
        let f = SourceFile::from_source(
            "tests/engine_parity.rs",
            "#[test]\nfn parity() { count_dp(x); }\n",
        );
        assert!(f.mentions_ident("count_dp"));
        assert!(!f.mentions_ident("count_dq"));
    }
}
