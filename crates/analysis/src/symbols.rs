//! Workspace-wide symbol table.
//!
//! Collects every [`FnItem`](crate::items::FnItem) from every scanned
//! file into one indexed table, with the name-resolution policy the
//! call graph builds on. Resolution is deliberately an
//! **over-approximation** (DESIGN.md §3.15): a call site resolves to
//! *every* function the name could plausibly mean, because the lints
//! that consume the graph are reachability arguments — extra edges can
//! only widen the set of paths a rule examines, never hide one.
//!
//! * An unqualified call `foo(…)` resolves to every free function and
//!   method named `foo` in the workspace.
//! * A qualified call `a::b::foo(…)` resolves to the functions named
//!   `foo` whose module path (or `impl` type, for `Type::foo`) ends
//!   with the written qualifier; if nothing matches — e.g. the
//!   qualifier is an external crate — it resolves to nothing.
//! * A method call `recv.foo(…)` resolves to every method named `foo`
//!   (receiver types are not inferred).
//! * A bare reference to a known function name resolves like an
//!   unqualified call, tagged [`CallKind::Ref`](crate::items::CallKind).

use std::collections::HashMap;

use crate::items::{call_sites, parse_items, CallKind, CallSite, FnItem};
use crate::source::Workspace;

/// Index of a function in [`SymbolTable::fns`].
pub type FnId = usize;

/// One function known to the workspace.
#[derive(Clone, Debug)]
pub struct FnSymbol {
    /// The parsed item.
    pub item: FnItem,
    /// Index of the declaring file in the workspace's file list.
    pub file: usize,
    /// Resolved outgoing call sites (filled by
    /// [`SymbolTable::resolve_calls`]).
    pub calls: Vec<ResolvedCall>,
}

/// One call site with its resolution.
#[derive(Clone, Debug)]
pub struct ResolvedCall {
    /// The syntactic site.
    pub site: CallSite,
    /// Every function the site may invoke (sorted, deduplicated).
    pub targets: Vec<FnId>,
}

/// The workspace symbol table.
pub struct SymbolTable<'ws> {
    /// The workspace the table was built from.
    pub ws: &'ws Workspace,
    /// All functions, in (file, source) order — the order is the
    /// deterministic node numbering of the call graph.
    pub fns: Vec<FnSymbol>,
    by_name: HashMap<String, Vec<FnId>>,
}

impl<'ws> SymbolTable<'ws> {
    /// Parses every file and indexes every function, then resolves
    /// every call site.
    #[must_use]
    pub fn build(ws: &'ws Workspace) -> Self {
        let mut fns: Vec<FnSymbol> = Vec::new();
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        for (file_idx, file) in ws.files.iter().enumerate() {
            for item in parse_items(file).fns {
                let id = fns.len();
                by_name.entry(item.name.clone()).or_default().push(id);
                fns.push(FnSymbol {
                    item,
                    file: file_idx,
                    calls: Vec::new(),
                });
            }
        }
        let mut table = SymbolTable { ws, fns, by_name };
        table.resolve_calls();
        table
    }

    /// All functions named `name`.
    #[must_use]
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// `true` iff some function in the workspace is named `name`.
    #[must_use]
    pub fn is_known_fn(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The declaring file of `id`.
    #[must_use]
    pub fn file_of(&self, id: FnId) -> &crate::source::SourceFile {
        &self.ws.files[self.fns[id].file]
    }

    /// Functions declared in the file at workspace-relative `path`
    /// (deterministic source order).
    #[must_use]
    pub fn fns_in_file(&self, path: &str) -> Vec<FnId> {
        (0..self.fns.len())
            .filter(|&id| self.ws.files[self.fns[id].file].path == path)
            .collect()
    }

    /// Resolves a call site according to the module policy above.
    #[must_use]
    pub fn resolve(&self, site: &CallSite) -> Vec<FnId> {
        let candidates = self.named(&site.name);
        if site.qualifier.is_empty() {
            return candidates.to_vec();
        }
        // Qualified: the written qualifier must be a suffix of the
        // candidate's module path, or name the candidate's impl type
        // (`Type::method`), modulo `crate`/`self`/`super`/`Self`
        // segments we cannot anchor without full crate layout.
        // `Self::method` in particular resolves like an unqualified
        // call — dropping the edge would be the unsound direction.
        let qual: Vec<&str> = site
            .qualifier
            .iter()
            .map(String::as_str)
            .filter(|s| !matches!(*s, "crate" | "self" | "super" | "Self"))
            .collect();
        if qual.is_empty() {
            return candidates.to_vec();
        }
        candidates
            .iter()
            .copied()
            .filter(|&id| {
                let item = &self.fns[id].item;
                let last = qual[qual.len() - 1];
                if item.self_type.as_deref() == Some(last) {
                    return true;
                }
                // Suffix match of the qualifier against the module path.
                let m: Vec<&str> = item.module.iter().map(String::as_str).collect();
                m.len() >= qual.len() && m[m.len() - qual.len()..] == qual[..]
            })
            .collect()
    }

    fn resolve_calls(&mut self) {
        let mut resolved: Vec<Vec<ResolvedCall>> = Vec::with_capacity(self.fns.len());
        for sym in &self.fns {
            let Some(body) = sym.item.body else {
                resolved.push(Vec::new());
                continue;
            };
            let file = &self.ws.files[sym.file];
            let sites = call_sites(&file.tokens, body, &|name| self.is_known_fn(name));
            let mut calls = Vec::with_capacity(sites.len());
            for site in sites {
                let mut targets = match site.kind {
                    CallKind::Method => self
                        .named(&site.name)
                        .iter()
                        .copied()
                        .filter(|&id| self.fns[id].item.self_type.is_some())
                        .collect(),
                    _ => self.resolve(&site),
                };
                targets.sort_unstable();
                targets.dedup();
                calls.push(ResolvedCall { site, targets });
            }
            resolved.push(calls);
        }
        for (sym, calls) in self.fns.iter_mut().zip(resolved) {
            sym.calls = calls;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    fn table(ws: &Workspace) -> SymbolTable<'_> {
        SymbolTable::build(ws)
    }

    #[test]
    fn unqualified_calls_resolve_to_every_same_named_fn() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/a.rs", "pub fn helper() {}\n"),
            (
                "crates/core/src/b.rs",
                "pub fn helper() {}\npub fn driver() { helper(); }\n",
            ),
        ]);
        let t = table(&ws);
        let driver = t.named("driver")[0];
        let call = &t.fns[driver].calls[0];
        assert_eq!(call.site.name, "helper");
        assert_eq!(call.targets.len(), 2, "over-approximates both helpers");
    }

    #[test]
    fn qualified_calls_filter_by_module_suffix_and_impl_type() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/confidence/dp.rs", "pub fn run() {}\n"),
            ("crates/core/src/faults.rs", "pub fn run() {}\n"),
            (
                "crates/core/src/driver.rs",
                "pub struct Gamma;\nimpl Gamma { pub fn run(&self) {} }\n\
                 pub fn go() { dp::run(); crate::faults::run(); Gamma::run(); ext::run(); }\n",
            ),
        ]);
        let t = table(&ws);
        let go = t.named("go")[0];
        let calls = &t.fns[go].calls;
        let in_file = |id: FnId| t.file_of(id).path.clone();
        assert_eq!(calls[0].targets.len(), 1);
        assert_eq!(
            in_file(calls[0].targets[0]),
            "crates/core/src/confidence/dp.rs"
        );
        assert_eq!(calls[1].targets.len(), 1);
        assert_eq!(in_file(calls[1].targets[0]), "crates/core/src/faults.rs");
        assert_eq!(calls[2].targets.len(), 1);
        assert!(t.fns[calls[2].targets[0]].item.self_type.is_some());
        assert!(
            calls[3].targets.is_empty(),
            "external crates resolve to nothing"
        );
    }

    #[test]
    fn self_qualified_calls_resolve_like_unqualified_ones() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub struct A;\nimpl A {\n    pub fn slow(p: u64) -> u64 { Self::fast(p) }\n\
             \n    pub fn fast(p: u64) -> u64 { p }\n}\n",
        )]);
        let t = table(&ws);
        let slow = t.named("slow")[0];
        let call = &t.fns[slow].calls[0];
        assert_eq!(call.site.name, "fast");
        assert_eq!(call.targets, vec![t.named("fast")[0]]);
    }

    #[test]
    fn method_calls_resolve_to_methods_only() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub fn tick() {}\npub struct Budget;\nimpl Budget { pub fn tick(&self) {} }\n\
             pub fn f(b: &Budget) { b.tick(); }\n",
        )]);
        let t = table(&ws);
        let f = t.named("f")[0];
        let call = &t.fns[f].calls[0];
        assert_eq!(call.targets.len(), 1);
        assert!(t.fns[call.targets[0]].item.self_type.is_some());
    }

    #[test]
    fn bare_refs_to_known_fns_are_edges() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "pub fn worker() {}\npub fn spawn_all() { drive(worker); }\n",
        )]);
        let t = table(&ws);
        let f = t.named("spawn_all")[0];
        let names: Vec<(&str, CallKind)> = t.fns[f]
            .calls
            .iter()
            .map(|c| (c.site.name.as_str(), c.site.kind))
            .collect();
        assert!(names.contains(&("worker", CallKind::Ref)));
    }
}
