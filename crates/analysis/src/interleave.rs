//! A schedule-exhaustive mini model checker for the parallel engine
//! layer's coordination protocols.
//!
//! `partition::run_chunks` promises bit-identical answers at every thread
//! count. That rests on a few tiny concurrent protocols: the
//! [`SearchControl`] first-hit arbitration (lowest-chunk-wins via
//! `fetch_min`), the [`Budget`] fork/cancel discipline (a monotone
//! shared flag observed by every fork), and the per-source
//! `CircuitBreaker` recovery automaton driven by `fetch_all` under
//! cancellation. Sampled proptests can miss a bad
//! interleaving; this module *enumerates all of them*. Each protocol is
//! modelled as virtual threads of atomic operations over shared state; a
//! DFS explores every schedule (which runnable thread performs its next
//! operation) and asserts the protocol invariants in every terminal
//! state:
//!
//! * **serial equivalence** — the arbitrated first hit equals the serial
//!   engine's answer (the lowest-indexed chunk holding a witness) in
//!   every schedule, and a worker abandons only when its answer could
//!   never have been selected;
//! * **cancel monotonicity** — once any thread observes the cancel flag
//!   set it can never observe it clear again, a child forked after
//!   cancellation observes it on its very first check, and each caller
//!   unwinds with at most one error;
//! * **breaker recovery** — no lost half-open probes (a `HalfOpen`
//!   breaker keeps granting the probe until an outcome is actually
//!   recorded, so a probe unwound by a budget trip is re-granted) and
//!   quarantine monotone under cancellation (only a recorded trip ever
//!   refills the quarantine window — an unwind never does).
//!
//! The models are deliberately small (2–3 workers, ≤ 3 operations each:
//! thousands to ~a hundred thousand schedules) — large enough to exhibit
//! every ordering of the real protocols' atomic accesses, small enough to
//! run on every CI invocation. Deliberately-broken protocol variants
//! (last-write-wins arbitration, a clearable cancel flag, a probe-losing
//! breaker, a quarantine-refilling unwind handler) are kept as test
//! fixtures to prove the checker actually distinguishes correct from
//! incorrect protocols.
//!
//! [`SearchControl`]: ../../pscds_core/partition/struct.SearchControl.html
//! [`Budget`]: ../../pscds_core/govern/struct.Budget.html

use std::fmt;

/// One virtual thread in a model.
pub trait ModelThread<S>: Clone {
    /// `true` once the thread has no further operations.
    fn done(&self) -> bool;
    /// `true` iff the thread may perform its next operation now (models
    /// e.g. "a child cannot run before its budget is forked").
    fn runnable(&self, shared: &S) -> bool;
    /// Performs exactly one atomic operation.
    fn step(&mut self, shared: &mut S);
}

/// The invariant check run in every terminal state of [`explore`].
pub type TerminalCheck<'a, S, T> = &'a mut dyn FnMut(&S, &[T]) -> Result<(), String>;

/// Exhaustively explores every schedule of `threads` over `shared`,
/// calling `terminal` on each terminal state. Returns the number of
/// distinct schedules (terminal states) visited, or an error if a
/// reachable state deadlocks (threads pending but none runnable) or
/// `terminal` reports a violation.
///
/// # Errors
/// The first invariant violation or deadlock found, with the schedule
/// count so far.
pub fn explore<S: Clone, T: ModelThread<S>>(
    shared: &S,
    threads: &[T],
    terminal: TerminalCheck<'_, S, T>,
) -> Result<u64, String> {
    let pending: Vec<usize> = (0..threads.len()).filter(|&i| !threads[i].done()).collect();
    if pending.is_empty() {
        terminal(shared, threads)?;
        return Ok(1);
    }
    let runnable: Vec<usize> = pending
        .iter()
        .copied()
        .filter(|&i| threads[i].runnable(shared))
        .collect();
    if runnable.is_empty() {
        return Err(format!(
            "deadlock: {} thread(s) pending but none runnable",
            pending.len()
        ));
    }
    let mut schedules = 0u64;
    for i in runnable {
        let mut s = shared.clone();
        let mut ts = threads.to_vec();
        ts[i].step(&mut s);
        schedules += explore(&s, &ts, terminal)?;
    }
    Ok(schedules)
}

/// The number of interleavings of straight-line threads with the given
/// operation counts: the multinomial coefficient `(Σk)! / Π k!`.
#[must_use]
pub fn multinomial(op_counts: &[u64]) -> u64 {
    let mut result = 1u64;
    let mut placed = 0u64;
    for &k in op_counts {
        for j in 1..=k {
            placed += 1;
            result = result * placed / j; // exact: C(placed, j) accumulates integrally
        }
    }
    result
}

/// Outcome of exhaustively checking one model configuration family.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// Which model ran.
    pub model: String,
    /// Number of distinct `(witness/politeness/…)` configurations.
    pub configurations: u64,
    /// Total schedules explored across all configurations.
    pub schedules: u64,
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} configurations, {} schedules, all invariants hold",
            self.model, self.configurations, self.schedules
        )
    }
}

// ---------------------------------------------------------------------
// Model 1: SearchControl first-hit arbitration.
// ---------------------------------------------------------------------

/// How `record_hit` writes the shared cell. [`Arbitration::FetchMin`] is
/// the real protocol; [`Arbitration::LastWriteWins`] is a deliberately
/// broken variant used to prove the checker detects schedule-dependent
/// answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arbitration {
    /// `fetch_min` — the real lowest-chunk-wins protocol.
    FetchMin,
    /// A plain store — broken: the answer depends on the schedule.
    LastWriteWins,
}

#[derive(Clone, Debug)]
struct ScShared {
    first_hit: usize,
    arbitration: Arbitration,
}

/// A model worker on chunk `chunk`. It polls `superseded` up to
/// `polls_remaining` times (a *polite* worker abandons on a true
/// observation; a *stubborn* one records anyway — both are legal in the
/// real driver, where the superseded check is amortized), then records
/// its hit if it holds a witness.
#[derive(Clone, Debug)]
struct ScWorker {
    chunk: usize,
    has_witness: bool,
    polite: bool,
    polls_remaining: u8,
    observations: Vec<bool>,
    abandoned: bool,
    finished: bool,
}

impl ModelThread<ScShared> for ScWorker {
    fn done(&self) -> bool {
        self.finished
    }
    fn runnable(&self, _shared: &ScShared) -> bool {
        true
    }
    fn step(&mut self, shared: &mut ScShared) {
        if self.polls_remaining > 0 {
            self.polls_remaining -= 1;
            let superseded = shared.first_hit < self.chunk;
            self.observations.push(superseded);
            if superseded && self.polite {
                self.abandoned = true;
                self.finished = true;
            }
        } else {
            if self.has_witness {
                shared.first_hit = match shared.arbitration {
                    Arbitration::FetchMin => shared.first_hit.min(self.chunk),
                    Arbitration::LastWriteWins => self.chunk,
                };
            }
            self.finished = true;
        }
    }
}

/// Exhaustively checks the `SearchControl` model for `workers` workers
/// (chunk indices `0..workers`), over every combination of
/// witness-holding and polite/stubborn workers, under the given
/// arbitration semantics.
///
/// Invariants asserted in every terminal state of every schedule:
/// 1. **lowest-chunk-wins / serial equivalence** — the final first-hit
///    cell equals the lowest chunk holding a witness (`usize::MAX` when
///    none);
/// 2. **abandonment soundness** — an abandoned worker's chunk is
///    strictly above the final winner, so its answer could never have
///    been selected;
/// 3. **superseded monotonicity** — per worker, once `superseded` is
///    observed true it is never observed false again.
///
/// # Errors
/// The first violated invariant, with the offending configuration.
pub fn check_search_control(
    workers: usize,
    arbitration: Arbitration,
) -> Result<ModelReport, String> {
    assert!((2..=3).contains(&workers), "model sized for 2-3 workers");
    let mut configurations = 0u64;
    let mut schedules = 0u64;
    for witness_mask in 0u32..(1 << workers) {
        for polite_mask in 0u32..(1 << workers) {
            configurations += 1;
            let threads: Vec<ScWorker> = (0..workers)
                .map(|w| ScWorker {
                    chunk: w,
                    has_witness: witness_mask >> w & 1 == 1,
                    polite: polite_mask >> w & 1 == 1,
                    polls_remaining: 2,
                    observations: Vec::new(),
                    abandoned: false,
                    finished: false,
                })
                .collect();
            let serial: usize = (0..workers)
                .find(|w| witness_mask >> w & 1 == 1)
                .unwrap_or(usize::MAX);
            let shared = ScShared {
                first_hit: usize::MAX,
                arbitration,
            };
            let config = format!(
                "workers={workers} witnesses={witness_mask:0w$b} polite={polite_mask:0w$b}",
                w = workers
            );
            schedules += explore(&shared, &threads, &mut |s, ts| {
                if s.first_hit != serial {
                    return Err(format!(
                        "[{config}] schedule-dependent answer: final first_hit {} != serial winner {}",
                        s.first_hit, serial
                    ));
                }
                for t in ts {
                    if t.abandoned && s.first_hit >= t.chunk {
                        return Err(format!(
                            "[{config}] unsound abandonment: chunk {} abandoned but final winner is {}",
                            t.chunk, s.first_hit
                        ));
                    }
                    if t.observations.windows(2).any(|w| w[0] && !w[1]) {
                        return Err(format!(
                            "[{config}] superseded flickered false after true on chunk {}",
                            t.chunk
                        ));
                    }
                }
                Ok(())
            })?;
        }
    }
    Ok(ModelReport {
        model: format!("search-control[{workers} workers]"),
        configurations,
        schedules,
    })
}

// ---------------------------------------------------------------------
// Model 2: Budget fork/cancel.
// ---------------------------------------------------------------------

/// Cancel-flag semantics. [`CancelFlag::Monotone`] is the real protocol
/// (a latch that is never cleared); [`CancelFlag::ClearedOnObserve`] is a
/// broken variant where a child's check consumes the flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelFlag {
    /// Set-once latch — the real `Arc<AtomicBool>` discipline.
    Monotone,
    /// Observing the flag clears it — broken: siblings miss the cancel.
    ClearedOnObserve,
}

#[derive(Clone, Debug)]
struct BcShared {
    cancelled: bool,
    forked: Vec<bool>,
    cancelled_at_fork: Vec<Option<bool>>,
    semantics: CancelFlag,
}

#[derive(Clone, Debug)]
enum BcThread {
    /// Trips the shared cancel flag (models Ctrl-C / a sibling error).
    Canceller { fired: bool },
    /// Forks one child budget per step, in index order.
    Parent { next_fork: usize, total: usize },
    /// A forked worker: checks the flag up to twice; an observed cancel
    /// unwinds with exactly one error.
    Child {
        index: usize,
        checks_remaining: u8,
        observations: Vec<bool>,
        errors: u32,
        completed: bool,
    },
}

impl ModelThread<BcShared> for BcThread {
    fn done(&self) -> bool {
        match self {
            BcThread::Canceller { fired } => *fired,
            BcThread::Parent { next_fork, total } => next_fork >= total,
            BcThread::Child {
                checks_remaining,
                errors,
                ..
            } => *checks_remaining == 0 || *errors > 0,
        }
    }
    fn runnable(&self, shared: &BcShared) -> bool {
        match self {
            // A child cannot run before its budget exists.
            BcThread::Child { index, .. } => shared.forked[*index],
            _ => true,
        }
    }
    fn step(&mut self, shared: &mut BcShared) {
        match self {
            BcThread::Canceller { fired } => {
                shared.cancelled = true;
                *fired = true;
            }
            BcThread::Parent { next_fork, .. } => {
                shared.forked[*next_fork] = true;
                shared.cancelled_at_fork[*next_fork] = Some(shared.cancelled);
                *next_fork += 1;
            }
            BcThread::Child {
                checks_remaining,
                observations,
                errors,
                completed,
                ..
            } => {
                let seen = shared.cancelled;
                if seen && shared.semantics == CancelFlag::ClearedOnObserve {
                    shared.cancelled = false;
                }
                observations.push(seen);
                *checks_remaining -= 1;
                if seen {
                    *errors += 1; // unwind: done() is now true
                } else if *checks_remaining == 0 {
                    *completed = true;
                }
            }
        }
    }
}

/// Exhaustively checks the `Budget` fork/cancel model with `children`
/// forked workers (2 or 3), both with and without a concurrent
/// canceller thread, under the given flag semantics.
///
/// Invariants asserted in every terminal state of every schedule:
/// 1. **pre-fork cancellation is observed** — a child whose budget was
///    forked after the flag was set errors on its *first* check;
/// 2. **exactly-once unwinding** — no child reports more than one
///    `BudgetExceeded` (it unwinds at the first observation), and a
///    child errors iff it observed the flag;
/// 3. **cancel monotonicity** — per child, the flag is never observed
///    clear after being observed set;
/// 4. **no spurious cancellation** — without a canceller thread every
///    child runs to completion with zero errors.
///
/// # Errors
/// The first violated invariant, with the offending configuration.
pub fn check_budget_fork_cancel(
    children: usize,
    semantics: CancelFlag,
) -> Result<ModelReport, String> {
    assert!((2..=3).contains(&children), "model sized for 2-3 children");
    let mut configurations = 0u64;
    let mut schedules = 0u64;
    for with_canceller in [false, true] {
        configurations += 1;
        let mut threads: Vec<BcThread> = vec![BcThread::Parent {
            next_fork: 0,
            total: children,
        }];
        if with_canceller {
            threads.push(BcThread::Canceller { fired: false });
        }
        for index in 0..children {
            threads.push(BcThread::Child {
                index,
                checks_remaining: 2,
                observations: Vec::new(),
                errors: 0,
                completed: false,
            });
        }
        let shared = BcShared {
            cancelled: false,
            forked: vec![false; children],
            cancelled_at_fork: vec![None; children],
            semantics,
        };
        let config = format!("children={children} canceller={with_canceller}");
        schedules += explore(&shared, &threads, &mut |s, ts| {
            for t in ts {
                let BcThread::Child {
                    index,
                    observations,
                    errors,
                    completed,
                    ..
                } = t
                else {
                    continue;
                };
                if s.cancelled_at_fork[*index] == Some(true) && observations.first() != Some(&true)
                {
                    return Err(format!(
                        "[{config}] child {index} was forked after cancellation but its first check observed the flag clear"
                    ));
                }
                if *errors > 1 {
                    return Err(format!(
                        "[{config}] child {index} double-errored ({errors} BudgetExceeded)"
                    ));
                }
                if (*errors == 1) != observations.contains(&true) {
                    return Err(format!(
                        "[{config}] child {index} error/observation mismatch"
                    ));
                }
                if observations.windows(2).any(|w| w[0] && !w[1]) {
                    return Err(format!(
                        "[{config}] child {index} observed the cancel flag clear after set — not monotone"
                    ));
                }
                if !with_canceller && (*errors > 0 || !*completed) {
                    return Err(format!("[{config}] child {index} cancelled spuriously"));
                }
            }
            Ok(())
        })?;
    }
    Ok(ModelReport {
        model: format!("budget-fork-cancel[{children} children]"),
        configurations,
        schedules,
    })
}

// ---------------------------------------------------------------------
// Model 3: per-source circuit breaker under cancellation.
// ---------------------------------------------------------------------

/// Breaker protocol semantics. [`BreakerDiscipline::Faithful`] mirrors
/// `pscds_core::source::CircuitBreaker`; the other two are deliberately
/// broken variants kept to prove the checker distinguishes correct from
/// incorrect recovery behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDiscipline {
    /// The real automaton: `HalfOpen` keeps granting the probe until an
    /// outcome is recorded, and cancellation never touches the state.
    Faithful,
    /// Broken: `HalfOpen` denies after the first probe grant — a probe
    /// unwound by a budget trip is *lost* and the breaker deadlocks in
    /// permanent denial.
    DenyWhileHalfOpen,
    /// Broken: a cancellation-unwind "cleanup" refills the quarantine
    /// window — quarantine is no longer monotone under cancellation, so
    /// repeated trips can deny a recovering source forever.
    RefillQuarantineOnCancel,
}

/// The model breaker's thresholds (small on purpose: threshold 2,
/// quarantine 1 reaches every state within two short epochs).
const BK_THRESHOLD: u32 = 2;
const BK_QUARANTINE: u32 = 1;

/// Mirror of `BreakerState`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BkState {
    Closed,
    Open { remaining: u32 },
    HalfOpen,
}

#[derive(Clone, Debug)]
struct BkShared {
    state: BkState,
    failures: u32,
    cancelled: bool,
    discipline: BreakerDiscipline,
    /// Admissions decided while the state was `HalfOpen` that came back
    /// `Denied` — a lost probe (invariant 1).
    denied_in_half_open: u32,
    /// Quarantine refills not caused by a recorded failure tripping the
    /// breaker (invariant 2).
    refills_without_trip: u32,
    /// Trips recorded (`record_failure` returning true in the real API).
    trips: u32,
}

impl BkShared {
    /// Mirror of `CircuitBreaker::admit`.
    fn admit(&mut self) -> Admission2 {
        match self.state {
            BkState::Closed => Admission2::Granted,
            BkState::Open { remaining } if remaining > 0 => {
                self.state = BkState::Open {
                    remaining: remaining - 1,
                };
                Admission2::Denied
            }
            BkState::Open { .. } => {
                self.state = BkState::HalfOpen;
                Admission2::Probe
            }
            BkState::HalfOpen => match self.discipline {
                BreakerDiscipline::DenyWhileHalfOpen => {
                    self.denied_in_half_open += 1;
                    Admission2::Denied
                }
                _ => Admission2::Probe,
            },
        }
    }

    /// Mirror of `CircuitBreaker::record_success`.
    fn record_success(&mut self) {
        self.failures = 0;
        self.state = BkState::Closed;
    }

    /// Mirror of `CircuitBreaker::record_failure`.
    fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
        let trip = match self.state {
            BkState::HalfOpen => true,
            BkState::Closed => self.failures >= BK_THRESHOLD,
            BkState::Open { .. } => false,
        };
        if trip {
            self.state = BkState::Open {
                remaining: BK_QUARANTINE,
            };
            self.trips += 1;
        }
    }
}

/// Local admission mirror (keeps the model self-contained).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Admission2 {
    Granted,
    Probe,
    Denied,
}

/// One access epoch driving the shared breaker: a scripted sequence of
/// attempts, each two atomic operations — `admit` (the real loop's
/// tick + breaker consultation) and `resolve` (the fetch outcome being
/// recorded). A cancellation observed at either point unwinds the epoch
/// without recording, exactly like a `BudgetExceeded` between the
/// admission and `record_*` in `fetch_all` (a timeout charge can trip
/// there). `epoch` 1 runs only after epoch 0 finished or unwound, on a
/// fresh budget slice (it ignores the cancel flag) — the real ladder's
/// `Budget::renewed` recovery path, which is where a lost probe or a
/// refilled quarantine would strand a recovering source.
#[derive(Clone, Debug)]
struct BkDriver {
    epoch: usize,
    /// Outcome script: `true` = the fetch succeeds.
    outcomes: Vec<bool>,
    next: usize,
    /// `Some` between an `admit` that granted/probed and its `resolve`.
    admitted: Option<Admission2>,
    unwound: bool,
    finished: bool,
}

#[derive(Clone, Debug)]
struct BkEpochs {
    shared: BkShared,
    /// `true` once epoch 0's driver is done (epoch 1's run condition).
    epoch0_done: bool,
}

impl ModelThread<BkEpochs> for BkDriver {
    fn done(&self) -> bool {
        self.finished
    }
    fn runnable(&self, shared: &BkEpochs) -> bool {
        self.epoch == 0 || shared.epoch0_done
    }
    fn step(&mut self, shared: &mut BkEpochs) {
        let cancelled = self.epoch == 0 && shared.shared.cancelled;
        if cancelled {
            // Unwind (BudgetExceeded). The faithful discipline leaves the
            // breaker untouched; the broken cleanup refills quarantine.
            if shared.shared.discipline == BreakerDiscipline::RefillQuarantineOnCancel
                && self.admitted.is_some()
            {
                let refill = matches!(shared.shared.state, BkState::Open { remaining } if remaining < BK_QUARANTINE)
                    || shared.shared.state == BkState::HalfOpen;
                if refill {
                    shared.shared.state = BkState::Open {
                        remaining: BK_QUARANTINE,
                    };
                    shared.shared.refills_without_trip += 1;
                }
            }
            self.unwound = true;
            self.finished = true;
        } else if let Some(admission) = self.admitted.take() {
            debug_assert_ne!(admission, Admission2::Denied);
            if self.outcomes[self.next] {
                shared.shared.record_success();
            } else {
                shared.shared.record_failure();
            }
            self.next += 1;
            if self.next >= self.outcomes.len() {
                self.finished = true;
            }
        } else {
            match shared.shared.admit() {
                Admission2::Denied => {
                    // Denied attempts resolve immediately (quarantined).
                    self.next += 1;
                    if self.next >= self.outcomes.len() {
                        self.finished = true;
                    }
                }
                admission => self.admitted = Some(admission),
            }
        }
        if self.epoch == 0 && self.finished {
            shared.epoch0_done = true;
        }
    }
}

/// The cancellation source (a budget trip / Ctrl-C during epoch 0).
#[derive(Clone, Debug)]
struct BkCanceller {
    fired: bool,
}

impl ModelThread<BkEpochs> for BkCanceller {
    fn done(&self) -> bool {
        self.fired
    }
    fn runnable(&self, _shared: &BkEpochs) -> bool {
        true
    }
    fn step(&mut self, shared: &mut BkEpochs) {
        shared.shared.cancelled = true;
        self.fired = true;
    }
}

/// Exhaustively checks the circuit-breaker protocol
/// (`pscds_core::source::CircuitBreaker`) under every interleaving of a
/// two-epoch access driver with a cancellation source, over every
/// starting state and fetch-outcome script.
///
/// Invariants asserted in every terminal state of every schedule:
/// 1. **no lost half-open probes** — an admission decided while the
///    breaker is `HalfOpen` is never denied, so a probe unwound by a
///    budget trip is simply re-granted to the next attempt (the next
///    epoch recovers the source instead of deadlocking in denial);
/// 2. **quarantine monotone under cancellation** — the quarantine
///    window is refilled only by a recorded failure that trips the
///    breaker, never by a cancellation unwind, so `remaining` is
///    non-increasing between trips;
/// 3. **trip accounting** — every refill corresponds to exactly one
///    recorded trip (`refills == trips`).
///
/// # Errors
/// The first violated invariant, with the offending configuration.
pub fn check_breaker(discipline: BreakerDiscipline) -> Result<ModelReport, String> {
    /// Heterogeneous thread dispatch (drivers + canceller in one vec).
    #[derive(Clone, Debug)]
    enum BkThread {
        Driver(BkDriver),
        Canceller(BkCanceller),
    }
    impl ModelThread<BkEpochs> for BkThread {
        fn done(&self) -> bool {
            match self {
                BkThread::Driver(d) => d.done(),
                BkThread::Canceller(c) => c.done(),
            }
        }
        fn runnable(&self, s: &BkEpochs) -> bool {
            match self {
                BkThread::Driver(d) => d.runnable(s),
                BkThread::Canceller(c) => c.runnable(s),
            }
        }
        fn step(&mut self, s: &mut BkEpochs) {
            match self {
                BkThread::Driver(d) => d.step(s),
                BkThread::Canceller(c) => c.step(s),
            }
        }
    }
    let starts = [
        BkState::Closed,
        BkState::Open {
            remaining: BK_QUARANTINE,
        },
        BkState::Open { remaining: 0 },
        BkState::HalfOpen,
    ];
    let mut configurations = 0u64;
    let mut schedules = 0u64;
    for start in starts {
        for script0 in 0u32..4 {
            for script1 in 0u32..4 {
                for with_canceller in [false, true] {
                    configurations += 1;
                    let outcomes = |script: u32| vec![(script & 1) == 1, ((script >> 1) & 1) == 1];
                    let driver = |epoch: usize, script: u32| BkDriver {
                        epoch,
                        outcomes: outcomes(script),
                        next: 0,
                        admitted: None,
                        unwound: false,
                        finished: false,
                    };
                    let shared = BkEpochs {
                        shared: BkShared {
                            state: start,
                            failures: 0,
                            cancelled: false,
                            discipline,
                            denied_in_half_open: 0,
                            refills_without_trip: 0,
                            trips: 0,
                        },
                        epoch0_done: false,
                    };
                    let config = format!(
                        "start={start:?} scripts={script0:02b}/{script1:02b} canceller={with_canceller}"
                    );
                    let mut threads = vec![
                        BkThread::Driver(driver(0, script0)),
                        BkThread::Driver(driver(1, script1)),
                    ];
                    if with_canceller {
                        threads.push(BkThread::Canceller(BkCanceller { fired: false }));
                    }
                    schedules += explore(&shared, &threads, &mut |s, ts| {
                        if s.shared.denied_in_half_open > 0 {
                            return Err(format!(
                                "[{config}] lost half-open probe: {} admission(s) denied in HalfOpen",
                                s.shared.denied_in_half_open
                            ));
                        }
                        if s.shared.refills_without_trip > 0 {
                            return Err(format!(
                                "[{config}] quarantine refilled without a recorded trip ({}×) — \
                                 not monotone under cancellation",
                                s.shared.refills_without_trip
                            ));
                        }
                        let epoch1 = ts.iter().find_map(|t| match t {
                            BkThread::Driver(d) if d.epoch == 1 => Some(d),
                            _ => None,
                        });
                        if let Some(d) = epoch1 {
                            if d.unwound {
                                return Err(format!(
                                    "[{config}] epoch 1 runs on a fresh budget slice and must \
                                     never unwind"
                                ));
                            }
                        }
                        Ok(())
                    })?;
                }
            }
        }
    }
    Ok(ModelReport {
        model: format!("breaker[{discipline:?}]"),
        configurations,
        schedules,
    })
}

/// Runs every model at 2 and 3 workers under the *real* protocol
/// semantics — the CI gate.
///
/// # Errors
/// The first invariant violation (there are none for the shipped
/// protocols; a failure here means `SearchControl`/`Budget`/breaker
/// semantics drifted).
pub fn run_all() -> Result<Vec<ModelReport>, String> {
    Ok(vec![
        check_search_control(2, Arbitration::FetchMin)?,
        check_search_control(3, Arbitration::FetchMin)?,
        check_budget_fork_cancel(2, CancelFlag::Monotone)?,
        check_budget_fork_cancel(3, CancelFlag::Monotone)?,
        check_breaker(BreakerDiscipline::Faithful)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial straight-line thread for explorer calibration.
    #[derive(Clone)]
    struct Noop {
        ops: u8,
    }
    impl ModelThread<()> for Noop {
        fn done(&self) -> bool {
            self.ops == 0
        }
        fn runnable(&self, (): &()) -> bool {
            true
        }
        fn step(&mut self, (): &mut ()) {
            self.ops -= 1;
        }
    }

    #[test]
    fn explorer_enumerates_exactly_the_multinomial_schedules() {
        for (counts, expected) in [
            (vec![2u8, 2], 6u64),  // 4!/(2!2!)
            (vec![3, 3], 20),      // 6!/(3!3!)
            (vec![2, 2, 2], 90),   // 6!/(2!2!2!)
            (vec![3, 3, 3], 1680), // 9!/(3!3!3!)
        ] {
            let threads: Vec<Noop> = counts.iter().map(|&ops| Noop { ops }).collect();
            let n = explore(&(), &threads, &mut |(), _| Ok(())).unwrap();
            assert_eq!(n, expected, "counts {counts:?}");
            let as_u64: Vec<u64> = counts.iter().map(|&c| u64::from(c)).collect();
            assert_eq!(multinomial(&as_u64), expected);
        }
    }

    #[test]
    fn search_control_invariants_hold_for_real_arbitration() {
        let two = check_search_control(2, Arbitration::FetchMin).unwrap();
        assert_eq!(two.configurations, 16);
        assert!(two.schedules > 0);
        let three = check_search_control(3, Arbitration::FetchMin).unwrap();
        assert_eq!(three.configurations, 64);
        assert!(three.schedules > three.configurations);
    }

    #[test]
    fn last_write_wins_arbitration_is_caught() {
        let err = check_search_control(2, Arbitration::LastWriteWins).unwrap_err();
        assert!(
            err.contains("schedule-dependent answer"),
            "expected a serial-equivalence violation, got: {err}"
        );
    }

    #[test]
    fn budget_fork_cancel_invariants_hold_for_monotone_flag() {
        for children in [2usize, 3] {
            let r = check_budget_fork_cancel(children, CancelFlag::Monotone).unwrap();
            assert_eq!(r.configurations, 2);
            assert!(r.schedules > 0, "children={children}");
        }
    }

    #[test]
    fn clearable_cancel_flag_is_caught() {
        let err = check_budget_fork_cancel(2, CancelFlag::ClearedOnObserve).unwrap_err();
        assert!(
            err.contains("monotone") || err.contains("forked after cancellation"),
            "expected a monotonicity violation, got: {err}"
        );
    }

    #[test]
    fn breaker_invariants_hold_for_the_faithful_automaton() {
        let r = check_breaker(BreakerDiscipline::Faithful).unwrap();
        // 4 start states × 4 epoch-0 scripts × 4 epoch-1 scripts × {with,
        // without} canceller.
        assert_eq!(r.configurations, 128);
        assert!(r.schedules > r.configurations);
    }

    #[test]
    fn lost_half_open_probe_is_caught() {
        let err = check_breaker(BreakerDiscipline::DenyWhileHalfOpen).unwrap_err();
        assert!(
            err.contains("lost half-open probe"),
            "expected a lost-probe violation, got: {err}"
        );
    }

    #[test]
    fn quarantine_refill_on_cancellation_is_caught() {
        let err = check_breaker(BreakerDiscipline::RefillQuarantineOnCancel).unwrap_err();
        assert!(
            err.contains("not monotone under cancellation"),
            "expected a monotonicity violation, got: {err}"
        );
    }

    #[test]
    fn run_all_passes_and_covers_every_model() {
        let reports = run_all().unwrap();
        assert_eq!(reports.len(), 5);
        assert!(reports.iter().all(|r| r.schedules > 0));
        let names: Vec<&str> = reports.iter().map(|r| r.model.as_str()).collect();
        assert!(names[0].contains("search-control[2"));
        assert!(names[3].contains("budget-fork-cancel[3"));
        assert!(names[4].contains("breaker[Faithful]"));
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        #[derive(Clone)]
        struct Stuck;
        impl ModelThread<()> for Stuck {
            fn done(&self) -> bool {
                false
            }
            fn runnable(&self, (): &()) -> bool {
                false
            }
            fn step(&mut self, (): &mut ()) {}
        }
        let err = explore(&(), &[Stuck], &mut |(), _| Ok(())).unwrap_err();
        assert!(err.contains("deadlock"));
    }
}
