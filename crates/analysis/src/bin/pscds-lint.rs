//! `pscds-lint` — run the workspace invariant lints and the
//! schedule-exhaustive interleaving models; exit non-zero on any
//! violation.
//!
//! ```text
//! pscds-lint [--root <DIR>] [--list] [--no-interleave]
//!            [--format text|json] [--explain CODE] [--suppressions]
//!            [--validate-json FILE]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`.
//!
//! `--format json` emits the deterministic `pscds-lint-json/1` report
//! (violations, rule registry, suppression census) on stdout and
//! suppresses the human-readable transcript; the interleave gate still
//! runs unless `--no-interleave` is given, with its transcript on
//! stderr so stdout stays pure JSON.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pscds_analysis::{interleave, json, lints, source::Workspace};

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

const USAGE: &str = "usage: pscds-lint [--root <DIR>] [--list] [--no-interleave] \
[--format text|json] [--explain CODE] [--suppressions] [--validate-json FILE]";

fn explain(code: &str) -> ExitCode {
    // Accept either a stable code (`L4`) or a rule id (`no-panic`).
    let looked_up = lints::explain_for(code).or_else(|| {
        lints::code_for(code)
            .and_then(lints::explain_for)
            .map(|(_, text)| (code, text))
    });
    match looked_up {
        Some((rule, text)) => {
            let shown_code = lints::code_for(rule).unwrap_or(code);
            println!("{shown_code} {rule}");
            println!();
            println!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("pscds-lint: unknown rule or code `{code}` (try --list)");
            ExitCode::FAILURE
        }
    }
}

fn validate_json(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("pscds-lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("pscds-lint: {path}: malformed JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match json::validate_report(&doc) {
        Ok(violations) => {
            println!(
                "pscds-lint: {path}: valid {} report, {violations} violation(s)",
                json::SCHEMA
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pscds-lint: {path}: schema violation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut interleave_gate = true;
    let mut json_out = false;
    let mut suppressions = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("pscds-lint: --root requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => list = true,
            "--no-interleave" => interleave_gate = false,
            "--format" => match args.next().as_deref() {
                Some("json") => json_out = true,
                Some("text") => json_out = false,
                Some(other) => {
                    eprintln!("pscds-lint: unknown format `{other}` (expected text or json)");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("pscds-lint: --format requires text or json");
                    return ExitCode::FAILURE;
                }
            },
            "--explain" => match args.next() {
                Some(code) => return explain(&code),
                None => {
                    eprintln!("pscds-lint: --explain requires a rule code (try --list)");
                    return ExitCode::FAILURE;
                }
            },
            "--suppressions" => suppressions = true,
            "--validate-json" => match args.next() {
                Some(path) => return validate_json(&path),
                None => {
                    eprintln!("pscds-lint: --validate-json requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pscds-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if list {
        for rule in lints::registry() {
            println!("{}  {:<18} {}", rule.code, rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| find_workspace_root(&cwd)) else {
        eprintln!("pscds-lint: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
        return ExitCode::FAILURE;
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "pscds-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if suppressions {
        let stats = lints::suppression_stats(&ws);
        println!(
            "pscds-lint: {} suppression(s) ({} file-scope) across {} file(s)",
            stats.directives, stats.file_scope, stats.files
        );
        for (rule, count) in &stats.by_rule {
            println!("  {count:>4}  {rule}");
        }
        return ExitCode::SUCCESS;
    }

    if !json_out {
        println!(
            "pscds-lint: {} source files under {}",
            ws.files.len(),
            root.display()
        );
    }

    let violations = lints::run_all(&ws);
    let mut failed = !violations.is_empty();
    if json_out {
        // The report carries its own trailing newline; keep stdout an
        // exact byte-for-byte copy of the renderer's output.
        print!("{}", json::render_report(&ws, &violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
        if failed {
            println!("pscds-lint: {} violation(s)", violations.len());
        } else {
            println!(
                "pscds-lint: all {} lint rules clean",
                lints::registry().len()
            );
        }
    }

    if interleave_gate {
        match interleave::run_all() {
            Ok(reports) => {
                for r in &reports {
                    if json_out {
                        eprintln!("interleave: {r}");
                    } else {
                        println!("interleave: {r}");
                    }
                }
            }
            Err(e) => {
                if json_out {
                    eprintln!("interleave: FAILED: {e}");
                } else {
                    println!("interleave: FAILED: {e}");
                }
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
