//! `pscds-lint` — run the workspace invariant lints and the
//! schedule-exhaustive interleaving models; exit non-zero on any
//! violation.
//!
//! ```text
//! pscds-lint [--root <DIR>] [--list] [--no-interleave]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pscds_analysis::{interleave, lints, source::Workspace};

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut interleave_gate = true;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("pscds-lint: --root requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => list = true,
            "--no-interleave" => interleave_gate = false,
            "--help" | "-h" => {
                println!("usage: pscds-lint [--root <DIR>] [--list] [--no-interleave]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pscds-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if list {
        for rule in lints::registry() {
            println!("{}  {:<18} {}", rule.code, rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| find_workspace_root(&cwd)) else {
        eprintln!("pscds-lint: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
        return ExitCode::FAILURE;
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "pscds-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "pscds-lint: {} source files under {}",
        ws.files.len(),
        root.display()
    );

    let violations = lints::run_all(&ws);
    for v in &violations {
        println!("{v}");
    }
    let mut failed = !violations.is_empty();
    if failed {
        println!("pscds-lint: {} violation(s)", violations.len());
    } else {
        println!(
            "pscds-lint: all {} lint rules clean",
            lints::registry().len()
        );
    }

    if interleave_gate {
        match interleave::run_all() {
            Ok(reports) => {
                for r in &reports {
                    println!("interleave: {r}");
                }
            }
            Err(e) => {
                println!("interleave: FAILED: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
