//! Stress and cross-identity tests for the bignum substrate: sizes and
//! shapes the model counter actually produces.

use pscds_numeric::binomial::{binomial_u128, binomial_ubig};
use pscds_numeric::{BinomialTable, Frac, Rational, UBig};

#[test]
fn factorial_1000_digits() {
    // 1000! has 2568 decimal digits and ends in 249 zeros.
    let mut fact = UBig::one();
    for i in 2..=1000u64 {
        fact = fact.mul_u64(i);
    }
    let text = fact.to_string();
    assert_eq!(text.len(), 2568);
    assert!(text.ends_with(&"0".repeat(249)));
    assert!(!text.ends_with(&"0".repeat(250)));
    // Round-trip through parsing.
    let back: UBig = text.parse().unwrap();
    assert_eq!(back, fact);
}

#[test]
fn binomial_row_symmetry_and_sum() {
    let mut table = BinomialTable::new();
    let n = 500u64;
    let row = table.row(n).to_vec();
    // Symmetry.
    for k in 0..=n as usize {
        assert_eq!(row[k], row[n as usize - k], "C({n},{k})");
    }
    // Σ C(n,k) = 2^n.
    let total: UBig = row.into_iter().sum();
    assert_eq!(total, UBig::one().shl(n as u32));
}

#[test]
fn vandermonde_identity() {
    // Σ_k C(m,k)·C(n,r−k) = C(m+n,r): the counting identity behind
    // summing over independent signature classes.
    let (m, n, r) = (60u64, 45u64, 50u64);
    let mut acc = UBig::zero();
    for k in 0..=r {
        acc.add_assign(&binomial_ubig(m, k).mul(&binomial_ubig(n, r - k)));
    }
    assert_eq!(acc, binomial_ubig(m + n, r));
}

#[test]
fn hockey_stick_identity() {
    // Σ_{i=r..n} C(i,r) = C(n+1, r+1).
    let (n, r) = (300u64, 7u64);
    let mut acc = UBig::zero();
    for i in r..=n {
        acc.add_assign(&binomial_ubig(i, r));
    }
    assert_eq!(acc, binomial_ubig(n + 1, r + 1));
}

#[test]
fn u128_and_ubig_binomials_agree_at_the_boundary() {
    // Around n = 130 the u128 fast path starts overflowing (its
    // *intermediate* products overflow before the final value does, so
    // None only means "fast path unavailable", not "value > 2^128").
    for n in 125..=131u64 {
        for k in 0..=n {
            let big = binomial_ubig(n, k);
            if let Some(v) = binomial_u128(n, k) {
                assert_eq!(big.to_u128(), Some(v), "C({n},{k})");
            } else if k > 0 {
                // Validate the UBig value independently via Pascal.
                let pascal = binomial_ubig(n - 1, k - 1).add(&binomial_ubig(n - 1, k));
                assert_eq!(big, pascal, "C({n},{k})");
            }
        }
    }
}

#[test]
fn telescoping_rational_sum() {
    // Σ 1/(i(i+1)) = 1 − 1/(n+1), all exact.
    let n = 200u64;
    let mut acc = Rational::zero();
    for i in 1..=n {
        acc = acc.add(&Rational::from_u64(1, i * (i + 1)));
    }
    assert_eq!(acc, Rational::one().sub(&Rational::from_u64(1, n + 1)));
}

#[test]
fn prob_or_associativity_over_many_terms() {
    // ⊕ over k copies of p equals 1 − (1−p)^k.
    let p = Rational::from_u64(3, 10);
    let k = 40u32;
    let folded = Rational::prob_or_all(std::iter::repeat_n(&p, k as usize));
    let complement_pow = {
        let mut acc = Rational::one();
        let c = p.complement();
        for _ in 0..k {
            acc = acc.mul(&c);
        }
        acc
    };
    assert_eq!(folded, Rational::one().sub(&complement_pow));
}

#[test]
fn frac_boundary_arithmetic_is_exact() {
    // The Example 5.1 boundary case: measured ratio exactly equals the
    // bound, where floating point would be undefined behaviour for the
    // semantics. Stress with large co-prime numbers.
    let f = Frac::new(999_999_937, 1_000_000_000); // prime numerator
    assert!(f.leq_ratio(999_999_937, 1_000_000_000));
    assert!(!f.leq_ratio(999_999_936, 1_000_000_000));
    assert_eq!(f.ceil_mul(1_000_000_000), 999_999_937);
}

#[test]
fn rational_reduction_keeps_numbers_small() {
    // Repeated multiply-divide cycles must not bloat the representation.
    let mut x = Rational::from_u64(2, 3);
    for i in 1..=100u64 {
        x = x.mul(&Rational::from_u64(i, i + 1));
        x = x.div(&Rational::from_u64(i, i + 1));
    }
    assert_eq!(x, Rational::from_u64(2, 3));
    assert_eq!(x.num().to_u64(), Some(2));
    assert_eq!(x.den().to_u64(), Some(3));
}

#[test]
fn shl_shr_stress() {
    let v: UBig = "123456789123456789123456789".parse().unwrap();
    for bits in [1u32, 63, 64, 65, 127, 128, 1000] {
        assert_eq!(v.shl(bits).shr(bits), v, "shift by {bits}");
        // Left shift multiplies by 2^bits.
        let pow = UBig::one().shl(bits);
        assert_eq!(v.shl(bits), v.mul(&pow));
    }
}

#[test]
fn divrem_against_reconstruction_large() {
    let a: UBig = "98765432109876543210987654321098765432109876543210"
        .parse()
        .unwrap();
    let b: UBig = "12345678901234567890123".parse().unwrap();
    let (q, r) = a.divrem(&b);
    assert!(r < b);
    assert_eq!(q.mul(&b).add(&r), a);
}
