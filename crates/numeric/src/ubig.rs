//! Arbitrary-precision unsigned integers.
//!
//! [`UBig`] stores little-endian `u64` limbs, normalized so that the most
//! significant limb is non-zero (zero is the empty limb vector). The
//! implementation favours clarity and exactness over asymptotic heroics:
//! schoolbook multiplication and shift-subtract division are ample for the
//! operand sizes that model counting produces (thousands of bits).

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

/// Error returned when parsing a decimal string into a [`UBig`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUBigError {
    /// The offending character, if any (empty input otherwise).
    pub bad_char: Option<char>,
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bad_char {
            Some(c) => write!(f, "invalid digit {c:?} in UBig literal"),
            None => write!(f, "empty UBig literal"),
        }
    }
}

impl std::error::Error for ParseUBigError {}

impl UBig {
    /// The value `0`.
    #[must_use]
    pub const fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Builds from little-endian limbs, normalizing trailing zeros.
    #[must_use]
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Read-only view of the little-endian limbs.
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of significant bits (`0` for the value zero).
    #[must_use]
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                let full = (self.limbs.len() - 1) as u32 * 64;
                full + (64 - top.leading_zeros())
            }
        }
    }

    /// Number of trailing zero bits (`0` for the value zero).
    #[must_use]
    pub fn trailing_zeros(&self) -> u32 {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return i as u32 * 64 + limb.trailing_zeros();
            }
        }
        0
    }

    /// Tests bit `i` (little-endian bit numbering).
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// In-place addition.
    pub fn add_assign(&mut self, rhs: &UBig) {
        if rhs.limbs.len() > self.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(r);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Returns `self + rhs`.
    #[must_use]
    pub fn add(&self, rhs: &UBig) -> UBig {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// In-place subtraction; panics if `rhs > self`.
    pub fn sub_assign(&mut self, rhs: &UBig) {
        assert!(*self >= *rhs, "UBig subtraction underflow");
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Returns `self - rhs`, or `None` if `rhs > self`.
    #[must_use]
    pub fn checked_sub(&self, rhs: &UBig) -> Option<UBig> {
        if rhs > self {
            return None;
        }
        let mut out = self.clone();
        out.sub_assign(rhs);
        Some(out)
    }

    /// Returns `self * rhs` (schoolbook).
    #[must_use]
    pub fn mul(&self, rhs: &UBig) -> UBig {
        if self.is_zero() || rhs.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// Overwrites `self` with the machine word `value`, reusing the limb
    /// allocation.
    pub fn set_u64(&mut self, value: u64) {
        self.limbs.clear();
        if value != 0 {
            self.limbs.push(value);
        }
    }

    /// Computes `self * rhs` into `out`, reusing `out`'s limb allocation.
    /// The borrow checker keeps `out` distinct from both operands, so the
    /// schoolbook accumulation never reads a partially written limb.
    pub fn mul_into(&self, rhs: &UBig, out: &mut UBig) {
        out.limbs.clear();
        if self.is_zero() || rhs.is_zero() {
            return;
        }
        out.limbs.resize(self.limbs.len() + rhs.limbs.len(), 0);
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = u128::from(out.limbs[i + j]) + u128::from(a) * u128::from(b) + carry;
                out.limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = u128::from(out.limbs[k]) + carry;
                out.limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.limbs.last() == Some(&0) {
            out.limbs.pop();
        }
    }

    /// Computes `self * rhs` into `out` for a machine-word multiplier,
    /// reusing `out`'s limb allocation.
    pub fn mul_u64_into(&self, rhs: u64, out: &mut UBig) {
        out.limbs.clear();
        if rhs == 0 || self.is_zero() {
            return;
        }
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = u128::from(a) * u128::from(rhs) + carry;
            out.limbs.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.limbs.push(carry as u64);
        }
    }

    /// Returns `self * rhs` for a machine-word multiplier.
    #[must_use]
    pub fn mul_u64(&self, rhs: u64) -> UBig {
        if rhs == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = u128::from(a) * u128::from(rhs) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    /// In-place left shift by `bits`.
    pub fn shl_assign(&mut self, bits: u32) {
        if self.is_zero() || bits == 0 {
            return;
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        if bit_shift == 0 {
            let mut new = vec![0u64; limb_shift];
            new.extend_from_slice(&self.limbs);
            self.limbs = new;
            return;
        }
        let mut new = vec![0u64; limb_shift + self.limbs.len() + 1];
        for (i, &limb) in self.limbs.iter().enumerate() {
            new[limb_shift + i] |= limb << bit_shift;
            new[limb_shift + i + 1] |= limb >> (64 - bit_shift);
        }
        *self = UBig::from_limbs(new);
    }

    /// Returns `self << bits`.
    #[must_use]
    pub fn shl(&self, bits: u32) -> UBig {
        let mut out = self.clone();
        out.shl_assign(bits);
        out
    }

    /// In-place logical right shift by `bits`.
    pub fn shr_assign(&mut self, bits: u32) {
        if self.is_zero() || bits == 0 {
            return;
        }
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            self.limbs.clear();
            return;
        }
        let bit_shift = bits % 64;
        let n = self.limbs.len() - limb_shift;
        let mut new = Vec::with_capacity(n);
        for i in 0..n {
            let lo = self.limbs[limb_shift + i] >> bit_shift;
            let hi = if bit_shift > 0 {
                self.limbs.get(limb_shift + i + 1).copied().unwrap_or(0) << (64 - bit_shift)
            } else {
                0
            };
            new.push(lo | hi);
        }
        *self = UBig::from_limbs(new);
    }

    /// Returns `self >> bits`.
    #[must_use]
    pub fn shr(&self, bits: u32) -> UBig {
        let mut out = self.clone();
        out.shr_assign(bits);
        out
    }

    /// Divides by a machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `rhs == 0`.
    #[must_use]
    pub fn divrem_u64(&self, rhs: u64) -> (UBig, u64) {
        assert_ne!(rhs, 0, "UBig division by zero");
        let mut quot = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            quot[i] = (cur / u128::from(rhs)) as u64;
            rem = cur % u128::from(rhs);
        }
        (UBig::from_limbs(quot), rem as u64)
    }

    /// Full division, returning `(quotient, remainder)`.
    ///
    /// Single-limb divisors take the fast `u128` path; larger divisors use
    /// shift-subtract long division (`O(bits(self) · limbs(rhs))`), which is
    /// plenty for the sizes that arise in this workspace (division is only
    /// needed for formatting and rational normalization).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    #[must_use]
    pub fn divrem(&self, rhs: &UBig) -> (UBig, UBig) {
        assert!(!rhs.is_zero(), "UBig division by zero");
        if rhs.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(rhs.limbs[0]);
            return (q, UBig::from(r));
        }
        if self < rhs {
            return (UBig::zero(), self.clone());
        }
        let shift = self.bit_len() - rhs.bit_len();
        let mut rem = self.clone();
        let mut div = rhs.shl(shift);
        let mut quot = UBig::zero();
        for i in (0..=shift).rev() {
            if rem >= div {
                rem.sub_assign(&div);
                // Set bit i of the quotient.
                let mut bit = UBig::one();
                bit.shl_assign(i);
                quot.add_assign(&bit);
            }
            div.shr_assign(1);
        }
        (quot, rem)
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> UBig {
        let mut base = self.clone();
        let mut acc = UBig::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Converts to `u64` if the value fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    /// Best-effort conversion to `f64` (`inf` when the exponent overflows).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 64 {
            return self.to_u64().unwrap_or(0) as f64;
        }
        // Take the top 64 bits as the mantissa and scale by the remainder.
        let shift = bits - 64;
        let top = self.shr(shift).to_u64().expect("top 64 bits fit");
        (top as f64) * (shift as f64).exp2()
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(u64::from(v))
    }
}

impl From<usize> for UBig {
    fn from(v: usize) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel 19 decimal digits at a time (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().expect("non-zero value has chunks").to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

impl FromStr for UBig {
    type Err = ParseUBigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseUBigError { bad_char: None });
        }
        let mut acc = UBig::zero();
        for ch in s.chars() {
            let d = ch
                .to_digit(10)
                .ok_or(ParseUBigError { bad_char: Some(ch) })?;
            acc = acc.mul_u64(10);
            acc.add_assign(&UBig::from(u64::from(d)));
        }
        Ok(acc)
    }
}

impl std::iter::Sum for UBig {
    fn sum<I: Iterator<Item = UBig>>(iter: I) -> UBig {
        let mut acc = UBig::zero();
        for x in iter {
            acc.add_assign(&x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(UBig::zero().is_zero());
        assert!(UBig::one().is_one());
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::one().bit_len(), 1);
        assert_eq!(UBig::from(0u64), UBig::zero());
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999",
        ] {
            let v: UBig = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<UBig>().is_err());
        assert!("12a".parse::<UBig>().is_err());
        assert!("-5".parse::<UBig>().is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = big(u128::MAX - 3);
        let b = big(u128::MAX / 7);
        let mut s = a.clone();
        s.add_assign(&b);
        let mut back = s.clone();
        back.sub_assign(&b);
        assert_eq!(back, a);
    }

    #[test]
    fn checked_sub_underflow() {
        assert_eq!(big(3).checked_sub(&big(5)), None);
        assert_eq!(big(5).checked_sub(&big(3)), Some(big(2)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_assign_panics_on_underflow() {
        let mut a = big(1);
        a.sub_assign(&big(2));
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(big(0).mul(&big(5)), big(0));
        assert_eq!(big(7).mul(&big(6)), big(42));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let m = big(u128::from(u64::MAX));
        let sq = m.mul(&m);
        let expect = big(u128::MAX).checked_sub(&big((1u128 << 65) - 2)).unwrap();
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        let v = big(0b1011);
        assert_eq!(v.shl(3), big(0b1011000));
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shr(2), big(0b10));
        assert_eq!(v.shr(100), UBig::zero());
        assert_eq!(UBig::one().shl(200).bit_len(), 201);
    }

    #[test]
    fn divrem_small() {
        let (q, r) = big(100).divrem(&big(7));
        assert_eq!((q, r), (big(14), big(2)));
        let (q, r) = big(5).divrem(&big(100));
        assert_eq!((q, r), (UBig::zero(), big(5)));
    }

    #[test]
    fn divrem_multi_limb() {
        // (a * b + r) / b == a with remainder r, using 3-limb operands.
        let a = UBig::one().shl(130).add(&big(987654321));
        let b = UBig::one().shl(70).add(&big(12345));
        let r = big(424242);
        let n = a.mul(&b).add(&r);
        let (q, rem) = n.divrem(&b);
        assert_eq!(q, a);
        assert_eq!(rem, r);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divrem_by_zero_panics() {
        let _ = big(1).divrem(&UBig::zero());
    }

    #[test]
    fn pow_small() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(10).pow(0), UBig::one());
        assert_eq!(big(3).pow(5), big(243));
        assert_eq!(big(2).pow(100), UBig::one().shl(100));
    }

    #[test]
    fn conversions() {
        assert_eq!(big(42).to_u64(), Some(42));
        assert_eq!(UBig::one().shl(70).to_u64(), None);
        assert_eq!(UBig::one().shl(70).to_u128(), Some(1 << 70));
        assert_eq!(UBig::one().shl(130).to_u128(), None);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(big(12345).to_f64(), 12345.0);
        let v = UBig::one().shl(100);
        let f = v.to_f64();
        assert!((f / (100f64).exp2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(big(3) < big(5));
        assert!(UBig::one().shl(64) > big(u128::from(u64::MAX)));
        assert_eq!(big(7).cmp(&big(7)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn sum_iterator() {
        let total: UBig = (1u64..=100).map(UBig::from).sum();
        assert_eq!(total, big(5050));
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
            prop_assert_eq!(big(a).add(&big(b)), big(a + b));
        }

        #[test]
        fn prop_sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(big(hi).checked_sub(&big(lo)), Some(big(hi - lo)));
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u64.., b in 0u64..) {
            prop_assert_eq!(
                big(u128::from(a)).mul(&big(u128::from(b))),
                big(u128::from(a) * u128::from(b))
            );
        }

        #[test]
        fn prop_divrem_reconstructs(a in 0u128.., b in 1u128..) {
            let (q, r) = big(a).divrem(&big(b));
            prop_assert!(r < big(b));
            prop_assert_eq!(q.mul(&big(b)).add(&r), big(a));
        }

        #[test]
        fn prop_display_parse_round_trip(a in 0u128..) {
            let v = big(a);
            let parsed: UBig = v.to_string().parse().unwrap();
            prop_assert_eq!(parsed, v);
        }

        #[test]
        fn prop_shift_round_trip(a in 1u128.., s in 0u32..256) {
            prop_assert_eq!(big(a).shl(s).shr(s), big(a));
        }

        #[test]
        fn prop_mul_u64_matches_mul(a in 0u128.., b in 0u64..) {
            prop_assert_eq!(big(a).mul_u64(b), big(a).mul(&UBig::from(b)));
        }

        #[test]
        fn prop_mul_into_matches_mul(a in 0u128.., b in 0u128.., junk in 0u128..) {
            // The output buffer starts dirty to exercise allocation reuse.
            let mut out = big(junk);
            big(a).mul_into(&big(b), &mut out);
            prop_assert_eq!(out, big(a).mul(&big(b)));
        }

        #[test]
        fn prop_mul_u64_into_matches_mul_u64(a in 0u128.., b in 0u64.., junk in 0u128..) {
            let mut out = big(junk);
            big(a).mul_u64_into(b, &mut out);
            prop_assert_eq!(out, big(a).mul_u64(b));
        }

        #[test]
        fn prop_set_u64_overwrites(a in 0u128.., v in 0u64..) {
            let mut x = big(a);
            x.set_u64(v);
            prop_assert_eq!(x, UBig::from(v));
        }
    }
}
