//! Small exact fractions for soundness/completeness bounds.
//!
//! The paper's source descriptors carry lower bounds `c, s ∈ [0,1]`.
//! Checking `|φ(D) ∩ v| / |φ(D)| ≥ c` in floating point would make the
//! CONSISTENCY decision procedure unsound on boundary cases (and Example 5.1
//! sits *exactly* on the boundary with `c = s = 1/2`), so bounds are exact
//! `u64` fractions and every comparison cross-multiplies in `u128`.

use crate::gcd::gcd_u64;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative fraction `num/den` with `den > 0`, kept reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frac {
    num: u64,
    den: u64,
}

impl Frac {
    /// The value `0`.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// The value `1`.
    pub const ONE: Frac = Frac { num: 1, den: 1 };
    /// The value `1/2`.
    pub const HALF: Frac = Frac { num: 1, den: 2 };

    /// Creates a reduced fraction.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        assert_ne!(den, 0, "Frac denominator must be non-zero");
        if num == 0 {
            return Frac::ZERO;
        }
        let g = gcd_u64(num, den);
        Frac {
            num: num / g,
            den: den / g,
        }
    }

    /// Numerator of the reduced fraction.
    #[must_use]
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator of the reduced fraction.
    #[must_use]
    pub fn den(&self) -> u64 {
        self.den
    }

    /// `true` iff the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// `true` iff the value lies in `[0, 1]` (valid as a bound).
    #[must_use]
    pub fn is_probability(&self) -> bool {
        self.num <= self.den
    }

    /// Exact test of `a/b ≥ self`, i.e. `a·den ≥ num·b`, without overflow.
    ///
    /// This is the workhorse of every consistency check: "is the measured
    /// ratio at least the claimed bound?" `b` may be zero, in which case the
    /// ratio is treated as undefined-but-satisfied only when the bound is
    /// zero or `a` is also unconstrained — concretely the paper's measures
    /// always have `b > 0` when a claim is made; we define `a/0 ≥ bound` as
    /// `true` (an empty intended view is vacuously complete).
    #[must_use]
    pub fn leq_ratio(&self, a: u64, b: u64) -> bool {
        if b == 0 {
            return true;
        }
        u128::from(a) * u128::from(self.den) >= u128::from(self.num) * u128::from(b)
    }

    /// Smallest integer `t` with `t ≥ self · k` — the minimum number of
    /// sound tuples a source with bound `self` and extension size `k` must
    /// contribute (inequality (3) of the paper: `t_i ≥ s_i·k_i`).
    #[must_use]
    pub fn ceil_mul(&self, k: u64) -> u64 {
        let prod = u128::from(self.num) * u128::from(k);
        prod.div_ceil(u128::from(self.den)) as u64
    }

    /// Largest integer `w` with `self · w ≤ t`, i.e. `⌊t / self⌋` — the
    /// maximum size of `φ(D)` compatible with `t` sound tuples under
    /// completeness bound `self` (the paper's `m_i = ⌊t_i/c_i⌋`).
    ///
    /// Returns `None` when `self` is zero (no upper bound).
    #[must_use]
    pub fn floor_div(&self, t: u64) -> Option<u64> {
        if self.num == 0 {
            return None;
        }
        let prod = u128::from(t) * u128::from(self.den);
        Some((prod / u128::from(self.num)) as u64)
    }

    /// Nearest-fraction conversion from `f64` with denominator at most
    /// `max_den`, via the Stern–Brocot tree. Values are clamped to `[0, 1]`.
    #[must_use]
    pub fn from_f64_approx(value: f64, max_den: u64) -> Self {
        let v = value.clamp(0.0, 1.0);
        if v == 0.0 {
            return Frac::ZERO;
        }
        if v == 1.0 {
            return Frac::ONE;
        }
        // Stern–Brocot search between 0/1 and 1/1.
        let (mut ln, mut ld) = (0u64, 1u64); // left bound
        let (mut rn, mut rd) = (1u64, 1u64); // right bound
        let (mut best_n, mut best_d) = (0u64, 1u64);
        let mut best_err = v;
        loop {
            let mn = ln + rn;
            let md = ld + rd;
            if md > max_den {
                break;
            }
            let mv = mn as f64 / md as f64;
            let err = (mv - v).abs();
            if err < best_err {
                best_err = err;
                best_n = mn;
                best_d = md;
            }
            if mv < v {
                ln = mn;
                ld = md;
            } else if mv > v {
                rn = mn;
                rd = md;
            } else {
                return Frac::new(mn, md);
            }
        }
        // Also consider the bounds themselves.
        for (n, d) in [(ln, ld), (rn, rd)] {
            if d <= max_den && d > 0 {
                let err = (n as f64 / d as f64 - v).abs();
                if err < best_err {
                    best_err = err;
                    best_n = n;
                    best_d = d;
                }
            }
        }
        Frac::new(best_n, best_d)
    }

    /// Converts to `f64`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Frac {
    fn default() -> Self {
        Frac::ZERO
    }
}

/// Error returned when parsing a [`Frac`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFracError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseFracError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fraction: {}", self.message)
    }
}

impl std::error::Error for ParseFracError {}

impl std::str::FromStr for Frac {
    type Err = ParseFracError;

    /// Accepts `"n/d"`, plain integers (`"1"`), and decimals (`"0.25"`,
    /// converted exactly: `25/100`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseFracError {
                message: "empty input".into(),
            });
        }
        if let Some((num, den)) = s.split_once('/') {
            let num: u64 = num.trim().parse().map_err(|_| ParseFracError {
                message: format!("bad numerator {num:?}"),
            })?;
            let den: u64 = den.trim().parse().map_err(|_| ParseFracError {
                message: format!("bad denominator {den:?}"),
            })?;
            if den == 0 {
                return Err(ParseFracError {
                    message: "zero denominator".into(),
                });
            }
            return Ok(Frac::new(num, den));
        }
        if let Some((int, frac)) = s.split_once('.') {
            let int: u64 = if int.is_empty() {
                0
            } else {
                int.parse().map_err(|_| ParseFracError {
                    message: format!("bad integer part {int:?}"),
                })?
            };
            if frac.len() > 18 {
                return Err(ParseFracError {
                    message: "more than 18 decimal places".into(),
                });
            }
            let scale = 10u64.pow(frac.len() as u32);
            let frac_digits: u64 = if frac.is_empty() {
                0
            } else {
                frac.parse().map_err(|_| ParseFracError {
                    message: format!("bad fractional part {frac:?}"),
                })?
            };
            let num = int
                .checked_mul(scale)
                .and_then(|v| v.checked_add(frac_digits))
                .ok_or_else(|| ParseFracError {
                    message: "value too large".into(),
                })?;
            return Ok(Frac::new(num, scale));
        }
        let int: u64 = s.parse().map_err(|_| ParseFracError {
            message: format!("bad integer {s:?}"),
        })?;
        Ok(Frac::from(int))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> Ordering {
        (u128::from(self.num) * u128::from(other.den))
            .cmp(&(u128::from(other.num) * u128::from(self.den)))
    }
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frac({self})")
    }
}

impl From<u64> for Frac {
    fn from(v: u64) -> Self {
        Frac { num: v, den: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduction() {
        assert_eq!(Frac::new(2, 4), Frac::new(1, 2));
        assert_eq!(Frac::new(0, 7), Frac::ZERO);
        assert_eq!(Frac::new(6, 3).num(), 2);
        assert_eq!(Frac::new(6, 3).den(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Frac::new(1, 0);
    }

    #[test]
    fn leq_ratio_boundary() {
        let half = Frac::HALF;
        assert!(half.leq_ratio(1, 2)); // exactly 1/2 >= 1/2
        assert!(half.leq_ratio(2, 3)); // 2/3 >= 1/2
        assert!(!half.leq_ratio(1, 3)); // 1/3 < 1/2
        assert!(half.leq_ratio(0, 0)); // vacuous
        assert!(Frac::ONE.leq_ratio(5, 5));
        assert!(!Frac::ONE.leq_ratio(4, 5));
        assert!(Frac::ZERO.leq_ratio(0, 10));
    }

    #[test]
    fn leq_ratio_no_overflow() {
        let f = Frac::new(u64::MAX - 1, u64::MAX);
        assert!(f.leq_ratio(u64::MAX, u64::MAX));
        assert!(!f.leq_ratio(1, u64::MAX));
    }

    #[test]
    fn ceil_mul_examples() {
        assert_eq!(Frac::HALF.ceil_mul(5), 3); // ceil(2.5)
        assert_eq!(Frac::HALF.ceil_mul(4), 2);
        assert_eq!(Frac::ZERO.ceil_mul(10), 0);
        assert_eq!(Frac::ONE.ceil_mul(7), 7);
        assert_eq!(Frac::new(2, 3).ceil_mul(7), 5); // ceil(14/3)
    }

    #[test]
    fn floor_div_examples() {
        assert_eq!(Frac::HALF.floor_div(3), Some(6));
        assert_eq!(Frac::new(2, 3).floor_div(3), Some(4)); // floor(4.5)
        assert_eq!(Frac::ZERO.floor_div(3), None);
        assert_eq!(Frac::ONE.floor_div(3), Some(3));
    }

    #[test]
    fn from_f64_exact_halves() {
        assert_eq!(Frac::from_f64_approx(0.5, 100), Frac::HALF);
        assert_eq!(Frac::from_f64_approx(0.0, 100), Frac::ZERO);
        assert_eq!(Frac::from_f64_approx(1.0, 100), Frac::ONE);
        assert_eq!(Frac::from_f64_approx(0.25, 100), Frac::new(1, 4));
        assert_eq!(Frac::from_f64_approx(2.5, 100), Frac::ONE); // clamped
        assert_eq!(Frac::from_f64_approx(-1.0, 100), Frac::ZERO); // clamped
    }

    #[test]
    fn from_f64_approximates() {
        let f = Frac::from_f64_approx(0.333, 1000);
        assert!((f.to_f64() - 0.333).abs() < 1e-3);
        let v = 0.317_420_9_f64; // an awkward, non-special constant
        let approx = Frac::from_f64_approx(v, 1000);
        assert!((approx.to_f64() - v).abs() < 1e-5);
    }

    #[test]
    fn ordering() {
        assert!(Frac::new(1, 3) < Frac::HALF);
        assert!(Frac::new(2, 3) > Frac::HALF);
        assert_eq!(Frac::new(3, 6).cmp(&Frac::HALF), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Frac::HALF.to_string(), "1/2");
        assert_eq!(Frac::ONE.to_string(), "1");
        assert_eq!(Frac::ZERO.to_string(), "0");
    }

    proptest! {
        #[test]
        fn prop_leq_ratio_matches_float(num in 0u64..1000, den in 1u64..1000, a in 0u64..1000, b in 1u64..1000) {
            let f = Frac::new(num, den);
            // Cross-multiplication in exact arithmetic must agree with the
            // rational comparison (floats only used on provably-exact ranges).
            let exact = u128::from(a) * u128::from(f.den()) >= u128::from(f.num()) * u128::from(b);
            prop_assert_eq!(f.leq_ratio(a, b), exact);
        }

        #[test]
        fn prop_ceil_mul_is_minimal(num in 0u64..100, den in 1u64..100, k in 0u64..1000) {
            let f = Frac::new(num, den);
            let t = f.ceil_mul(k);
            // t/k >= f  (t is sufficient)
            prop_assert!(f.leq_ratio(t, k));
            // t-1 is not sufficient (when t > 0 and k > 0)
            if t > 0 && k > 0 {
                prop_assert!(!f.leq_ratio(t - 1, k));
            }
        }

        #[test]
        fn prop_floor_div_is_maximal(num in 1u64..100, den in 1u64..100, t in 0u64..1000) {
            let f = Frac::new(num, den);
            let w = f.floor_div(t).unwrap();
            // t/w >= f (w is allowed) -- guard w == 0 (vacuous)
            if w > 0 {
                prop_assert!(f.leq_ratio(t, w));
            }
            // w+1 is not allowed
            prop_assert!(!f.leq_ratio(t, w + 1));
        }

        #[test]
        fn prop_from_f64_round_trip(num in 0u64..64, den in 1u64..64) {
            let f = Frac::new(num.min(den), den);
            let back = Frac::from_f64_approx(f.to_f64(), 10_000);
            prop_assert_eq!(back, f);
        }
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn parses_ratios() {
        assert_eq!("1/2".parse::<Frac>().unwrap(), Frac::HALF);
        assert_eq!(" 3 / 4 ".parse::<Frac>().unwrap(), Frac::new(3, 4));
        assert_eq!("2/4".parse::<Frac>().unwrap(), Frac::HALF);
    }

    #[test]
    fn parses_integers_and_decimals() {
        assert_eq!("1".parse::<Frac>().unwrap(), Frac::ONE);
        assert_eq!("0".parse::<Frac>().unwrap(), Frac::ZERO);
        assert_eq!("0.5".parse::<Frac>().unwrap(), Frac::HALF);
        assert_eq!("0.25".parse::<Frac>().unwrap(), Frac::new(1, 4));
        assert_eq!(".75".parse::<Frac>().unwrap(), Frac::new(3, 4));
        assert_eq!("1.".parse::<Frac>().unwrap(), Frac::ONE);
        assert_eq!("0.333".parse::<Frac>().unwrap(), Frac::new(333, 1000));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "a/b",
            "1/0",
            "-1/2",
            "1.2.3",
            "1/2/3",
            "0.1234567890123456789",
        ] {
            assert!(bad.parse::<Frac>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_parse_round_trip() {
        for f in [
            Frac::ZERO,
            Frac::HALF,
            Frac::ONE,
            Frac::new(7, 13),
            Frac::new(99, 100),
        ] {
            assert_eq!(f.to_string().parse::<Frac>().unwrap(), f);
        }
    }
}
