//! Greatest-common-divisor routines for machine integers and [`UBig`].

use crate::ubig::UBig;

/// Binary (Stein) GCD on `u64`. `gcd(0, 0)` is defined as `0`.
#[must_use]
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Binary (Stein) GCD on `u128`. `gcd(0, 0)` is defined as `0`.
#[must_use]
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Binary (Stein) GCD on arbitrary-precision integers.
///
/// Avoids division entirely: only shifts, comparisons and subtractions, all
/// of which [`UBig`] implements in `O(limbs)`.
#[must_use]
pub fn gcd_ubig(a: &UBig, b: &UBig) -> UBig {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let az = a.trailing_zeros();
    let bz = b.trailing_zeros();
    let shift = az.min(bz);
    a.shr_assign(az);
    loop {
        b.shr_assign(b.trailing_zeros());
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        // b >= a here, so the subtraction cannot underflow.
        b.sub_assign(&a);
        if b.is_zero() {
            a.shl_assign(shift);
            return a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_u64_basics() {
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(gcd_u64(0, 7), 7);
        assert_eq!(gcd_u64(7, 0), 7);
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(17, 13), 1);
        assert_eq!(gcd_u64(1 << 40, 1 << 20), 1 << 20);
        assert_eq!(gcd_u64(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn gcd_u128_basics() {
        assert_eq!(gcd_u128(0, 0), 0);
        assert_eq!(gcd_u128(1 << 100, 1 << 60), 1 << 60);
        assert_eq!(
            gcd_u128(u128::from(u64::MAX) * 6, u128::from(u64::MAX) * 9),
            u128::from(u64::MAX) * 3
        );
    }

    #[test]
    fn gcd_ubig_matches_u64() {
        for (a, b) in [
            (0u64, 0u64),
            (0, 9),
            (12, 18),
            (270, 192),
            (97, 89),
            (1 << 50, 3 << 20),
        ] {
            let g = gcd_ubig(&UBig::from(a), &UBig::from(b));
            assert_eq!(g, UBig::from(gcd_u64(a, b)), "gcd({a},{b})");
        }
    }

    #[test]
    fn gcd_ubig_large() {
        // gcd(2^200 * 3, 2^100 * 9) = 2^100 * 3
        let a = UBig::from(3u64).shl(200);
        let b = UBig::from(9u64).shl(100);
        let expect = UBig::from(3u64).shl(100);
        assert_eq!(gcd_ubig(&a, &b), expect);
    }
}
