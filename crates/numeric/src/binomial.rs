//! Binomial coefficients, exact and memoized.
//!
//! The signature-decomposition counter (see `pscds-core::confidence`)
//! evaluates sums of products `Π_σ C(|class σ|, k_σ)`. Rows of Pascal's
//! triangle are reused heavily across the sum, so [`BinomialTable`] caches
//! whole rows keyed by `n`.

use crate::ubig::UBig;
use std::collections::HashMap;

/// Exact binomial coefficient `C(n, k)` in `u128`, or `None` on overflow.
#[must_use]
pub fn binomial_u128(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) stays integral at every step because
        // C(n, i+1) is an integer; divide after multiplying.
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// Exact binomial coefficient `C(n, k)` as a [`UBig`].
#[must_use]
pub fn binomial_ubig(n: u64, k: u64) -> UBig {
    if k > n {
        return UBig::zero();
    }
    let k = k.min(n - k);
    if let Some(v) = binomial_u128(n, k) {
        return UBig::from(v);
    }
    // Multiplicative formula with exact intermediate division.
    let mut acc = UBig::one();
    for i in 0..k {
        acc = acc.mul_u64(n - i);
        let (q, r) = acc.divrem_u64(i + 1);
        debug_assert!(r == 0, "binomial intermediate not integral");
        acc = q;
    }
    acc
}

/// A cache of Pascal-triangle rows: `row(n)[k] = C(n, k)`.
///
/// Rows are computed once by the additive recurrence (cheap `UBig`
/// additions) and then shared by reference.
#[derive(Default)]
pub struct BinomialTable {
    rows: HashMap<u64, Vec<UBig>>,
}

impl BinomialTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the full row `[C(n,0), …, C(n,n)]`, computing and caching it
    /// on first use.
    pub fn row(&mut self, n: u64) -> &[UBig] {
        self.rows.entry(n).or_insert_with(|| {
            let len = usize::try_from(n).expect("row length fits in usize") + 1;
            let mut row = Vec::with_capacity(len);
            // Build multiplicatively from C(n,0)=1: C(n,k+1) = C(n,k)*(n-k)/(k+1).
            let mut cur = UBig::one();
            row.push(cur.clone());
            for k in 0..n {
                cur = cur.mul_u64(n - k);
                let (q, r) = cur.divrem_u64(k + 1);
                debug_assert!(r == 0);
                cur = q;
                row.push(cur.clone());
            }
            row
        })
    }

    /// Returns `C(n, k)` (zero when `k > n`), using the cached row.
    pub fn get(&mut self, n: u64, k: u64) -> UBig {
        if k > n {
            return UBig::zero();
        }
        self.row(n)[usize::try_from(k).expect("k fits in usize")].clone()
    }

    /// Sum `Σ_{k=lo..=hi} C(n, k)` (clamping `hi` to `n`), a common
    /// aggregation when a signature class has an interval of feasible counts.
    pub fn row_sum(&mut self, n: u64, lo: u64, hi: u64) -> UBig {
        if lo > hi || lo > n {
            return UBig::zero();
        }
        let hi = hi.min(n);
        let row = self.row(n);
        let mut acc = UBig::zero();
        for k in lo..=hi {
            acc.add_assign(&row[usize::try_from(k).expect("k fits in usize")]);
        }
        acc
    }

    /// Number of cached rows (for tests and diagnostics).
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binomial_u128_known() {
        assert_eq!(binomial_u128(0, 0), Some(1));
        assert_eq!(binomial_u128(5, 2), Some(10));
        assert_eq!(binomial_u128(10, 0), Some(1));
        assert_eq!(binomial_u128(10, 10), Some(1));
        assert_eq!(binomial_u128(10, 11), Some(0));
        assert_eq!(binomial_u128(52, 5), Some(2_598_960));
    }

    #[test]
    fn binomial_u128_overflows_gracefully() {
        // C(200, 100) has ~196 bits; far beyond u128.
        assert_eq!(binomial_u128(200, 100), None);
        // But the UBig version succeeds and is symmetric.
        let v = binomial_ubig(200, 100);
        assert_eq!(v, binomial_ubig(200, 100));
        assert!(v.bit_len() > 128);
    }

    #[test]
    fn binomial_ubig_matches_u128() {
        for n in 0..=60u64 {
            for k in 0..=n {
                assert_eq!(
                    binomial_ubig(n, k).to_u128(),
                    binomial_u128(n, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn pascal_identity_large() {
        // C(n, k) = C(n-1, k-1) + C(n-1, k) on a large row.
        let n = 300u64;
        for k in [1u64, 37, 150, 299] {
            let lhs = binomial_ubig(n, k);
            let rhs = binomial_ubig(n - 1, k - 1).add(&binomial_ubig(n - 1, k));
            assert_eq!(lhs, rhs, "Pascal identity at C({n},{k})");
        }
    }

    #[test]
    fn table_rows_and_sums() {
        let mut t = BinomialTable::new();
        assert_eq!(t.get(6, 3), UBig::from(20u64));
        assert_eq!(t.get(6, 7), UBig::zero());
        // Σ C(6, k) = 2^6
        assert_eq!(t.row_sum(6, 0, 6), UBig::from(64u64));
        assert_eq!(t.row_sum(6, 0, 100), UBig::from(64u64)); // hi clamped
        assert_eq!(t.row_sum(6, 3, 2), UBig::zero()); // empty interval
        assert_eq!(t.row_sum(6, 7, 9), UBig::zero()); // lo beyond n
        assert_eq!(t.cached_rows(), 1);
        let _ = t.row(10);
        assert_eq!(t.cached_rows(), 2);
    }

    proptest! {
        #[test]
        fn prop_row_sums_to_power_of_two(n in 0u64..40) {
            let mut t = BinomialTable::new();
            prop_assert_eq!(t.row_sum(n, 0, n), UBig::one().shl(n as u32));
        }

        #[test]
        fn prop_symmetry(n in 0u64..80, k in 0u64..80) {
            let k = k.min(n);
            prop_assert_eq!(binomial_ubig(n, k), binomial_ubig(n, n - k));
        }

        #[test]
        fn prop_table_matches_direct(n in 0u64..50, k in 0u64..60) {
            let mut t = BinomialTable::new();
            prop_assert_eq!(t.get(n, k), binomial_ubig(n, k));
        }
    }
}
