//! Binomial coefficients, exact and memoized.
//!
//! The signature-decomposition counter (see `pscds-core::confidence`)
//! evaluates sums of products `Π_σ C(|class σ|, k_σ)`. Rows of Pascal's
//! triangle are reused heavily across the sum, so [`BinomialTable`] caches
//! whole rows keyed by `n`.

use crate::ubig::UBig;
use std::collections::HashMap;

/// Exact binomial coefficient `C(n, k)` in `u128`, or `None` on overflow.
#[must_use]
pub fn binomial_u128(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) stays integral at every step because
        // C(n, i+1) is an integer; divide after multiplying.
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// Exact binomial coefficient `C(n, k)` as a [`UBig`].
#[must_use]
pub fn binomial_ubig(n: u64, k: u64) -> UBig {
    if k > n {
        return UBig::zero();
    }
    let k = k.min(n - k);
    if let Some(v) = binomial_u128(n, k) {
        return UBig::from(v);
    }
    // Multiplicative formula with exact intermediate division.
    let mut acc = UBig::one();
    for i in 0..k {
        acc = acc.mul_u64(n - i);
        let (q, r) = acc.divrem_u64(i + 1);
        debug_assert!(r == 0, "binomial intermediate not integral");
        acc = q;
    }
    acc
}

/// A cache of Pascal-triangle rows: `row(n)[k] = C(n, k)`.
///
/// Rows are computed once by the additive recurrence (cheap `UBig`
/// additions) and then shared by reference.
#[derive(Default)]
pub struct BinomialTable {
    rows: HashMap<u64, Vec<UBig>>,
}

impl BinomialTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the full row `[C(n,0), …, C(n,n)]`, computing and caching it
    /// on first use.
    pub fn row(&mut self, n: u64) -> &[UBig] {
        self.rows.entry(n).or_insert_with(|| {
            let len = usize::try_from(n).expect("row length fits in usize") + 1;
            let mut row = Vec::with_capacity(len);
            // Build multiplicatively from C(n,0)=1: C(n,k+1) = C(n,k)*(n-k)/(k+1).
            let mut cur = UBig::one();
            row.push(cur.clone());
            for k in 0..n {
                cur = cur.mul_u64(n - k);
                let (q, r) = cur.divrem_u64(k + 1);
                debug_assert!(r == 0);
                cur = q;
                row.push(cur.clone());
            }
            row
        })
    }

    /// Returns `C(n, k)` (zero when `k > n`), using the cached row.
    pub fn get(&mut self, n: u64, k: u64) -> UBig {
        if k > n {
            return UBig::zero();
        }
        self.row(n)[usize::try_from(k).expect("k fits in usize")].clone()
    }

    /// Sum `Σ_{k=lo..=hi} C(n, k)` (clamping `hi` to `n`), a common
    /// aggregation when a signature class has an interval of feasible counts.
    pub fn row_sum(&mut self, n: u64, lo: u64, hi: u64) -> UBig {
        if lo > hi || lo > n {
            return UBig::zero();
        }
        let hi = hi.min(n);
        let row = self.row(n);
        let mut acc = UBig::zero();
        for k in lo..=hi {
            acc.add_assign(&row[usize::try_from(k).expect("k fits in usize")]);
        }
        acc
    }

    /// Number of cached rows (for tests and diagnostics).
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Handle to an interned Pascal row inside a [`RowCache`]: plain index
/// access on the hot path instead of a hash lookup per coefficient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowId(usize);

/// A lazily-extended Pascal row: `row[k] = C(n, k)`, grown on demand by
/// the multiplicative recurrence `C(n,k) = C(n,k−1)·(n−k+1)/k`.
struct LazyRow {
    n: u64,
    row: Vec<UBig>,
}

impl LazyRow {
    fn new(n: u64) -> Self {
        LazyRow {
            n,
            row: vec![UBig::one()],
        }
    }

    fn get(&mut self, k: u64) -> &UBig {
        debug_assert!(k <= self.n, "C(n,k) with k > n has no lazy-row entry");
        while (self.row.len() as u64) <= k {
            let k0 = self.row.len() as u64;
            let prev = self.row.last().expect("row starts non-empty");
            let scaled = prev.mul_u64(self.n - (k0 - 1));
            let (q, r) = scaled.divrem_u64(k0);
            debug_assert!(r == 0, "binomial recurrence stays integral");
            self.row.push(q);
        }
        &self.row[usize::try_from(k).expect("k fits usize")]
    }
}

/// A cache of *lazily-extended* Pascal rows, shared across counting
/// engines.
///
/// Unlike [`BinomialTable`], which materializes whole rows, a `RowCache`
/// row grows one coefficient at a time: the feasibility pruning of the
/// signature DFS often visits only a tiny prefix of each row (for the
/// paper's Example 5.1 a `10^6`-sized padding class never needs `k > 1`,
/// where the full row would be astronomically large). Rows are interned by
/// `n`, so classes of equal size — and repeated engine calls over related
/// decompositions — share the same underlying row.
#[derive(Default)]
pub struct RowCache {
    rows: Vec<LazyRow>,
    by_n: HashMap<u64, usize>,
    zero: UBig,
}

impl RowCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the row for `n`, returning a handle for index-speed access.
    pub fn intern(&mut self, n: u64) -> RowId {
        if let Some(&idx) = self.by_n.get(&n) {
            return RowId(idx);
        }
        let idx = self.rows.len();
        self.rows.push(LazyRow::new(n));
        self.by_n.insert(n, idx);
        RowId(idx)
    }

    /// `C(n, k)` for an interned row, extending it lazily. `k` must not
    /// exceed the row's `n` (the counting engines only request counts up
    /// to the class size); use [`RowCache::binomial`] for the total form.
    pub fn get(&mut self, id: RowId, k: u64) -> &UBig {
        self.rows[id.0].get(k)
    }

    /// `C(n, k)` by value of `n` (zero when `k > n`), interning the row on
    /// first use.
    pub fn binomial(&mut self, n: u64, k: u64) -> &UBig {
        if k > n {
            return &self.zero;
        }
        let id = self.intern(n);
        self.get(id, k)
    }

    /// Number of interned rows (diagnostics).
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of materialized coefficients across all rows
    /// (diagnostics: how much of Pascal's triangle was actually touched).
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.rows.iter().map(|r| r.row.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binomial_u128_known() {
        assert_eq!(binomial_u128(0, 0), Some(1));
        assert_eq!(binomial_u128(5, 2), Some(10));
        assert_eq!(binomial_u128(10, 0), Some(1));
        assert_eq!(binomial_u128(10, 10), Some(1));
        assert_eq!(binomial_u128(10, 11), Some(0));
        assert_eq!(binomial_u128(52, 5), Some(2_598_960));
    }

    #[test]
    fn binomial_u128_overflows_gracefully() {
        // C(200, 100) has ~196 bits; far beyond u128.
        assert_eq!(binomial_u128(200, 100), None);
        // But the UBig version succeeds and is symmetric.
        let v = binomial_ubig(200, 100);
        assert_eq!(v, binomial_ubig(200, 100));
        assert!(v.bit_len() > 128);
    }

    #[test]
    fn binomial_ubig_matches_u128() {
        for n in 0..=60u64 {
            for k in 0..=n {
                assert_eq!(
                    binomial_ubig(n, k).to_u128(),
                    binomial_u128(n, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn pascal_identity_large() {
        // C(n, k) = C(n-1, k-1) + C(n-1, k) on a large row.
        let n = 300u64;
        for k in [1u64, 37, 150, 299] {
            let lhs = binomial_ubig(n, k);
            let rhs = binomial_ubig(n - 1, k - 1).add(&binomial_ubig(n - 1, k));
            assert_eq!(lhs, rhs, "Pascal identity at C({n},{k})");
        }
    }

    #[test]
    fn row_cache_lazy_extension_and_interning() {
        let mut cache = RowCache::new();
        let id = cache.intern(1_000_000);
        // Only the requested prefix is materialized.
        assert_eq!(cache.get(id, 1), &UBig::from(1_000_000u64));
        assert_eq!(cache.cached_entries(), 2);
        // Equal n interns to the same row.
        assert_eq!(cache.intern(1_000_000), id);
        assert_eq!(cache.cached_rows(), 1);
        // Totalized lookup.
        assert_eq!(cache.binomial(5, 2), &UBig::from(10u64));
        assert_eq!(cache.binomial(5, 6), &UBig::zero());
    }

    #[test]
    fn row_cache_absorption_identity() {
        // k·C(n,k) = n·C(n−1,k−1) — the identity that keeps the per-class
        // confidence numerators Σ Π C(n_σ,k_σ)·k_σ₀ integral after the
        // final division by the class size (counting.rs relies on it).
        let mut cache = RowCache::new();
        for n in 1u64..=40 {
            for k in 1..=n {
                let lhs = cache.binomial(n, k).mul_u64(k);
                let rhs = cache.binomial(n - 1, k - 1).mul_u64(n);
                assert_eq!(lhs, rhs, "k·C({n},{k}) = {n}·C({}, {})", n - 1, k - 1);
            }
        }
    }

    #[test]
    fn table_rows_and_sums() {
        let mut t = BinomialTable::new();
        assert_eq!(t.get(6, 3), UBig::from(20u64));
        assert_eq!(t.get(6, 7), UBig::zero());
        // Σ C(6, k) = 2^6
        assert_eq!(t.row_sum(6, 0, 6), UBig::from(64u64));
        assert_eq!(t.row_sum(6, 0, 100), UBig::from(64u64)); // hi clamped
        assert_eq!(t.row_sum(6, 3, 2), UBig::zero()); // empty interval
        assert_eq!(t.row_sum(6, 7, 9), UBig::zero()); // lo beyond n
        assert_eq!(t.cached_rows(), 1);
        let _ = t.row(10);
        assert_eq!(t.cached_rows(), 2);
    }

    proptest! {
        #[test]
        fn prop_row_sums_to_power_of_two(n in 0u64..40) {
            let mut t = BinomialTable::new();
            prop_assert_eq!(t.row_sum(n, 0, n), UBig::one().shl(n as u32));
        }

        #[test]
        fn prop_symmetry(n in 0u64..80, k in 0u64..80) {
            let k = k.min(n);
            prop_assert_eq!(binomial_ubig(n, k), binomial_ubig(n, n - k));
        }

        #[test]
        fn prop_table_matches_direct(n in 0u64..50, k in 0u64..60) {
            let mut t = BinomialTable::new();
            prop_assert_eq!(t.get(n, k), binomial_ubig(n, k));
        }
    }
}
