//! # pscds-numeric
//!
//! Exact arithmetic substrate for possible-world model counting.
//!
//! Counting the integer solutions of the linear system Γ from Section 5 of
//! the paper multiplies and sums binomial coefficients whose magnitudes grow
//! exponentially in the domain size, so `u128` overflows almost immediately.
//! This crate provides the minimal exact-arithmetic toolkit the rest of the
//! workspace needs, implemented from scratch (no external bignum crates):
//!
//! * [`UBig`] — arbitrary-precision unsigned integers (little-endian `u64`
//!   limbs) with addition, subtraction, multiplication, division, shifts,
//!   comparison, decimal parsing/formatting and `f64` conversion.
//! * [`Rational`] — exact non-negative rationals over [`UBig`], normalized
//!   with a binary GCD; used for confidence values
//!   `N_sol(Γ[x_p/1]) / N_sol(Γ)`.
//! * [`Frac`] — small exact fractions over `u64`, used for the completeness
//!   and soundness lower bounds `c, s ∈ [0,1]` so that the consistency
//!   inequalities can be checked exactly in integer arithmetic
//!   (`t·den ≥ num·w` instead of floating point).
//! * [`binomial`] — memoized binomial-coefficient tables over [`UBig`] and a
//!   checked `u128` fast path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod frac;
pub mod gcd;
pub mod rational;
pub mod ubig;

pub use binomial::{BinomialTable, RowCache};
pub use frac::Frac;
pub use rational::Rational;
pub use ubig::UBig;
