//! Exact non-negative rationals over [`UBig`].
//!
//! Confidence values are ratios of possible-world counts
//! (`N_sol(Γ[x_p/1]) / N_sol(Γ)`); both counts can exceed any machine
//! integer, so [`Rational`] keeps them exact. All confidences are in `[0,1]`
//! and counts are non-negative, so an unsigned representation suffices.

use crate::gcd::gcd_ubig;
use crate::ubig::UBig;
use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative rational, always stored reduced with a non-zero
/// denominator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: UBig,
    den: UBig,
}

impl Rational {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> Self {
        Rational {
            num: UBig::zero(),
            den: UBig::one(),
        }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        Rational {
            num: UBig::one(),
            den: UBig::one(),
        }
    }

    /// Creates `num/den`, reduced.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: UBig, den: UBig) -> Self {
        assert!(!den.is_zero(), "Rational denominator must be non-zero");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = gcd_ubig(&num, &den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational {
                num: num.divrem(&g).0,
                den: den.divrem(&g).0,
            }
        }
    }

    /// Creates from machine integers.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn from_u64(num: u64, den: u64) -> Self {
        Rational::new(UBig::from(num), UBig::from(den))
    }

    /// Reduced numerator.
    #[must_use]
    pub fn num(&self) -> &UBig {
        &self.num
    }

    /// Reduced denominator.
    #[must_use]
    pub fn den(&self) -> &UBig {
        &self.den
    }

    /// `true` iff the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff the value is `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// Returns `self + rhs`.
    #[must_use]
    pub fn add(&self, rhs: &Rational) -> Rational {
        let num = self.num.mul(&rhs.den).add(&rhs.num.mul(&self.den));
        let den = self.den.mul(&rhs.den);
        Rational::new(num, den)
    }

    /// Returns `self - rhs`; panics if `rhs > self`.
    #[must_use]
    pub fn sub(&self, rhs: &Rational) -> Rational {
        let lhs_scaled = self.num.mul(&rhs.den);
        let rhs_scaled = rhs.num.mul(&self.den);
        let num = lhs_scaled
            .checked_sub(&rhs_scaled)
            .expect("Rational subtraction underflow");
        Rational::new(num, self.den.mul(&rhs.den))
    }

    /// Returns `self * rhs`.
    #[must_use]
    pub fn mul(&self, rhs: &Rational) -> Rational {
        Rational::new(self.num.mul(&rhs.num), self.den.mul(&rhs.den))
    }

    /// Returns `self / rhs`; panics if `rhs` is zero.
    #[must_use]
    pub fn div(&self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "Rational division by zero");
        Rational::new(self.num.mul(&rhs.den), self.den.mul(&rhs.num))
    }

    /// The complement `1 - self`; panics if `self > 1`.
    #[must_use]
    pub fn complement(&self) -> Rational {
        Rational::one().sub(self)
    }

    /// The independent-union combinator from Section 5.2:
    /// `a ⊕ b = 1 - (1-a)(1-b)`.
    ///
    /// For probabilities of independent events it is the probability of the
    /// union; it is commutative, associative, has identity `0` and
    /// absorbing element `1`.
    #[must_use]
    pub fn prob_or(&self, rhs: &Rational) -> Rational {
        Rational::one().sub(&self.complement().mul(&rhs.complement()))
    }

    /// Folds [`Rational::prob_or`] over an iterator (`⊕_{i} p_i`), starting
    /// from the identity `0`.
    #[must_use]
    pub fn prob_or_all<'a, I: IntoIterator<Item = &'a Rational>>(iter: I) -> Rational {
        let mut acc = Rational::zero();
        for p in iter {
            acc = acc.prob_or(p);
        }
        acc
    }

    /// `true` iff the value lies in `[0,1]`.
    #[must_use]
    pub fn is_probability(&self) -> bool {
        self.num <= self.den
    }

    /// Best-effort conversion to `f64`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        // Scale so both operands fit comfortably in f64's mantissa range.
        let nb = self.num.bit_len();
        let db = self.den.bit_len();
        if nb <= 52 && db <= 52 {
            return self.num.to_u64().unwrap_or(0) as f64 / self.den.to_u64().unwrap_or(1) as f64;
        }
        let shift = nb.max(db).saturating_sub(52);
        let n = self.num.shr(shift).to_u64().unwrap_or(0) as f64;
        let d = self.den.shr(shift).to_u64().unwrap_or(0) as f64;
        if d == 0.0 {
            // Denominator lost all bits: self is astronomically large.
            f64::INFINITY
        } else {
            n / d
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.num.mul(&other.den).cmp(&other.num.mul(&self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational {
            num: UBig::from(v),
            den: UBig::one(),
        }
    }
}

impl From<crate::frac::Frac> for Rational {
    fn from(f: crate::frac::Frac) -> Self {
        Rational::from_u64(f.num(), f.den())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: u64, d: u64) -> Rational {
        Rational::from_u64(n, d)
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(10, 5).to_string(), "2");
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(UBig::one(), UBig::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2).add(&r(1, 3)), r(5, 6));
        assert_eq!(r(1, 2).mul(&r(2, 3)), r(1, 3));
        assert_eq!(r(1, 2).sub(&r(1, 3)), r(1, 6));
        assert_eq!(r(1, 2).div(&r(1, 4)), r(2, 1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = r(1, 3).sub(&r(1, 2));
    }

    #[test]
    fn prob_or_basics() {
        // 1/2 ⊕ 1/2 = 3/4
        assert_eq!(r(1, 2).prob_or(&r(1, 2)), r(3, 4));
        // identity and absorption
        assert_eq!(r(2, 5).prob_or(&Rational::zero()), r(2, 5));
        assert_eq!(r(2, 5).prob_or(&Rational::one()), Rational::one());
    }

    #[test]
    fn prob_or_all_fold() {
        let ps = [r(1, 2), r(1, 3), r(1, 4)];
        // 1 - (1/2)(2/3)(3/4) = 1 - 1/4 = 3/4
        assert_eq!(Rational::prob_or_all(ps.iter()), r(3, 4));
        assert_eq!(Rational::prob_or_all(std::iter::empty()), Rational::zero());
    }

    #[test]
    fn ordering_and_probability() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(7, 7).is_probability());
        assert!(!r(8, 7).is_probability());
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(3, 4).to_f64(), 0.75);
        // Large but equal numerator/denominator => 1.0 (after reduction it's 1/1).
        let big = UBig::one().shl(300);
        let ratio = Rational::new(big.clone().add(&UBig::one()), big);
        let f = ratio.to_f64();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_frac() {
        let f = crate::frac::Frac::new(3, 4);
        assert_eq!(Rational::from(f), r(3, 4));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in 0u64..1000, b in 1u64..1000, c in 0u64..1000, d in 1u64..1000) {
            prop_assert_eq!(r(a, b).add(&r(c, d)), r(c, d).add(&r(a, b)));
        }

        #[test]
        fn prop_mul_div_round_trip(a in 1u64..1000, b in 1u64..1000, c in 1u64..1000, d in 1u64..1000) {
            let x = r(a, b);
            let y = r(c, d);
            prop_assert_eq!(x.mul(&y).div(&y), x);
        }

        #[test]
        fn prop_prob_or_stays_probability(a in 0u64..100, b in 0u64..100) {
            let x = r(a.min(99), 100);
            let y = r(b.min(99), 100);
            let o = x.prob_or(&y);
            prop_assert!(o.is_probability());
            // ⊕ dominates max
            prop_assert!(o >= x.clone().max(y));
        }

        #[test]
        fn prop_complement_involution(a in 0u64..=100) {
            let x = r(a, 100);
            prop_assert_eq!(x.complement().complement(), x);
        }

        #[test]
        fn prop_cmp_matches_f64(a in 0u64..10_000, b in 1u64..10_000, c in 0u64..10_000, d in 1u64..10_000) {
            let exact = r(a, b).cmp(&r(c, d));
            let approx = (a as f64 / b as f64).partial_cmp(&(c as f64 / d as f64)).unwrap();
            // f64 is exact for these ranges only when ratios differ; equality
            // can disagree due to rounding, so only check strict orders.
            if approx != std::cmp::Ordering::Equal && exact != std::cmp::Ordering::Equal {
                prop_assert_eq!(exact, approx);
            }
        }
    }
}
