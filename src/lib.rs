//! # pscds — querying partially sound and complete data sources
//!
//! A Rust implementation of Mendelzon & Mihaila, *"Querying Partially
//! Sound and Complete Data Sources"* (PODS 2001): source descriptors with
//! quantitative completeness/soundness lower bounds, consistency checking
//! of source collections, tableaux templates for the possible worlds, and
//! probabilistic (confidence-graded) query answering.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`numeric`] — exact big-integer / rational arithmetic;
//! * [`relational`] — the relational substrate (databases, conjunctive
//!   queries, relational algebra, tableaux);
//! * [`core`] — the paper's semantics (descriptors, `poss(S)`,
//!   consistency, templates, confidence, answers);
//! * [`reductions`] — HITTING SET and the Theorem 3.2 NP-completeness
//!   reductions;
//! * [`datagen`] — synthetic workloads (climate, mirrors, random
//!   collections).
//!
//! ## Quickstart
//!
//! ```
//! use pscds::core::confidence::ConfidenceAnalysis;
//! use pscds::core::{SourceCollection, SourceDescriptor};
//! use pscds::numeric::{Frac, Rational};
//! use pscds::relational::Value;
//!
//! // Example 5.1 from the paper: two half-sound, half-complete sources.
//! let s1 = SourceDescriptor::identity(
//!     "S1", "V1", "R", 1,
//!     [[Value::sym("a")], [Value::sym("b")]],
//!     Frac::HALF, Frac::HALF,
//! ).unwrap();
//! let s2 = SourceDescriptor::identity(
//!     "S2", "V2", "R", 1,
//!     [[Value::sym("b")], [Value::sym("c")]],
//!     Frac::HALF, Frac::HALF,
//! ).unwrap();
//! let collection = SourceCollection::from_sources([s1, s2]);
//!
//! // Exact tuple confidence over the domain {a, b, c, d1}:
//! let identity = collection.as_identity().unwrap();
//! let analysis = ConfidenceAnalysis::analyze(&identity, 1 /* padding */);
//! let conf_b = analysis.confidence_of_tuple(&identity, &[Value::sym("b")]).unwrap();
//! assert_eq!(conf_b, Rational::from_u64(6, 7)); // b is backed by both sources
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pscds_core as core;
pub use pscds_datagen as datagen;
pub use pscds_numeric as numeric;
pub use pscds_reductions as reductions;
pub use pscds_relational as relational;
