//! Offline stand-in for `serde`.
//!
//! Defines the core `Serialize`/`Deserialize`/`Serializer`/`Deserializer`
//! traits with just enough surface for the workspace's hand-written impls
//! (`Symbol` serializes as a string) to typecheck. The derive macros are
//! re-exported from the no-op `serde_derive` stub — they expand to nothing,
//! so derived types do NOT implement the traits; only hand-written impls do.
//! No serializer backend exists in-tree (serde_json is unavailable offline),
//! so these traits are interface declarations awaiting a real backend.

/// Error produced by a serializer or deserializer.
pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data format that can serialize values.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can deserialize values.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_string(self) -> Result<String, Self::Error>;
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    fn deserialize_i64(self) -> Result<i64, Self::Error>;
    fn deserialize_bool(self) -> Result<bool, Self::Error>;
}

/// A value serializable into any supported format.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value deserializable from any supported format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl Serialize for i64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

impl<'de> Deserialize<'de> for i64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_i64()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use crate::{Deserialize, Deserializer, Error};
}

pub mod ser {
    pub use crate::{Error, Serialize, Serializer};
}
