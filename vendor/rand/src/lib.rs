//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal implementation of exactly the API surface it uses: `StdRng` /
//! `SmallRng` seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool`, and `gen_range` over primitive integer and
//! float ranges. The generator is xoshiro256** seeded through splitmix64 —
//! deterministic across runs and platforms, which is all the workloads
//! (seeded synthetic data, Metropolis sampling, property tests) require.
//!
//! This is NOT a drop-in replacement for the real crate: streams differ from
//! upstream `rand`, and only the listed methods exist.

/// Types which can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (bools, floats in `[0,1)`, full-range ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`, mirroring upstream `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64_unit(self.next_u64()) < p
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges).
    ///
    /// # Panics
    /// Panics if the range is empty, mirroring upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Map 64 random bits to a float in `[0, 1)`.
fn f64_unit(bits: u64) -> f64 {
    // 53 high bits give a uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Distribution support for [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_unit(rng.next_u64())
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] can sample from, generic over the output type
/// so integer literals infer from context as with upstream `rand`.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 as u128).wrapping_sub(self.start as i128 as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128).wrapping_add(offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128).wrapping_add(offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64_unit(rng.next_u64()) * (self.end - self.start)
    }
}

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_u64(seed: u64) -> Self {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256 { s }
    }

    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256::from_seed_u64(state)
    }
}

pub mod rngs {
    //! Named generators mirroring `rand::rngs`.

    /// Deterministic "standard" generator (xoshiro256**, not ChaCha).
    pub type StdRng = super::Xoshiro256;
    /// Small-state generator; same engine as [`StdRng`] here.
    pub type SmallRng = super::Xoshiro256;
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=4);
            assert!(w <= 4);
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
