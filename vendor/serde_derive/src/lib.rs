//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on data types as forward
//! declarations of serializability, but nothing in-tree instantiates a real
//! serializer (serde_json is not available offline). These derives therefore
//! expand to nothing: the annotation compiles, no trait impl is generated,
//! and any future code that actually *bounds* on the traits will fail to
//! compile — loudly, at the bound — rather than silently misbehave.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
