//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate implements
//! exactly the API surface the workspace uses — scoped task spawning — on
//! top of [`std::thread::scope`]. Each `Scope::spawn` starts a real OS
//! thread instead of queueing onto a work-stealing pool; the callers in
//! `pscds-core::partition` spawn one task per worker (not per work item),
//! so the missing pool costs a handful of thread launches per engine call.
//!
//! The contract mirrored from upstream:
//!
//! * [`scope`] runs a closure that may spawn borrowing tasks and returns
//!   only after every spawned task has finished.
//! * [`Scope::spawn`] tasks may themselves spawn further tasks.
//! * A panic in any task propagates out of [`scope`] after all tasks have
//!   been joined.
//! * [`join`] runs two closures and returns both results (sequentially
//!   here — upstream may run them on two threads).
//! * [`current_num_threads`] reports the available parallelism.

/// A scope in which borrowing tasks can be spawned.
///
/// Mirrors `rayon::Scope`, carrying the extra `'env` lifetime of the
/// underlying [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. The task runs
    /// on its own thread and is joined before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope for spawning borrowing tasks; returns once every task
/// spawned within it has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures and returns both results. Upstream may run them in
/// parallel; this stand-in runs them sequentially, which satisfies the
/// same contract.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// The number of threads a parallel driver should assume is available.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn tasks_can_spawn_nested_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(10, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn tasks_borrow_from_environment() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        scope(|s| {
            let (lo, hi) = data.split_at(2);
            let (s0, s1) = (&sums[0], &sums[1]);
            s.spawn(move |_| {
                s0.store(lo.iter().sum::<u64>() as usize, Ordering::SeqCst);
            });
            s.spawn(move |_| {
                s1.store(hi.iter().sum::<u64>() as usize, Ordering::SeqCst);
            });
        });
        assert_eq!(sums[0].load(Ordering::SeqCst), 3);
        assert_eq!(sums[1].load(Ordering::SeqCst), 7);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "ok");
        assert_eq!(a, 2);
        assert_eq!(b, "ok");
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
