//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (lock
//! methods return guards directly, not `Result`s). Poisoning is swallowed by
//! taking the inner value: the workspace's interner-style users hold locks
//! only for infallible operations, so a poisoned lock means a panic already
//! unwound elsewhere and the protected state is still structurally valid.

use std::sync::{self, PoisonError};

/// Reader-writer lock with the parking_lot guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutex with the parking_lot guard-returning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
