//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest 1.x this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` /  `prop_filter` /
//! `prop_filter_map`, integer-range and regex-literal strategies, tuple
//! composition, [`collection::vec`] / [`collection::btree_set`], the
//! `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!` macros, and
//! a deterministic case runner seeded from the test name.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports the case number and assertion
//!   message; re-running is deterministic, so the failure reproduces.
//! - **Fixed seeding.** Each test's RNG is seeded from its name, so runs are
//!   reproducible across machines (no `PROPTEST_*` env integration).
//! - Regex strategies support character classes, literals, and the
//!   quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` — enough for identifier-shaped
//!   patterns, not full regex.

pub mod test_runner {
    //! Deterministic RNG, config, and case-level error type.

    /// splitmix64; deterministic and platform-independent.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from the test name (FNV-1a), so each property gets
        /// an independent, reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(hash)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform value in `[0, span)`; `span == 0` means the full range.
        pub fn below(&mut self, span: u128) -> u128 {
            if span == 0 {
                return self.next_u128();
            }
            // Boundary bias: real proptest over-samples edges; 1 in 8 cases
            // probe the ends of the range where off-by-one bugs live.
            if span > 2 && self.next_u64().is_multiple_of(8) {
                return match self.next_u64() % 3 {
                    0 => 0,
                    1 => 1,
                    _ => span - 1,
                };
            }
            self.next_u128() % span
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty set");
            (self.next_u128() % n as u128) as usize
        }
    }

    /// Runner configuration; only `cases` is meaningful in the stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Max generation+assume rejections per accepted case before the
        /// runner gives up (mirrors proptest's local reject limit).
        pub max_local_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_local_rejects: 64,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Case rejected by `prop_assume!` / filter; not counted as a run.
        Reject(String),
        /// Assertion failure: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `gen_value` returns `None` when the candidate was filtered out; the
    /// runner retries with fresh randomness.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, filter: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                _whence: whence.into(),
                filter,
            }
        }

        fn prop_filter_map<O, F>(self, whence: impl Into<String>, map: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                _whence: whence.into(),
                map,
            }
        }

        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            (**self).gen_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen_value(rng).map(&self.map)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        _whence: String,
        filter: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen_value(rng).filter(|v| (self.filter)(v))
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        _whence: String,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen_value(rng).and_then(&self.map)
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Option<T::Value> {
            self.inner
                .gen_value(rng)
                .and_then(|v| (self.map)(v).gen_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            let pick = rng.index(self.options.len());
            self.options[pick].gen_value(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 as u128).wrapping_sub(self.start as i128 as u128);
                    Some((self.start as i128).wrapping_add(rng.below(span) as i128) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 as u128)
                        .wrapping_sub(start as i128 as u128)
                        .wrapping_add(1);
                    Some((start as i128).wrapping_add(rng.below(span) as i128) as $t)
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    let span = (<$t>::MAX as i128 as u128)
                        .wrapping_sub(self.start as i128 as u128)
                        .wrapping_add(1);
                    Some((self.start as i128).wrapping_add(rng.below(span) as i128) as $t)
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // u128 ranges need widening beyond i128; handled separately without the
    // signed round-trip (the workspace only uses non-negative u128 bounds).
    impl Strategy for core::ops::Range<u128> {
        type Value = u128;

        fn gen_value(&self, rng: &mut TestRng) -> Option<u128> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + rng.below(self.end - self.start))
        }
    }

    impl Strategy for core::ops::RangeInclusive<u128> {
        type Value = u128;

        fn gen_value(&self, rng: &mut TestRng) -> Option<u128> {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            let span = (end - start).wrapping_add(1); // 0 means full range
            Some(start.wrapping_add(rng.below(span)))
        }
    }

    impl Strategy for core::ops::RangeFrom<u128> {
        type Value = u128;

        fn gen_value(&self, rng: &mut TestRng) -> Option<u128> {
            let span = (u128::MAX - self.start).wrapping_add(1);
            Some(self.start.wrapping_add(rng.below(span)))
        }
    }

    /// String-literal strategies: a regex subset (char classes, literals,
    /// `{m}` / `{m,n}` / `?` / `*` / `+`) generating matching strings.
    impl Strategy for &'static str {
        type Value = String;

        fn gen_value(&self, rng: &mut TestRng) -> Option<String> {
            Some(generate_from_pattern(self, rng))
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let (choices, next) = parse_element(&chars, i, pattern);
            let (min, max, after) = parse_quantifier(&chars, next, pattern);
            i = after;
            let count = min + rng.below((max - min + 1) as u128) as usize;
            for _ in 0..count {
                out.push(choices[rng.index(choices.len())]);
            }
        }
        out
    }

    /// One element: a `[...]` class or a literal char. Returns the candidate
    /// characters and the index just past the element.
    fn parse_element(chars: &[char], i: usize, pattern: &str) -> (Vec<char>, usize) {
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                + i;
            let mut choices = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                    for c in lo..=hi {
                        choices.push(c);
                    }
                    j += 3;
                } else {
                    choices.push(chars[j]);
                    j += 1;
                }
            }
            assert!(
                !choices.is_empty(),
                "empty character class in pattern {pattern:?}"
            );
            (choices, close + 1)
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            (vec![chars[i + 1]], i + 2)
        } else {
            (vec![chars[i]], i + 1)
        }
    }

    /// Optional quantifier after an element: `(min, max, index_after)`.
    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        const UNBOUNDED: usize = 8; // cap for * and +
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, UNBOUNDED, i + 1),
            Some('+') => (1, UNBOUNDED, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let parse = |s: &str| {
                    s.parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
                };
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => {
                        let n = parse(&body);
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
                (min, max, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.gen_value(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u128) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
            // Duplicates collapse, so the set may come out smaller than the
            // drawn size — same contract as real proptest's btree_set.
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                let __generated =
                    $crate::strategy::Strategy::gen_value(&__strategy, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    match __generated {
                        ::std::option::Option::None => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::reject("filtered"),
                        ),
                        ::std::option::Option::Some(__value) => (move || {
                            let ($($pat,)+) = __value;
                            $body
                            ::std::result::Result::Ok(())
                        })(),
                    };
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __passed += 1;
                        __rejected = 0;
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejected += 1;
                        if __rejected > __config.max_local_rejects {
                            panic!(
                                "proptest {}: {} consecutive rejected cases ({})",
                                stringify!($name), __rejected, __why
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed (after {} passing cases): {}",
                            stringify!($name), __passed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property; failure reports the case rather
/// than unwinding, matching proptest semantics (minus shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __left,
            __right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_shapes() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,3}".gen_value(&mut rng).unwrap();
            assert!((1..=4).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_honor_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let v = (0u128..u128::MAX / 2).gen_value(&mut rng).unwrap();
            assert!(v < u128::MAX / 2);
            let w = (-5i64..=5).gen_value(&mut rng).unwrap();
            assert!((-5..=5).contains(&w));
            let x = (0u64..).gen_value(&mut rng).unwrap();
            let _ = x;
        }
    }

    proptest! {
        #[test]
        fn macro_runner_binds_and_asserts(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn configured_runner_works(v in crate::collection::vec(0i32..10, 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }
}
