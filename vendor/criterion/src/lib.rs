//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) as a straightforward wall-clock harness: each
//! benchmark runs a short calibration pass, then a timed pass, and prints
//! mean time per iteration. No statistics, plots, or baselines — numbers
//! are indicative only, but the harness is honest about wall-clock cost and
//! keeps every bench target compiling and runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    measurement_time: Duration,
    /// (total elapsed, iterations) of the timed pass, for reporting.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: estimate per-iter cost from a short burst.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(5) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = self.measurement_time.as_secs_f64();
        let planned = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..planned {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), planned));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        // Sample count shapes criterion's statistics; the stub has none.
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            result: None,
        };
        f(&mut bencher);
        report(&self.name, &id.id, bencher.result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        report(&self.name, &id.id, bencher.result);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "{group}/{id}: {} per iter ({iters} iters)",
                human_time(per_iter)
            );
        }
        None => println!("{group}/{id}: no measurement (iter never called)"),
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn warm_up_time(self, _time: Duration) -> Self {
        self
    }

    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// Declares a benchmark group: simple form `criterion_group!(name, fns...)`
/// or configured form `criterion_group! { name = n; config = expr; targets = fns... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
