#!/usr/bin/env bash
# The full local CI gate: build, test, formatting, lints.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI green"
