#!/usr/bin/env bash
# The full local CI gate: build, test (serial and parallel), formatting,
# lints, and an experiment smoke run.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

# Workspace invariant lints + schedule-exhaustive interleaving models
# (crates/analysis): engine twin/parity coverage, budget-bypass, relaxed
# atomics, no-panic, error provenance — and an exhaustive check of every
# 2-3-worker interleaving of the SearchControl and Budget fork/cancel
# protocols. Runs early: it is fast and catches structural drift before
# the expensive test passes.
echo "==> pscds-lint (invariant lints + interleaving models)"
SECONDS=0
cargo run -q -p pscds-analysis --bin pscds-lint
echo "    lint + interleave pass: ${SECONDS}s"

# The JSON report must validate against its own schema and be
# byte-identical across two independent runs — the same determinism
# contract the engines are held to, applied to the lint tool itself.
echo "==> pscds-lint --format json (schema validation, byte-determinism)"
lint() { cargo run -q -p pscds-analysis --bin pscds-lint -- "$@"; }
lint --format json --no-interleave > target/lint-report.json
lint --format json --no-interleave > target/lint-report-rerun.json
cmp target/lint-report.json target/lint-report-rerun.json || {
    echo "lint JSON report is not byte-deterministic across runs" >&2
    exit 1
}
lint --validate-json target/lint-report.json

# The suppression census must match the checked-in baseline exactly:
# every added or removed lint-allow is a reviewed, deliberate diff, and
# the count is meant to ratchet down, never silently up.
echo "==> lint suppression baseline diff"
lint --suppressions > target/lint-suppressions.txt
diff -u scripts/lint_suppressions.baseline target/lint-suppressions.txt || {
    echo "suppression census drifted from scripts/lint_suppressions.baseline:" >&2
    echo "review the lint-allow changes, then update the baseline file" >&2
    exit 1
}

# The parallel execution layer promises bit-identical results for every
# thread count, so the suite runs twice: once pinned to the serial legacy
# path, once at the environment default (all available cores). Both
# passes deliberately use the debug profile: the DP and signature engines
# guard their invariants with debug_assert!, which only executes here —
# the release build above checks optimized compilation, these check
# semantics.
echo "==> cargo test (PSCDS_THREADS=1: serial legacy path, debug profile)"
PSCDS_THREADS=1 cargo test --workspace -q

echo "==> cargo test (default thread count, debug profile)"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the E1 experiment binary: cross-checks the closed forms and
# the serial/parallel counters end to end, and asserts internally. The
# `--dp-scale-max 4` bench smoke runs the scaled Example 5.1 family at
# m ≤ 4 under both the exact DFS and the memoized DP — the binary
# asserts bit-identical totals and per-tuple confidences, so any DP
# divergence fails this step. It also emits BENCH_confidence.json and
# appends BENCH_history.jsonl in the single schema of
# `pscds_bench::schema` (engine, m, wall-ns, cache statistics); the
# smoke runs work in a scratch directory so the committed full-ladder
# numbers survive.
#
# The smoke run doubles as the observability determinism gate: the E1.6
# DP pass runs twice — serial and at 4 threads — each streaming a
# `--trace-out` JSONL trace, and the merged counter totals extracted
# from the two traces must be byte-identical (gauges are scheduling
# diagnostics and are excluded; see DESIGN.md §3.11).
echo "==> e1_example51 smoke run (DP parity at m <= 4, traced at 1 and 4 threads)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && cargo run \
    --manifest-path "$OLDPWD/Cargo.toml" \
    -p pscds-bench --release --bin e1_example51 -- \
    --dp-scale-max 4 --threads 1 --trace-out trace-serial.jsonl >/dev/null)
(cd "$smoke_dir" && cargo run \
    --manifest-path "$OLDPWD/Cargo.toml" \
    -p pscds-bench --release --bin e1_example51 -- \
    --dp-scale-max 4 --threads 4 --trace-out trace-par4.jsonl >/dev/null)
[ -s "$smoke_dir/BENCH_confidence.json" ] || {
    echo "bench smoke did not produce BENCH_confidence.json" >&2
    exit 1
}
grep -q '"engine": "dp"' "$smoke_dir/BENCH_confidence.json" || {
    echo "BENCH_confidence.json is missing DP engine records" >&2
    exit 1
}

echo "==> bench_validate (schema + trace validation, counter determinism diff)"
bench_validate() {
    cargo run -q --manifest-path "$OLDPWD/Cargo.toml" \
        -p pscds-bench --release --bin bench_validate -- "$@"
}
(cd "$smoke_dir" \
    && bench_validate BENCH_confidence.json \
    && bench_validate --history BENCH_history.jsonl \
    && bench_validate --jsonl trace-serial.jsonl \
    && bench_validate --jsonl trace-par4.jsonl \
    && bench_validate --counters trace-serial.jsonl > counters-serial.txt \
    && bench_validate --counters trace-par4.jsonl > counters-par4.txt)
[ -s "$smoke_dir/counters-serial.txt" ] || {
    echo "serial trace produced no counter totals" >&2
    exit 1
}
diff -u "$smoke_dir/counters-serial.txt" "$smoke_dir/counters-par4.txt" || {
    echo "counter totals differ between --threads 1 and --threads 4" >&2
    exit 1
}

# Step-attribution profiler gate (DESIGN.md §3.16): the summary must
# show the attribution invariant holding (span self-steps == the
# budget.ticks counter), and `pscds-trace diff` between the serial and
# 4-thread traces must see zero drift at threshold 0 — counters and
# histogram count/sum pairs are part of the determinism contract.
echo "==> pscds-trace (step-attribution summary + zero cross-thread drift)"
pscds_trace() {
    cargo run -q --manifest-path "$OLDPWD/Cargo.toml" \
        -p pscds-bench --release --bin pscds-trace -- "$@"
}
(cd "$smoke_dir" \
    && pscds_trace summary trace-serial.jsonl > profile-serial.txt \
    && pscds_trace critical-path trace-serial.jsonl > critical-serial.txt \
    && pscds_trace diff trace-serial.jsonl trace-par4.jsonl > trace-drift.txt)
attrib=$(awk '/^attributed steps:/ { print ($3 == $7) ? "ok" : "bad" }' \
    "$smoke_dir/profile-serial.txt")
[ "$attrib" = "ok" ] || {
    echo "step attribution broken: span self-steps != budget.ticks" >&2
    cat "$smoke_dir/profile-serial.txt" >&2
    exit 1
}
[ -s "$smoke_dir/critical-serial.txt" ] || {
    echo "pscds-trace critical-path produced no output" >&2
    exit 1
}
grep -q '(no differences)' "$smoke_dir/trace-drift.txt" || {
    echo "pscds-trace diff found cross-thread drift:" >&2
    cat "$smoke_dir/trace-drift.txt" >&2
    exit 1
}

# Wall-clock regression gate: the committed history has one record per
# benchmark id (trivially green — it documents the format); the smoke
# history accumulates a threads-1 and a threads-4 record per id, so the
# newest-vs-previous comparison really runs. The 900% headroom keeps a
# shared CI box from flaking while still catching order-of-magnitude
# regressions.
echo "==> bench_validate --regress (wall-clock history gate)"
cargo run -q -p pscds-bench --release --bin bench_validate -- \
    --regress BENCH_history.jsonl
(cd "$smoke_dir" && bench_validate --regress BENCH_history.jsonl 900)

# Fault suite: the robustness stack (DESIGN.md §3.12) end to end on the
# Example 5.1 catalog under two fault seeds. Seed A is a transient blip
# healed by the retry path — the answer must be byte-identical to a
# fault-free run (only the attempt counts differ, so the source-access
# banner is stripped before the diff). Seed B is a hard outage of S2:
# without --partial the run must exit 2, with --partial it must exit 4
# and emit interval brackets whose counters prove containment
# (interval.point_contained == interval.tuples) — and the whole traced
# replay must be byte-identical between --threads 1 and --threads 4.
echo "==> fault suite (replay determinism, retry convergence, interval containment)"
pscds_cli() { "$OLDPWD/target/release/pscds" "$@"; }
cat > "$smoke_dir/example51.pscds" <<'EOT'
source S1 {
  view: V1(x) <- R(x)
  completeness: 1/2
  soundness: 1/2
  extension: V1(a). V1(b).
}
source S2 {
  view: V2(x) <- R(x)
  completeness: 1/2
  soundness: 1/2
  extension: V2(b). V2(c).
}
EOT
printf 'seed: 7\ndefault { down: 0..1 }\n' > "$smoke_dir/transient.plan"
printf 'seed: 99\ndefault { fail: 1/8 }\nsource S2 { down: 0..100 }\n' \
    > "$smoke_dir/outage.plan"
(
    cd "$smoke_dir"
    pscds_cli confidence example51.pscds --padding 1 > plain.txt
    pscds_cli confidence example51.pscds --padding 1 \
        --fault-plan transient.plan --retries 2 > transient.txt
    # Strip the access block (the banner plus its indented status
    # lines): retried fetches differ only in attempt counts.
    awk '/^source access:$/ { skip = 1; next }
         skip && /^  / { next }
         { skip = 0; print }' transient.txt > transient-answer.txt
    diff -u plain.txt transient-answer.txt || {
        echo "retry-then-success answer differs from the fault-free run" >&2
        exit 1
    }

    status=0
    pscds_cli confidence example51.pscds --padding 1 \
        --fault-plan outage.plan > /dev/null 2> outage-err.txt || status=$?
    [ "$status" -eq 2 ] || {
        echo "hard outage without --partial must exit 2 (got $status)" >&2
        exit 1
    }
    grep -q "S2 unavailable" outage-err.txt

    for threads in 1 4; do
        status=0
        pscds_cli confidence example51.pscds --padding 1 \
            --fault-plan outage.plan --partial --threads "$threads" \
            --trace-out "fault-t$threads.jsonl" > "partial-t$threads.txt" \
            || status=$?
        [ "$status" -eq 4 ] || {
            echo "--partial under a hard outage must exit 4 (got $status)" >&2
            exit 1
        }
    done
    diff -u partial-t1.txt partial-t4.txt || {
        echo "partial answers differ between --threads 1 and --threads 4" >&2
        exit 1
    }
    bench_validate --counters fault-t1.jsonl > fault-counters-t1.txt
    bench_validate --counters fault-t4.jsonl > fault-counters-t4.txt
    diff -u fault-counters-t1.txt fault-counters-t4.txt || {
        echo "fault-replay counter totals differ across thread counts" >&2
        exit 1
    }
    tuples=$(awk '$1 == "interval.tuples" { print $2 }' fault-counters-t1.txt)
    contained=$(awk '$1 == "interval.point_contained" { print $2 }' fault-counters-t1.txt)
    [ -n "$tuples" ] && [ "$tuples" -gt 0 ] || {
        echo "partial run recorded no interval.tuples" >&2
        exit 1
    }
    [ "$tuples" = "$contained" ] || {
        echo "interval containment violated: $contained of $tuples brackets hold the point" >&2
        exit 1
    }
)

# Circuit gate (DESIGN.md §3.13): the compiled shared-node circuit must
# answer byte-identically to the DP engine on the Example 5.1 catalog at
# two thread counts (after stripping the engine banner and compile-stats
# lines, the only intentional difference), the metamorphic suite must
# hold end to end, and the E11 compile-once/query-many run must append a
# schema-valid "circuit" record to BENCH_history.jsonl — the binary
# itself asserts bit-identical answers and the ≥5× amortized speedup.
echo "==> circuit gate (DP parity at 2 thread counts, metamorphic suite, E11 amortization)"
cargo test -q --release --test circuit_metamorphic
(
    cd "$smoke_dir"
    for threads in 1 4; do
        pscds_cli confidence example51.pscds --padding 1 \
            --engine circuit --threads "$threads" > "circuit-t$threads.txt"
    done
    diff -u circuit-t1.txt circuit-t4.txt || {
        echo "circuit answers differ between --threads 1 and --threads 4" >&2
        exit 1
    }
    grep -q '^compile stats:' circuit-t1.txt || {
        echo "--engine circuit printed no compile stats" >&2
        exit 1
    }
    pscds_cli confidence example51.pscds --padding 1 --engine dp > dp.txt
    grep -v -e '^engine:' -e '^compile stats:' circuit-t1.txt > circuit-answer.txt
    grep -v '^engine:' dp.txt > dp-answer.txt
    diff -u circuit-answer.txt dp-answer.txt || {
        echo "circuit answer differs from the dp engine" >&2
        exit 1
    }
    cargo run -q --manifest-path "$OLDPWD/Cargo.toml" \
        -p pscds-bench --release --bin e11_circuit -- --queries 120 > e11.txt
    grep -q '"engine": "circuit"' BENCH_history.jsonl || {
        echo "E11 left no circuit record in BENCH_history.jsonl" >&2
        exit 1
    }
    bench_validate --history BENCH_history.jsonl > /dev/null
)

# Delta gate (DESIGN.md §3.14): replay a seeded update stream through
# the incremental maintenance session at two thread counts — the full
# rendered replay (epoch lines, final confidence table, maintenance
# summary) must be byte-identical, and the traced counter totals
# (including the delta.* maintenance counters) must match. The E10
# smoke run then checks the incremental route against per-epoch
# recompute (the binary asserts bit-identical verdicts, world counts,
# and confidences at every epoch) and must append schema-valid
# "incremental" records to BENCH_history.jsonl.
echo "==> delta gate (replay determinism at 2 thread counts, E10 smoke)"
cat > "$smoke_dir/stream.deltas" <<'EOT'
batch {
  source S1 {
    insert: V1(c).
  }
}
batch {
  source S1 {
    delete: V1(a).
  }
  source S2 {
    delete: V2(c).
  }
}
batch {
  source S1 {
    insert: V1(a).
  }
}
EOT
(
    cd "$smoke_dir"
    for threads in 1 4; do
        pscds_cli confidence example51.pscds --padding 1 \
            --deltas stream.deltas --threads "$threads" \
            --trace-out "delta-t$threads.jsonl" > "delta-t$threads.txt"
    done
    diff -u delta-t1.txt delta-t4.txt || {
        echo "delta replays differ between --threads 1 and --threads 4" >&2
        exit 1
    }
    grep -q '^delta maintenance:' delta-t1.txt || {
        echo "delta replay printed no maintenance summary" >&2
        exit 1
    }
    bench_validate --counters delta-t1.jsonl > delta-counters-t1.txt
    bench_validate --counters delta-t4.jsonl > delta-counters-t4.txt
    diff -u delta-counters-t1.txt delta-counters-t4.txt || {
        echo "delta-replay counter totals differ across thread counts" >&2
        exit 1
    }
    applied=$(awk '$1 == "delta.batches_applied" { print $2 }' delta-counters-t1.txt)
    [ -n "$applied" ] && [ "$applied" -eq 4 ] || {
        echo "delta replay recorded ${applied:-no} applied batches, expected 4" >&2
        exit 1
    }
    cargo run -q --manifest-path "$OLDPWD/Cargo.toml" \
        -p pscds-bench --release --bin e10_deltas -- --batches 6 > e10.txt
    grep -q '"engine": "incremental"' BENCH_history.jsonl || {
        echo "E10 left no incremental record in BENCH_history.jsonl" >&2
        exit 1
    }
    bench_validate --history BENCH_history.jsonl > /dev/null
)

echo "==> CI green"
