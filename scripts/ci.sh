#!/usr/bin/env bash
# The full local CI gate: build, test (serial and parallel), formatting,
# lints, and an experiment smoke run.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

# The parallel execution layer promises bit-identical results for every
# thread count, so the suite runs twice: once pinned to the serial legacy
# path, once at the environment default (all available cores).
echo "==> cargo test (PSCDS_THREADS=1: serial legacy path)"
PSCDS_THREADS=1 cargo test --workspace -q

echo "==> cargo test (default thread count)"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the E1 experiment binary: cross-checks the closed forms and
# the serial/parallel counters end to end, and asserts internally.
echo "==> e1_example51 smoke run"
cargo run -p pscds-bench --release --bin e1_example51 >/dev/null

echo "==> CI green"
