//! A data-quality audit workflow: load a source collection from the text
//! format, check consistency, find the trustworthy core when it fails,
//! and extract guaranteed answers without enumerating any domain.
//!
//! Exercises the implemented Section 6 future-work features: consensus
//! analysis (`core::consensus`) and the template-based certain-answer
//! lower bound (`core::answers::certain_lower`).
//!
//! Run with: `cargo run --example quality_audit`

use pscds::core::answers::certain_answer_lower_bound;
use pscds::core::consensus::maximal_consistent_subsets;
use pscds::core::consistency::decide_identity;
use pscds::core::textfmt::{format_collection, parse_collection};
use pscds::core::SourceCollection;
use pscds::relational::parser::parse_rule;

const REGISTRY: &str = r"
# Four catalog mirrors report the products they carry, with self-assessed
# quality bounds. 'flaky' fabricates items and overclaims.
source warehouse_a {
  view: A(x) <- Product(x)
  completeness: 3/4
  soundness: 1
  extension: A(anvil). A(bolt). A(crate).
}
source warehouse_b {
  view: B(x) <- Product(x)
  completeness: 3/4
  soundness: 1
  extension: B(anvil). B(bolt). B(drill).
}
source warehouse_c {
  view: C(x) <- Product(x)
  completeness: 1/2
  soundness: 1
  extension: C(anvil). C(crate).
}
source flaky {
  view: F(x) <- Product(x)
  completeness: 1
  soundness: 1
  extension: F(unobtainium).
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let collection = parse_collection(REGISTRY)?;
    println!("Loaded {} sources:\n{collection}", collection.len());

    // 1. The full fleet's claims are contradictory.
    let identity = collection.as_identity()?;
    let verdict = decide_identity(&identity, 0);
    println!("Full fleet consistent? {}", verdict.is_consistent());
    assert!(!verdict.is_consistent());

    // 2. Consensus: who can be trusted together?
    let report = maximal_consistent_subsets(&collection, 0)?;
    println!("\nMaximal consistent subsets:");
    for subset in &report.maximal_subsets {
        let names: Vec<&str> = subset
            .iter()
            .map(|&i| collection.sources()[i].name())
            .collect();
        println!("  {{{}}}", names.join(", "));
    }
    let outliers = report.outliers();
    println!(
        "Outliers (inconsistent with every other source): {:?}",
        outliers
            .iter()
            .map(|&i| collection.sources()[i].name())
            .collect::<Vec<_>>()
    );
    assert_eq!(outliers.len(), 1, "exactly the flaky source");

    // 3. Drop the outlier and work with the trustworthy core.
    let core: SourceCollection = SourceCollection::from_sources(
        collection
            .sources()
            .iter()
            .enumerate()
            .filter(|(i, _)| !outliers.contains(i))
            .map(|(_, s)| s.clone()),
    );
    let core_identity = core.as_identity()?;
    assert!(decide_identity(&core_identity, 0).is_consistent());
    println!(
        "\nTrustworthy core of {} sources is consistent.",
        core.len()
    );

    // 4. Guaranteed products — the template-based certain-answer lower
    //    bound needs no domain enumeration at all.
    let query = parse_rule("Ans(x) <- Product(x)")?;
    let guaranteed = certain_answer_lower_bound(&core, &query)?
        .expect("satisfiable sound-subset combinations exist");
    println!(
        "Products guaranteed to exist (template lower bound): {:?}",
        guaranteed
            .iter()
            .map(|f| f.args[0].to_string())
            .collect::<Vec<_>>()
    );
    // Soundness-1 sources force their whole extensions into every world.
    for item in ["anvil", "bolt", "crate", "drill"] {
        assert!(
            guaranteed
                .iter()
                .any(|f| f.args[0] == pscds::relational::Value::sym(item)),
            "{item} must be guaranteed"
        );
    }

    // 5. Round-trip the audited core back to the text format.
    let exported = format_collection(&core);
    let reparsed = parse_collection(&exported)?;
    assert_eq!(reparsed, core);
    println!(
        "\nAudited collection re-exported ({} bytes of text).",
        exported.len()
    );

    Ok(())
}
