//! The Section 6 closing scenario: multiple mirrors of a set of objects,
//! each stale (missing live objects) and partially obsolete (serving
//! deleted ones).
//!
//! Demonstrates the identity-view machinery at its intended scale:
//! consistency, exact confidence ranking of objects across mirrors, and
//! the certain/possible object sets.
//!
//! Run with: `cargo run --example web_mirrors`

use pscds::core::confidence::{ConfidenceAnalysis, PossibleWorlds};
use pscds::core::consistency::decide_identity;
use pscds::datagen::mirrors::{generate, MirrorConfig};
use pscds::numeric::Rational;
use pscds::relational::parser::parse_rule;
use pscds::relational::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MirrorConfig {
        n_objects: 8,
        n_obsolete: 3,
        n_mirrors: 4,
        staleness: 0.25,
        obsolescence: 0.4,
        seed: 42,
    };
    let scenario = generate(&config)?;

    println!("Origin objects: {:?}", syms(&scenario.origin));
    println!(
        "Obsolete objects (deleted upstream): {:?}",
        syms(&scenario.obsolete)
    );
    println!();
    for source in scenario.collection.sources() {
        println!(
            "  {} holds {} objects (claims c ≥ {}, s ≥ {})",
            source.name(),
            source.extension_len(),
            source.completeness(),
            source.soundness()
        );
    }

    // Consistency of the mirror fleet's claims.
    let identity = scenario.collection.as_identity()?;
    let consistency = decide_identity(&identity, 0);
    println!(
        "\nMirror claims consistent? {}",
        consistency.is_consistent()
    );

    // Exact confidence per object: which objects is the origin likely to
    // actually have right now?
    let analysis = ConfidenceAnalysis::analyze(&identity, 0);
    println!("Possible worlds: {}", analysis.world_count());
    let mut ranked: Vec<(Vec<Value>, Rational)> = identity
        .all_tuples()
        .into_iter()
        .map(|t| {
            let conf = analysis
                .confidence_of_tuple(&identity, &t)
                .expect("consistent collection");
            (t, conf)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    println!("\nObject confidence ranking (live objects should rank high):");
    for (tuple, conf) in &ranked {
        let name = tuple[0].to_string();
        let truth = if scenario.origin.contains(&tuple[0]) {
            "live"
        } else {
            "obsolete"
        };
        println!(
            "  {name:8} {:>9}  ≈{:.3}   [{truth}]",
            conf.to_string(),
            conf.to_f64()
        );
    }

    // Certain / possible object sets via the world oracle (the universe of
    // mentioned objects is small enough to enumerate).
    let mentioned: Vec<Value> = identity.all_tuples().into_iter().map(|t| t[0]).collect();
    let worlds = PossibleWorlds::enumerate(&scenario.collection, &mentioned)?;
    let query = parse_rule("Ans(x) <- Object(x)")?;
    let certain = worlds.certain_answer_cq(&query)?;
    let possible = worlds.possible_answer_cq(&query)?;
    println!(
        "\nCertain objects (in every possible world): {:?}",
        certain
            .iter()
            .map(|f| f.args[0].to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "Possible objects: {} of {} mentioned",
        possible.len(),
        mentioned.len()
    );

    // Sanity: the brute-force world count matches the signature counter.
    assert_eq!(
        analysis.world_count().to_u64().map(|v| v as usize),
        Some(worlds.count()),
        "engines agree on |poss(S)|"
    );

    Ok(())
}

fn syms(set: &std::collections::BTreeSet<Value>) -> Vec<String> {
    set.iter().map(ToString::to_string).collect()
}
