//! Quickstart: Example 5.1 from the paper, end to end.
//!
//! Builds the two-source collection, checks consistency, and computes
//! exact tuple confidences with all three engines (possible-world oracle,
//! explicit linear system Γ, signature counter), plus the certain and
//! possible answers.
//!
//! Run with: `cargo run --example quickstart`

use pscds::core::confidence::{ConfidenceAnalysis, LinearSystem, PossibleWorlds};
use pscds::core::consistency::{decide_identity, lemma31_bound};
use pscds::core::paper::{example_5_1, example_5_1_domain};
use pscds::relational::parser::parse_rule;
use pscds::relational::{Fact, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── The collection ────────────────────────────────────────────────
    // S1 = ⟨Id_R, {R(a), R(b)}, c ≥ 1/2, s ≥ 1/2⟩
    // S2 = ⟨Id_R, {R(b), R(c)}, c ≥ 1/2, s ≥ 1/2⟩
    let collection = example_5_1();
    println!("{collection}");

    // ── Consistency (Section 3) ───────────────────────────────────────
    let identity = collection.as_identity()?;
    let result = decide_identity(&identity, 0);
    println!("Consistent? {}", result.is_consistent());
    if let pscds::core::consistency::IdentityConsistency::Consistent { witness, .. } = &result {
        println!("Witness world: {witness}");
    }
    println!(
        "Lemma 3.1 small-model bound: {}",
        lemma31_bound(&collection)
    );

    // ── Tuple confidence (Section 5.1), domain {a, b, c, d1} ──────────
    let m = 1usize;
    let domain = example_5_1_domain(m);

    // Engine 1: brute-force possible worlds.
    let worlds = PossibleWorlds::enumerate(&collection, &domain)?;
    println!(
        "\n|poss(S)| over {} facts: {} worlds",
        domain.len(),
        worlds.count()
    );

    // Engine 2: the explicit linear system Γ.
    let gamma = LinearSystem::from_identity(&identity, &domain)?;
    println!(
        "Γ has {} variables and {} inequalities",
        gamma.n_vars(),
        gamma.inequalities().len()
    );

    // Engine 3: the signature counter (scales to huge domains).
    let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);

    println!("\nconfidence(t) = Pr(t ∈ D | D ∈ poss(S)):");
    for sym in ["a", "b", "c", "d1"] {
        let fact = Fact::new("R", [Value::sym(sym)]);
        let via_worlds = worlds.fact_confidence(&fact)?;
        let via_gamma = gamma.confidence(gamma.var_of(&fact).expect("in domain"))?;
        let via_signature = analysis.confidence_of_tuple(&identity, &[Value::sym(sym)])?;
        assert_eq!(via_worlds, via_gamma);
        assert_eq!(via_worlds, via_signature);
        println!(
            "  R({sym}): {via_signature}  (≈ {:.4}) — all three engines agree",
            via_signature.to_f64()
        );
    }

    // The signature engine handles domains the others never could:
    let big = ConfidenceAnalysis::analyze(&identity, 1_000_000);
    let conf_b = big.confidence_of_tuple(&identity, &[Value::sym("b")])?;
    println!(
        "\nAt m = 10^6: confidence(R(b)) = {} ≈ {:.8}",
        conf_b,
        conf_b.to_f64()
    );

    // ── Certain and possible answers (Section 5) ──────────────────────
    let query = parse_rule("Ans(x) <- R(x)")?;
    let certain = worlds.certain_answer_cq(&query)?;
    let possible = worlds.possible_answer_cq(&query)?;
    println!("\nQuery: {query}");
    println!("  certain answer Q_*(S): {certain:?}");
    println!(
        "  possible answer Q*(S): {:?}",
        possible.iter().map(ToString::to_string).collect::<Vec<_>>()
    );

    Ok(())
}
