//! The Theorem 3.2 machinery in action: solving HITTING SET *via* source
//! collection consistency, and certifying inconsistency via HITTING SET.
//!
//! Pipeline: HS instance → HS* (Lemma 3.3) → CONSISTENCY (Theorem 3.2)
//! → identity-view consistency solver → witness database → hitting set.
//!
//! Run with: `cargo run --example np_reduction`

use pscds::core::consistency::{decide_identity, IdentityConsistency};
use pscds::reductions::{
    consistency_witness_to_hitting_set, hs_star_to_consistency, hs_to_hs_star,
    project_hs_star_solution, solve_hitting_set, HittingSetInstance,
};
use std::collections::BTreeSet;

fn set(elems: &[u32]) -> BTreeSet<u32> {
    elems.iter().copied().collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small vertex-cover-flavoured HITTING SET instance:
    // hit every edge of the 5-cycle with at most 3 vertices.
    let instance = HittingSetInstance::new(
        vec![
            set(&[0, 1]),
            set(&[1, 2]),
            set(&[2, 3]),
            set(&[3, 4]),
            set(&[4, 0]),
        ],
        3,
    );
    println!("Instance: {instance}");

    // Reference answer from the direct branch-and-bound solver.
    let direct = solve_hitting_set(&instance);
    println!(
        "Direct solver: {}",
        direct
            .as_ref()
            .map_or("NO".to_owned(), |s| format!("YES, e.g. {s:?}"))
    );

    // Lemma 3.3: force the HS* shape by appending a fresh singleton.
    let (star, fresh) = hs_to_hs_star(&instance);
    println!("\nLemma 3.3 ⇒ HS* instance: {star}  (fresh element: {fresh})");

    // Theorem 3.2: build the source collection.
    let collection = hs_star_to_consistency(&star)?;
    println!("\nTheorem 3.2 ⇒ source collection:");
    print!("{collection}");

    // Decide consistency with the identity-view solver.
    let identity = collection.as_identity()?;
    match decide_identity(&identity, 0) {
        IdentityConsistency::Consistent { witness, .. } => {
            println!("CONSISTENT — witness database: {witness}");
            let star_solution = consistency_witness_to_hitting_set(&witness);
            let solution = project_hs_star_solution(&star_solution, fresh);
            println!(
                "Mapped back: hitting set {solution:?} (size {})",
                solution.len()
            );
            assert!(instance.is_solution(&solution), "round-trip must be valid");
            assert!(direct.is_some());
        }
        IdentityConsistency::Inconsistent => {
            println!("INCONSISTENT — the HS instance has no solution");
            assert!(direct.is_none());
        }
    }

    // And the contrapositive: an unsolvable instance yields an
    // inconsistent collection.
    let impossible = HittingSetInstance::new(vec![set(&[0]), set(&[1]), set(&[2])], 2);
    let (star, _) = hs_to_hs_star(&impossible);
    let collection = hs_star_to_consistency(&star)?;
    let verdict = decide_identity(&collection.as_identity()?, 0);
    println!(
        "\n3 disjoint singletons, budget 2 → collection is {}",
        if verdict.is_consistent() {
            "CONSISTENT (?!)"
        } else {
            "INCONSISTENT, as expected"
        }
    );
    assert!(!verdict.is_consistent());

    Ok(())
}
