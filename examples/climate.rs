//! The paper's Section 1.1 motivating scenario: integrating partially
//! sound and complete climate sources (GHCN-style).
//!
//! Generates a ground-truth world over `Temperature`/`Station`, derives
//! per-country sources with injected dropout (completeness loss) and
//! corruption (soundness loss), validates the Definition 2.1/2.2 measures
//! against the injected rates, and demonstrates the Lemma 3.1 witness
//! shrinking on the ground truth.
//!
//! Run with: `cargo run --example climate`

use pscds::core::consistency::{lemma31_bound, shrink_witness};
use pscds::core::measures::{in_poss, measure};
use pscds::datagen::climate::{generate, ClimateConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClimateConfig {
        countries: vec!["Canada".into(), "US".into(), "Norway".into()],
        stations_per_country: 3,
        first_year: 1900,
        years: 5,
        months: 12,
        dropout: 0.2,
        corruption: 0.05,
        seed: 2001,
    };
    let scenario = generate(&config)?;

    println!("Ground-truth world:");
    println!(
        "  stations:     {}",
        scenario.world.extension_len("Station".into())
    );
    println!(
        "  temperatures: {}",
        scenario.world.extension_len("Temperature".into())
    );

    println!("\nSources (views over the global schema):");
    for source in scenario.collection.sources() {
        println!("  {}: {}", source.name(), source.view());
    }

    println!("\nMeasured vs injected data quality (Definitions 2.1 / 2.2):");
    println!("  source  |φ(D)|  |v|   dropped corrupted  completeness  soundness");
    for (source, report) in scenario.collection.sources().iter().zip(&scenario.reports) {
        let m = measure(&scenario.world, source)?;
        println!(
            "  {:6}  {:5}  {:4}  {:7} {:9}  {:>8} ≈{:.3}  {:>7} ≈{:.3}",
            report.source,
            m.view_size,
            m.extension_size,
            report.dropped,
            report.corrupted,
            report.completeness.to_string(),
            m.completeness(),
            report.soundness.to_string(),
            m.soundness(),
        );
        assert!(m.completeness_at_least(source.completeness()));
        assert!(m.soundness_at_least(source.soundness()));
    }

    // The ground truth satisfies every claimed bound — it is a possible world.
    assert!(in_poss(&scenario.world, &scenario.collection)?);
    println!("\nGround truth ∈ poss(S): confirmed.");

    // Lemma 3.1: shrink the (large) ground truth to a small witness.
    let bound = lemma31_bound(&scenario.collection);
    let small = shrink_witness(&scenario.collection, &scenario.world)?;
    assert!(in_poss(&small, &scenario.collection)?);
    println!(
        "Lemma 3.1 witness shrinking: |G| = {} → |D| = {} (bound: {})",
        scenario.world.len(),
        small.len(),
        bound
    );
    assert!(small.len() <= bound);

    Ok(())
}
