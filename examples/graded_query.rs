//! Graded (confidence-weighted) query answering over a mirror fleet:
//! write the query as a rule, compile it to relational algebra, and
//! evaluate the Definition 5.1 compositional confidence — then compare
//! against the exact possible-world semantics to see where the
//! independence assumption bites.
//!
//! Run with: `cargo run --example graded_query`

use pscds::core::answers::{conf_q_cq, WorldsBaseTables};
use pscds::core::confidence::PossibleWorlds;
use pscds::datagen::mirrors::{generate, MirrorConfig};
use pscds::relational::parser::parse_rule;
use pscds::relational::{compile::compile_cq, Fact, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = generate(&MirrorConfig {
        n_objects: 5,
        n_obsolete: 3,
        n_mirrors: 2,
        staleness: 0.45,
        obsolescence: 0.5,
        seed: 3,
    })?;
    let identity = scenario.collection.as_identity()?;
    let mentioned: Vec<Value> = identity.all_tuples().into_iter().map(|t| t[0]).collect();
    let worlds = PossibleWorlds::enumerate(&scenario.collection, &mentioned)?;
    println!(
        "Mirror fleet over {} mentioned objects, {} possible worlds.",
        mentioned.len(),
        worlds.count()
    );

    // A rule query, compiled to algebra automatically.
    let rule = parse_rule("Pair(x, y) <- Object(x), Object(y), Neq(x, y)")?;
    println!("\nQuery (rule form):      {rule}");
    println!("Compiled (algebra form): {}", compile_cq(&rule)?);

    let base = WorldsBaseTables::new(&worlds);
    let graded = conf_q_cq(&rule, &base)?;
    println!("\nTop compositional confidences (Definition 5.1) vs exact:");
    let mut rows: Vec<_> = graded.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut max_gap = 0.0f64;
    for (tuple, compositional) in rows.iter().take(8) {
        let exact = worlds.query_confidence_cq(&rule, &Fact::new("Pair", tuple.clone()))?;
        let gap = (exact.to_f64() - compositional.to_f64()).abs();
        max_gap = max_gap.max(gap);
        println!(
            "  Pair({}, {})  conf_Q = {:<9} exact = {:<9} |Δ| = {:.4}",
            tuple[0],
            tuple[1],
            format!("{:.4}", compositional.to_f64()),
            format!("{:.4}", exact.to_f64()),
            gap
        );
    }
    println!(
        "\nLargest deviation seen: {max_gap:.4} — the price of Definition 5.1's\n\
         independence assumption on product queries (see experiment E6)."
    );

    Ok(())
}
