//! Metamorphic properties of the compiled confidence circuit: relations
//! that must hold between *different runs* of the engine, rather than
//! against a reference value. Each property is a transformation of the
//! input (permute the sources, round-trip the text format, condition on
//! a certain event) paired with the invariant the output must keep.
//! Together with `tests/engine_parity.rs` (bit-identity against the
//! uncompiled engines) this is the differential harness of DESIGN.md
//! §3.13.

use proptest::prelude::*;
use pscds::core::confidence::{
    analyze_circuit, analyze_circuit_conditional, analyze_circuit_topk, compile_circuit,
    CircuitConfig, CompiledCircuit, SignatureAnalysis,
};
use pscds::core::govern::Budget;
use pscds::core::paper::example_5_1;
use pscds::core::textfmt::{format_collection, parse_collection};
use pscds::core::{SourceCollection, SourceDescriptor};
use pscds::numeric::{Frac, Rational};
use pscds::relational::Value;

const DOMAIN: usize = 5;

fn domain() -> Vec<Value> {
    (0..DOMAIN).map(|i| Value::sym(&format!("u{i}"))).collect()
}

/// Strategy: a random identity-view collection over the 5-element domain
/// (the same shape as the engine-parity harness).
fn collections() -> impl Strategy<Value = SourceCollection> {
    let source = (
        proptest::collection::btree_set(0usize..DOMAIN, 0..=DOMAIN),
        0u64..=4,
        0u64..=4,
    );
    proptest::collection::vec(source, 1..=3).prop_map(|specs| {
        let dom = domain();
        let sources = specs
            .into_iter()
            .enumerate()
            .map(|(i, (ext, c, s))| {
                SourceDescriptor::identity(
                    format!("S{i}"),
                    &format!("V{i}"),
                    "R",
                    1,
                    ext.into_iter().map(|e| [dom[e]]),
                    Frac::new(c, 4),
                    Frac::new(s, 4),
                )
                .expect("valid descriptor")
            })
            .collect::<Vec<_>>();
        SourceCollection::from_sources(sources)
    })
}

/// Compiles `collection` over `padding` fresh domain facts.
fn compile(collection: &SourceCollection, padding: u64) -> CompiledCircuit {
    let identity = collection.as_identity().expect("identity views");
    compile_circuit(
        SignatureAnalysis::new(&identity, padding),
        &Budget::unlimited(),
        &CircuitConfig::default(),
    )
    .expect("unlimited budget")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Permuting the *order* of the sources relabels signature bits and
    /// reorders the signature classes, but the distribution over
    /// possible worlds is the same set of worlds — so every named
    /// tuple's confidence, and the world count, must be invariant. (The
    /// per-class numerators are source-order-sensitive internally; this
    /// property is exactly why the compiler may canonicalize *count*
    /// skeletons but must keep numerators pinned to the exact order.)
    #[test]
    fn source_order_permutation_leaves_confidences_invariant(collection in collections()) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let base = analyze_circuit(&compile(&collection, padding));

        let mut permuted_sources: Vec<SourceDescriptor> = collection.sources().to_vec();
        permuted_sources.reverse();
        let mut permutations = vec![permuted_sources];
        if collection.sources().len() > 2 {
            let mut rotated: Vec<SourceDescriptor> = collection.sources().to_vec();
            rotated.rotate_left(1);
            permutations.push(rotated);
        }
        for sources in permutations {
            let permuted = SourceCollection::from_sources(sources);
            let permuted_identity = permuted.as_identity().expect("identity views");
            let analysis = analyze_circuit(&compile(&permuted, padding));
            prop_assert_eq!(analysis.world_count(), base.world_count());
            prop_assert_eq!(analysis.feasible_vectors(), base.feasible_vectors());
            prop_assert_eq!(analysis.is_consistent(), base.is_consistent());
            if base.is_consistent() {
                for tuple in identity.all_tuples() {
                    prop_assert_eq!(
                        analysis
                            .confidence_of_tuple(&permuted_identity, &tuple)
                            .expect("consistent"),
                        base.confidence_of_tuple(&identity, &tuple).expect("consistent")
                    );
                }
            }
        }
    }

    /// Chain rule, empty case: `conf(t | ∅) == conf(t)` for every tuple.
    #[test]
    fn conditioning_on_the_empty_event_is_plain_confidence(collection in collections()) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let circuit = compile(&collection, padding);
        let analysis = analyze_circuit(&circuit);
        if analysis.is_consistent() {
            for tuple in identity.all_tuples() {
                prop_assert_eq!(
                    analyze_circuit_conditional(&circuit, &identity, &tuple, &[])
                        .expect("consistent"),
                    analysis.confidence_of_tuple(&identity, &tuple).expect("consistent")
                );
            }
        }
    }

    /// Top-k agrees with the full sort of `analyze_circuit` at every k:
    /// the same (descending confidence, ascending tuple) order, truncated.
    #[test]
    fn top_k_is_the_truncated_full_sort(collection in collections()) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let circuit = compile(&collection, padding);
        let analysis = analyze_circuit(&circuit);
        if !analysis.is_consistent() {
            return Ok(());
        }
        let mut full: Vec<(Vec<Value>, Rational)> = identity
            .all_tuples()
            .into_iter()
            .map(|t| {
                let conf = analysis.confidence_of_tuple(&identity, &t).expect("consistent");
                (t, conf)
            })
            .collect();
        full.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for k in 0..=full.len() + 1 {
            let topk = analyze_circuit_topk(&circuit, k).expect("consistent");
            prop_assert_eq!(&topk[..], &full[..k.min(full.len())]);
        }
    }

    /// Round-tripping the collection through the text format and
    /// recompiling yields a structurally identical circuit: same
    /// skeleton digest, same stats, same analysis.
    #[test]
    fn textfmt_round_trip_preserves_the_circuit_skeleton(collection in collections()) {
        let padding = 2u64;
        let original = compile(&collection, padding);
        let round_tripped = parse_collection(&format_collection(&collection))
            .expect("formatter output parses");
        let recompiled = compile(&round_tripped, padding);
        prop_assert_eq!(recompiled.skeleton_digest(), original.skeleton_digest());
        prop_assert_eq!(recompiled.stats(), original.stats());
        prop_assert_eq!(recompiled.node_count(), original.node_count());
        let a = analyze_circuit(&original);
        let b = analyze_circuit(&recompiled);
        prop_assert_eq!(a.world_count(), b.world_count());
        prop_assert_eq!(a.feasible_vectors(), b.feasible_vectors());
    }
}

/// Chain rule, certain case: a source with soundness 1 makes its
/// extension tuple true in *every* world, so conditioning on it cannot
/// move any confidence. (The certain tuple itself has confidence 1.)
#[test]
fn conditioning_on_a_certain_tuple_is_a_no_op() {
    let mut sources: Vec<SourceDescriptor> = example_5_1().sources().to_vec();
    sources.push(
        SourceDescriptor::identity(
            "S3",
            "V3",
            "R",
            1,
            [[Value::sym("z")]],
            Frac::ZERO,
            Frac::ONE,
        )
        .expect("valid descriptor"),
    );
    let collection = SourceCollection::from_sources(sources);
    let identity = collection.as_identity().expect("identity views");
    let padding = 3u64;
    let circuit = compile(&collection, padding);
    let analysis = analyze_circuit(&circuit);
    assert!(analysis.is_consistent());

    let certain = vec![Value::sym("z")];
    assert_eq!(
        analysis
            .confidence_of_tuple(&identity, &certain)
            .expect("consistent"),
        Rational::one(),
        "soundness-1 singleton extension must be certain"
    );
    let given = [certain.clone()];
    for tuple in identity.all_tuples() {
        assert_eq!(
            analyze_circuit_conditional(&circuit, &identity, &tuple, &given).expect("consistent"),
            analysis
                .confidence_of_tuple(&identity, &tuple)
                .expect("consistent"),
            "conditioning on the certain tuple moved conf({tuple:?})"
        );
    }
}
