//! Fault-injection replay suite (DESIGN.md §3.12): the recovery stack
//! must never change *what* is computed, only *whether* the catalog is
//! reachable. On the same random identity-view collections as
//! `tests/engine_parity.rs`:
//!
//! * partial-availability intervals bracket the fault-free point answer
//!   (computed independently by the exact counter on the full catalog),
//! * a transient fault recovered by a retry yields an answer
//!   bit-identical to a run that never failed (only the attempt counts
//!   differ), and
//! * replaying the same seeded [`FaultPlan`] at 1, 2, and 8 threads
//!   yields identical statuses, answers, and intervals.

use proptest::prelude::*;
use pscds::core::confidence::ConfidenceAnalysis;
use pscds::core::govern::Budget;
use pscds::core::obs::ObsSession;
use pscds::core::resilient::{
    confidence_under_faults, FaultAwareConfidence, LadderPolicy, ResilientConfidence,
};
use pscds::core::source::{AccessPolicy, SourceAccess, SourceStatus};
use pscds::core::{
    CatalogProvider, CoreError, FaultPlan, FaultSpec, FaultyProvider, ParallelConfig,
    SourceCollection, SourceDescriptor,
};
use pscds::numeric::{Frac, Rational};
use pscds::relational::Value;

const DOMAIN: usize = 5;
const THREADS: [usize; 3] = [1, 2, 8];

fn domain() -> Vec<Value> {
    (0..DOMAIN).map(|i| Value::sym(&format!("u{i}"))).collect()
}

/// Strategy: a random identity-view collection over the 5-element domain
/// (the `tests/engine_parity.rs` fixture distribution).
fn collections() -> impl Strategy<Value = SourceCollection> {
    let source = (
        proptest::collection::btree_set(0usize..DOMAIN, 0..=DOMAIN),
        0u64..=4,
        0u64..=4,
    );
    proptest::collection::vec(source, 1..=3).prop_map(|specs| {
        let dom = domain();
        let sources = specs
            .into_iter()
            .enumerate()
            .map(|(i, (ext, c, s))| {
                SourceDescriptor::identity(
                    format!("S{i}"),
                    &format!("V{i}"),
                    "R",
                    1,
                    ext.into_iter().map(|e| [dom[e]]),
                    Frac::new(c, 4),
                    Frac::new(s, 4),
                )
                .expect("valid descriptor")
            })
            .collect::<Vec<_>>();
        SourceCollection::from_sources(sources)
    })
}

fn padding_of(collection: &SourceCollection) -> u64 {
    let identity = collection.as_identity().expect("identity views");
    DOMAIN as u64 - identity.all_tuples().len() as u64
}

/// Runs the fault rung over `collection` under `plan` (catalog access
/// when `plan` is `None`) with the default policy, unlimited budget, and
/// a disabled session.
fn run_under(
    collection: &SourceCollection,
    plan: Option<FaultPlan>,
    partial: bool,
    threads: usize,
) -> Result<FaultAwareConfidence, CoreError> {
    let mut access = SourceAccess::new(AccessPolicy::default(), collection.len());
    let mut obs = ObsSession::disabled();
    let padding = padding_of(collection);
    let budget = Budget::unlimited();
    let config = ParallelConfig::with_threads(threads);
    let policy = LadderPolicy::default();
    match plan {
        Some(plan) => {
            let mut provider = FaultyProvider::new(collection, plan);
            confidence_under_faults(
                &mut provider,
                &mut access,
                padding,
                &budget,
                &config,
                false,
                partial,
                &policy,
                &mut obs,
            )
        }
        None => {
            let mut provider = CatalogProvider::new(collection);
            confidence_under_faults(
                &mut provider,
                &mut access,
                padding,
                &budget,
                &config,
                false,
                partial,
                &policy,
                &mut obs,
            )
        }
    }
}

/// Per-tuple exact confidences, in catalog tuple order. An inconsistent
/// collection has no defined confidence; the rendered error stands in so
/// both runs must fail identically.
fn point_answers(
    collection: &SourceCollection,
    result: &ResilientConfidence,
) -> Vec<(Vec<Value>, Result<Rational, String>)> {
    let identity = collection.as_identity().expect("identity views");
    identity
        .all_tuples()
        .iter()
        .map(|t| {
            let conf = match result {
                ResilientConfidence::Exact(a)
                | ResilientConfidence::Dp(a)
                | ResilientConfidence::Circuit(a) => a
                    .confidence_of_tuple(&identity, t)
                    .map_err(|e| e.to_string()),
                ResilientConfidence::Sampled { .. } => {
                    unreachable!("unlimited budgets never reach the sampler")
                }
            };
            (t.clone(), conf)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partial-availability intervals bracket the fault-free point
    /// answer, where the point is recomputed independently by the exact
    /// counter over the full catalog.
    #[test]
    fn intervals_contain_the_fault_free_point(
        collection in collections(),
        victim_seed in 0usize..8,
    ) {
        let victim = victim_seed % collection.len();
        let name = collection.sources()[victim].name().to_owned();
        let plan = FaultPlan::new(11).with_source(&name, FaultSpec::always_down());
        match run_under(&collection, Some(plan), true, 1) {
            Ok(FaultAwareConfidence::Partial { unavailable, intervals, .. }) => {
                prop_assert_eq!(unavailable, vec![name]);
                prop_assert!(intervals.all_contain_point());
                let identity = collection.as_identity().expect("identity views");
                let reference = ConfidenceAnalysis::analyze(&identity, padding_of(&collection));
                for t in intervals.tuples() {
                    let point = reference
                        .confidence_of_tuple(&identity, &t.tuple)
                        .expect("catalog tuple has a confidence");
                    prop_assert_eq!(&t.point, &point);
                    prop_assert!(t.interval.contains(&point), "bracket must hold the point");
                }
            }
            Ok(complete) => {
                prop_assert!(!complete.is_partial(), "hard-down victim cannot be available");
                unreachable!("hard-down victim cannot produce a complete answer");
            }
            // Collections whose bounds admit no world at all have no
            // defined confidence: the interval rung reports that rather
            // than inventing brackets.
            Err(CoreError::InconsistentCollection) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    /// A transient fault healed by the retry path answers bit-identically
    /// to a run that never failed: same engine, same world count, same
    /// per-tuple rationals — only the attempt counts differ.
    #[test]
    fn retry_then_success_is_bit_identical_to_never_failing(collection in collections()) {
        let transient = FaultPlan::new(5).with_default(FaultSpec {
            down: vec![(0, 1)],
            ..FaultSpec::none()
        });
        let faulted = run_under(&collection, Some(transient), false, 1);
        let clean = run_under(&collection, None, false, 1);
        match (faulted, clean) {
            (
                Ok(FaultAwareConfidence::Complete { statuses: sf, result: rf }),
                Ok(FaultAwareConfidence::Complete { statuses: sc, result: rc }),
            ) => {
                prop_assert!(sf
                    .iter()
                    .all(|s| *s == SourceStatus::Available { attempts: 2 }));
                prop_assert!(sc
                    .iter()
                    .all(|s| *s == SourceStatus::Available { attempts: 1 }));
                prop_assert_eq!(rf.engine(), rc.engine());
                prop_assert_eq!(point_answers(&collection, &rf), point_answers(&collection, &rc));
            }
            (Err(CoreError::InconsistentCollection),
             Err(CoreError::InconsistentCollection)) => {}
            (f, c) => {
                return Err(TestCaseError::fail(format!(
                    "outcomes diverged: faulted {f:?} vs clean {c:?}"
                )))
            }
        }
    }

    /// Replaying one seeded plan at 1, 2, and 8 threads yields identical
    /// statuses, unavailable sets, and interval tables.
    #[test]
    fn fault_replay_is_bit_identical_across_thread_counts(
        collection in collections(),
        seed in 0u64..64,
    ) {
        let name = collection.sources()[0].name().to_owned();
        let plan = FaultPlan::new(seed)
            .with_default(FaultSpec {
                fail: Frac::new(1, 3),
                ..FaultSpec::none()
            })
            .with_source(&name, FaultSpec::always_down());
        let mut baseline: Option<(Vec<SourceStatus>, Vec<String>, _)> = None;
        for threads in THREADS {
            match run_under(&collection, Some(plan.clone()), true, threads) {
                Ok(FaultAwareConfidence::Partial { statuses, unavailable, intervals }) => {
                    match &baseline {
                        None => baseline = Some((statuses, unavailable, intervals)),
                        Some((s1, u1, i1)) => {
                            prop_assert_eq!(&statuses, s1);
                            prop_assert_eq!(&unavailable, u1);
                            prop_assert_eq!(&intervals, i1);
                        }
                    }
                }
                Ok(_) => return Err(TestCaseError::fail(
                    "S0 is hard-down: the answer must be partial".to_owned(),
                )),
                Err(CoreError::InconsistentCollection) => {
                    prop_assert!(baseline.is_none(), "verdict must not depend on thread count");
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
            }
        }
    }
}
