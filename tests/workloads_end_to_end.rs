//! End-to-end tests of the synthetic workloads: generated scenarios flow
//! through the full semantics stack (datagen → measures → consistency →
//! confidence → answers).

use pscds::core::confidence::{ConfidenceAnalysis, PossibleWorlds};
use pscds::core::consistency::{decide_identity, lemma31_bound, shrink_witness};
use pscds::core::measures::{in_poss, measure};
use pscds::datagen::climate::{generate as climate, ClimateConfig};
use pscds::datagen::mirrors::{generate as mirrors, MirrorConfig};
use pscds::datagen::random_sources::{generate as random_sources, RandomIdentityConfig};
use pscds::numeric::Rational;
use pscds::relational::{Database, Fact, Value};

#[test]
fn climate_full_stack() {
    let cfg = ClimateConfig {
        countries: vec!["Canada".into(), "US".into()],
        stations_per_country: 2,
        first_year: 1900,
        years: 3,
        months: 4,
        dropout: 0.25,
        corruption: 0.1,
        seed: 99,
    };
    let scenario = climate(&cfg).expect("valid config");
    // Ground truth is a possible world; its shrinking stays one and is
    // within the small-model bound.
    assert!(in_poss(&scenario.world, &scenario.collection).expect("evaluates"));
    let shrunk = shrink_witness(&scenario.collection, &scenario.world).expect("evaluates");
    assert!(in_poss(&shrunk, &scenario.collection).expect("evaluates"));
    assert!(shrunk.len() <= lemma31_bound(&scenario.collection));
    assert!(shrunk.len() <= scenario.world.len());
    // The claimed bounds are tight: bumping either bound of a noisy source
    // above its measured value excludes the ground truth.
    for (source, report) in scenario.collection.sources().iter().zip(&scenario.reports) {
        let m = measure(&scenario.world, source).expect("evaluates");
        assert!(m.completeness_at_least(report.completeness));
        assert!(m.soundness_at_least(report.soundness));
        if report.dropped > 0 {
            // completeness is exactly intersection/intended; one notch up fails.
            let tighter = pscds::numeric::Frac::new(m.intersection + 1, m.view_size);
            assert!(!m.completeness_at_least(tighter), "{}", report.source);
        }
    }
}

#[test]
fn mirrors_full_stack() {
    let cfg = MirrorConfig {
        n_objects: 9,
        n_obsolete: 3,
        n_mirrors: 3,
        staleness: 0.3,
        obsolescence: 0.4,
        seed: 21,
    };
    let scenario = mirrors(&cfg).expect("valid config");
    let identity = scenario.collection.as_identity().expect("identity");
    assert!(decide_identity(&identity, 0).is_consistent());

    let analysis = ConfidenceAnalysis::analyze(&identity, 0);
    let certain = analysis.certain_tuples().expect("consistent");
    let possible = analysis.possible_tuples().expect("consistent");
    assert!(certain.len() <= possible.len());
    assert!(possible.len() <= identity.all_tuples().len());

    // Cross-check certain/possible against the world oracle.
    let mentioned: Vec<Value> = identity.all_tuples().into_iter().map(|t| t[0]).collect();
    let worlds = PossibleWorlds::enumerate(&scenario.collection, &mentioned).expect("small");
    assert_eq!(
        worlds.count() as u64,
        analysis.world_count().to_u64().expect("fits")
    );
    for tuple in &certain {
        let conf = worlds
            .fact_confidence(&Fact::new("Object", tuple.clone()))
            .expect("consistent");
        assert_eq!(conf, Rational::one());
    }
    for tuple in &possible {
        let conf = worlds
            .fact_confidence(&Fact::new("Object", tuple.clone()))
            .expect("consistent");
        assert!(conf > Rational::zero());
    }
}

#[test]
fn mirrors_origin_confidence_dominates_average() {
    // Averaged over seeds, live objects must outrank obsolete ones.
    let mut live_sum = 0.0;
    let mut dead_sum = 0.0;
    let mut live_n = 0.0;
    let mut dead_n = 0.0;
    for seed in 0..6u64 {
        let cfg = MirrorConfig {
            n_objects: 8,
            n_obsolete: 4,
            n_mirrors: 4,
            staleness: 0.2,
            obsolescence: 0.3,
            seed,
        };
        let scenario = mirrors(&cfg).expect("valid config");
        let identity = scenario.collection.as_identity().expect("identity");
        let analysis = ConfidenceAnalysis::analyze(&identity, 0);
        if !analysis.is_consistent() {
            continue;
        }
        for obj in &scenario.origin {
            let t = vec![*obj];
            if identity.signature_of(&t) != 0 {
                live_sum += analysis
                    .confidence_of_tuple(&identity, &t)
                    .expect("ok")
                    .to_f64();
                live_n += 1.0;
            }
        }
        for obj in &scenario.obsolete {
            let t = vec![*obj];
            if identity.signature_of(&t) != 0 {
                dead_sum += analysis
                    .confidence_of_tuple(&identity, &t)
                    .expect("ok")
                    .to_f64();
                dead_n += 1.0;
            }
        }
    }
    assert!(live_n > 0.0 && dead_n > 0.0);
    assert!(
        live_sum / live_n > dead_sum / dead_n,
        "mean live confidence {} must exceed mean obsolete confidence {}",
        live_sum / live_n,
        dead_sum / dead_n
    );
}

#[test]
fn random_sources_planted_pipeline() {
    for seed in 0..8u64 {
        let cfg = RandomIdentityConfig {
            n_sources: 3,
            domain_size: 6,
            extension_density: 0.5,
            planted: true,
            world_density: 0.5,
            bound_denominator: 4,
            seed,
        };
        let scenario = random_sources(&cfg).expect("valid config");
        let world =
            Database::from_facts(scenario.planted_world.iter().map(|&v| Fact::new("R", [v])));
        assert!(
            in_poss(&world, &scenario.collection).expect("evaluates"),
            "seed {seed}"
        );
        let identity = scenario.collection.as_identity().expect("identity");
        let padding = scenario.domain.len() as u64 - identity.all_tuples().len() as u64;
        let analysis = ConfidenceAnalysis::analyze(&identity, padding);
        assert!(analysis.is_consistent(), "seed {seed}");
        // The planted world's named facts all have positive confidence.
        for v in &scenario.planted_world {
            let t = vec![*v];
            if identity.signature_of(&t) != 0 {
                let conf = analysis
                    .confidence_of_tuple(&identity, &t)
                    .expect("consistent");
                assert!(
                    conf > Rational::zero(),
                    "seed {seed}: planted fact with zero confidence"
                );
            }
        }
    }
}
