//! Integration test of the full NP-completeness pipeline (Section 3):
//! HITTING SET → HS* → CONSISTENCY → witness → hitting set, driven by
//! property-based random instances, with the *exhaustive* consistency
//! checker as a third independent oracle on the smallest instances.

use proptest::prelude::*;
use pscds::core::consistency::{decide_exhaustive, decide_identity, IdentityConsistency};
use pscds::core::measures::in_poss;
use pscds::reductions::{
    consistency_witness_to_hitting_set, greedy_hitting_set, hitting_set_to_database,
    hs_star_to_consistency, hs_to_hs_star, lift_hs_solution, project_hs_star_solution,
    solve_hitting_set, HittingSetInstance,
};
use std::collections::BTreeSet;

fn instances(max_elem: u32, max_sets: usize) -> impl Strategy<Value = HittingSetInstance> {
    (
        proptest::collection::vec(
            proptest::collection::btree_set(0..max_elem, 1..4),
            1..=max_sets,
        ),
        1usize..4,
    )
        .prop_map(|(sets, k)| HittingSetInstance::new(sets, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn full_pipeline_round_trip(hs in instances(7, 4)) {
        let (star, fresh) = hs_to_hs_star(&hs);
        let collection = hs_star_to_consistency(&star).expect("valid instance");
        let identity = collection.as_identity().expect("identity views");
        let direct = solve_hitting_set(&hs);
        match decide_identity(&identity, 0) {
            IdentityConsistency::Consistent { witness, .. } => {
                prop_assert!(direct.is_some());
                prop_assert!(in_poss(&witness, &collection).expect("evaluates"));
                let star_sol = consistency_witness_to_hitting_set(&witness);
                prop_assert!(star.is_solution(&star_sol));
                let hs_sol = project_hs_star_solution(&star_sol, fresh);
                prop_assert!(hs.is_solution(&hs_sol));
            }
            IdentityConsistency::Inconsistent => {
                prop_assert!(direct.is_none());
            }
        }
        // Forward direction: any direct solution embeds as a witness.
        if let Some(sol) = direct {
            let lifted = lift_hs_solution(&sol, fresh);
            prop_assert!(star.is_solution(&lifted));
            let db = hitting_set_to_database(&lifted);
            prop_assert!(in_poss(&db, &collection).expect("evaluates"));
        }
    }

    #[test]
    fn exhaustive_oracle_agrees(hs in instances(4, 3)) {
        // Small enough for 2^N subset enumeration: a third opinion.
        let (star, _) = hs_to_hs_star(&hs);
        let collection = hs_star_to_consistency(&star).expect("valid instance");
        let identity = collection.as_identity().expect("identity views");
        let domain: Vec<pscds::relational::Value> = collection.constants().into_iter().collect();
        let fast = decide_identity(&identity, 0).is_consistent();
        let slow = decide_exhaustive(&collection, &domain).expect("small").is_some();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn greedy_dominates_exact_size(hs in instances(8, 5)) {
        let exact = solve_hitting_set(&hs);
        let greedy = greedy_hitting_set(&hs).expect("non-empty sets");
        if let Some(sol) = exact {
            prop_assert!(greedy.len() >= sol.len());
            prop_assert!(hs.is_solution(&sol));
        }
        // Greedy always hits every set regardless of budget.
        for a in &hs.sets {
            prop_assert!(a.iter().any(|e| greedy.contains(e)));
        }
    }
}

#[test]
fn paper_example_constants() {
    // Sanity: the reduction uses exactly the paper's parameters
    // c_i = 1/K and s_i = 1/|A_i|.
    let sets: Vec<BTreeSet<u32>> = vec![
        [1u32, 2, 3].into_iter().collect(),
        [4u32].into_iter().collect(),
    ];
    let hs = HittingSetInstance::new(sets, 2);
    let collection = hs_star_to_consistency(&hs).expect("valid");
    let s1 = &collection.sources()[0];
    assert_eq!(s1.completeness(), pscds::numeric::Frac::new(1, 2));
    assert_eq!(s1.soundness(), pscds::numeric::Frac::new(1, 3));
    let s2 = &collection.sources()[1];
    assert_eq!(s2.soundness(), pscds::numeric::Frac::ONE);
}
