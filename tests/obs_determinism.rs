//! Observability determinism suite (DESIGN.md §3.11): instrumentation
//! must not perturb the engines' determinism contract, and the
//! instrumentation itself must be deterministic. On the same random
//! identity-view collections as `tests/engine_parity.rs`, an observed
//! run at 1, 2, and 8 threads must produce:
//!
//! * bit-identical analysis results (instrumentation changes nothing),
//! * identical merged *counter* totals (counters are part of the
//!   identity contract — they are merged deterministically at the
//!   `run_chunks` join points), and
//! * identical span trees modulo timings (compared via
//!   [`Span::skeleton`], which renders names, attributes, and child
//!   structure but ignores the clock).
//!
//! Gauges (`chunks.stolen`, `dp.cache_peak`) are *scheduling
//! diagnostics* and are deliberately excluded: which worker steals a
//! chunk is real nondeterminism the gauges exist to report.

use proptest::prelude::*;
use pscds::core::confidence::{count_dp_observed, DpConfig, SignatureAnalysis};
use pscds::core::govern::Budget;
use pscds::core::obs::{ObsReport, ObsSession};
use pscds::core::resilient::{
    check_resilient_observed, confidence_resilient_observed, confidence_under_faults, LadderPolicy,
};
use pscds::core::source::{AccessPolicy, SourceAccess};
use pscds::core::{
    FaultPlan, FaultSpec, FaultyProvider, ParallelConfig, SourceCollection, SourceDescriptor,
};
use pscds::numeric::Frac;
use pscds::relational::Value;

const DOMAIN: usize = 5;
const THREADS: [usize; 3] = [1, 2, 8];

fn domain() -> Vec<Value> {
    (0..DOMAIN).map(|i| Value::sym(&format!("u{i}"))).collect()
}

/// Strategy: a random identity-view collection over the 5-element domain
/// (the `tests/engine_parity.rs` fixture distribution).
fn collections() -> impl Strategy<Value = SourceCollection> {
    let source = (
        proptest::collection::btree_set(0usize..DOMAIN, 0..=DOMAIN),
        0u64..=4,
        0u64..=4,
    );
    proptest::collection::vec(source, 1..=3).prop_map(|specs| {
        let dom = domain();
        let sources = specs
            .into_iter()
            .enumerate()
            .map(|(i, (ext, c, s))| {
                SourceDescriptor::identity(
                    format!("S{i}"),
                    &format!("V{i}"),
                    "R",
                    1,
                    ext.into_iter().map(|e| [dom[e]]),
                    Frac::new(c, 4),
                    Frac::new(s, 4),
                )
                .expect("valid descriptor")
            })
            .collect::<Vec<_>>();
        SourceCollection::from_sources(sources)
    })
}

/// The deterministic portion of an [`ObsReport`]: counter totals in name
/// order, span skeletons (which carry the `#self_steps` attribution
/// suffix), events modulo timestamps, step histograms (count, sum, and
/// sparse buckets — `dp.chunk_steps`, `interval.scenario_steps`,
/// `source.backoff_steps`, `delta.epoch_steps`, …), and exemplar key
/// sets. Everything here must be bit-identical at every thread count.
type Digest = (
    Vec<(&'static str, u64)>,
    Vec<String>,
    Vec<(&'static str, Vec<(&'static str, String)>)>,
    Vec<(&'static str, u64, u64, Vec<(usize, u64)>)>,
    Vec<(&'static str, Vec<String>)>,
);

fn digest(report: &ObsReport) -> Digest {
    let counters = report.metrics.counters().collect();
    let spans = report.spans.iter().map(|s| s.skeleton()).collect();
    let events = report
        .events
        .iter()
        .map(|e| (e.name, e.attrs.clone()))
        .collect();
    let histograms = report
        .metrics
        .histograms()
        .map(|(name, h)| (name, h.count(), h.sum(), h.buckets().collect()))
        .collect();
    let exemplars = report
        .metrics
        .exemplars()
        .map(|(name, keys)| (name, keys.keys().to_vec()))
        .collect();
    (counters, spans, events, histograms, exemplars)
}

/// Sums every `#N` self-step charge in a rendered span skeleton
/// (`name#N{attrs}[children…]`), i.e. the subtree's total attributed
/// steps. No registered span name or attribute contains `#`.
fn skeleton_steps(skeleton: &str) -> u64 {
    let mut total = 0u64;
    let mut rest = skeleton;
    while let Some(pos) = rest.find('#') {
        rest = &rest[pos + 1..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        total += digits.parse::<u64>().unwrap_or(0);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chunked DP under observation: counters, span trees, events,
    /// and the analysis itself agree at every thread count.
    #[test]
    fn observed_dp_is_identical_across_thread_counts(collection in collections()) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let mut baseline: Option<(Digest, pscds::core::confidence::ConfidenceAnalysis)> = None;
        for threads in THREADS {
            let mut obs = ObsSession::in_memory();
            let (analysis, _stats) = count_dp_observed(
                SignatureAnalysis::new(&identity, padding),
                &Budget::unlimited(),
                &ParallelConfig::with_threads(threads),
                &DpConfig::default(),
                &mut obs,
            )
            .expect("unlimited budget");
            let d = digest(&obs.finish());
            prop_assert!(!d.0.is_empty(), "observed run must record counters");
            prop_assert!(!d.1.is_empty(), "observed run must record a span tree");
            prop_assert!(
                d.3.iter().any(|(name, ..)| *name == "dp.chunk_steps"),
                "observed DP must record the per-chunk step histogram"
            );
            // The attribution contract: span self-steps sum exactly to
            // the budget.ticks counter, at every thread count.
            let ticks = d.0.iter().find(|(n, _)| *n == "budget.ticks").map_or(0, |(_, v)| *v);
            let charged: u64 = d.1.iter().map(|skel| skeleton_steps(skel)).sum();
            prop_assert!(charged == ticks, "span self-steps {} != budget.ticks {}", charged, ticks);
            match &baseline {
                None => baseline = Some((d, analysis)),
                Some((d1, a1)) => {
                    prop_assert_eq!(&d, d1);
                    prop_assert_eq!(analysis.world_count(), a1.world_count());
                    prop_assert_eq!(analysis.feasible_vectors(), a1.feasible_vectors());
                }
            }
        }
    }

    /// The observed resilient ladders (check and confidence), unlimited
    /// budget: instrumented output is thread-count-independent and the
    /// verdicts match the uninstrumented engines.
    #[test]
    fn observed_ladders_are_identical_across_thread_counts(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();
        let mut check_baseline: Option<Digest> = None;
        let mut conf_baseline: Option<Digest> = None;
        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);

            let mut obs = ObsSession::in_memory();
            let check = check_resilient_observed(&collection, &dom, &unlimited, &config, &mut obs)
                .expect("small universe");
            let d = digest(&obs.finish());
            match &check_baseline {
                None => check_baseline = Some(d),
                Some(d1) => prop_assert_eq!(&d, d1),
            }
            prop_assert_eq!(
                check.consistent,
                collection.as_identity().is_ok()
                    && pscds::core::consistency::decide_identity(&identity, padding).is_consistent()
            );

            let mut obs = ObsSession::in_memory();
            confidence_resilient_observed(&identity, padding, &unlimited, &config, false, &mut obs)
                .expect("unlimited budget");
            let d = digest(&obs.finish());
            match &conf_baseline {
                None => conf_baseline = Some(d),
                Some(d1) => prop_assert_eq!(&d, d1),
            }
        }
    }

    /// The fault rung under a seeded plan (noise everywhere, one
    /// hard-down source): retries, breaker trips, and — when the
    /// partial rung runs — the interval counters are all part of the
    /// deterministic digest, so the full instrumented replay is
    /// thread-count-invariant.
    #[test]
    fn observed_fault_replay_is_identical_across_thread_counts(
        collection in collections(),
        seed in 0u64..64,
    ) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let name = collection.sources()[0].name().to_owned();
        let plan = FaultPlan::new(seed)
            .with_default(FaultSpec {
                fail: Frac::new(1, 3),
                timeout: Frac::new(1, 8),
                ..FaultSpec::none()
            })
            .with_source(&name, FaultSpec::always_down());
        let mut baseline: Option<(Digest, String)> = None;
        for threads in THREADS {
            let mut provider = FaultyProvider::new(&collection, plan.clone());
            let mut access = SourceAccess::new(AccessPolicy::default(), collection.len());
            let mut obs = ObsSession::in_memory();
            let outcome = confidence_under_faults(
                &mut provider,
                &mut access,
                padding,
                &Budget::unlimited(),
                &ParallelConfig::with_threads(threads),
                false,
                true,
                &LadderPolicy::default(),
                &mut obs,
            );
            // Render the outcome coarsely (engine provenance or error
            // text): enough to pin the verdict across thread counts
            // while `tests/fault_replay.rs` pins the values themselves.
            let verdict = match &outcome {
                Ok(r) => format!("ok:{}", r.engine()),
                Err(e) => format!("err:{e}"),
            };
            let d = digest(&obs.finish());
            prop_assert!(!d.0.is_empty(), "fault replay must record counters");
            match &baseline {
                None => baseline = Some((d, verdict)),
                Some((d1, v1)) => {
                    prop_assert_eq!(&d, d1);
                    prop_assert_eq!(&verdict, v1);
                }
            }
        }
    }
}
