//! Cross-engine property tests: the three exact semantics implementations
//! (possible-world oracle, explicit Γ, signature counter) must agree on
//! random instances, and the possible-world semantics must obey its
//! lattice laws.

use proptest::prelude::*;
use pscds::core::confidence::{ConfidenceAnalysis, LinearSystem, PossibleWorlds};
use pscds::core::consistency::decide_identity;
use pscds::core::measures::in_poss;
use pscds::core::{SourceCollection, SourceDescriptor};
use pscds::numeric::{Frac, Rational, UBig};
use pscds::relational::parser::parse_rule;
use pscds::relational::{Fact, Value};

const DOMAIN: usize = 5;

fn domain() -> Vec<Value> {
    (0..DOMAIN).map(|i| Value::sym(&format!("u{i}"))).collect()
}

/// Strategy: a random identity-view collection over the 5-element domain.
fn collections() -> impl Strategy<Value = SourceCollection> {
    let source = (
        proptest::collection::btree_set(0usize..DOMAIN, 0..=DOMAIN),
        0u64..=4,
        0u64..=4,
    );
    proptest::collection::vec(source, 1..=3).prop_map(|specs| {
        let dom = domain();
        let sources = specs
            .into_iter()
            .enumerate()
            .map(|(i, (ext, c, s))| {
                SourceDescriptor::identity(
                    format!("S{i}"),
                    &format!("V{i}"),
                    "R",
                    1,
                    ext.into_iter().map(|e| [dom[e]]),
                    Frac::new(c, 4),
                    Frac::new(s, 4),
                )
                .expect("valid descriptor")
            })
            .collect::<Vec<_>>();
        SourceCollection::from_sources(sources)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_world_count(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;

        let worlds = PossibleWorlds::enumerate(&collection, &dom).expect("small universe");
        let gamma = LinearSystem::from_identity(&identity, &dom).expect("valid domain");
        let analysis = ConfidenceAnalysis::analyze(&identity, padding);

        prop_assert_eq!(gamma.count_solutions().expect("small") as usize, worlds.count());
        prop_assert_eq!(analysis.world_count(), &UBig::from(worlds.count() as u64));
        // Consistency decisions agree too.
        prop_assert_eq!(decide_identity(&identity, padding).is_consistent(), worlds.is_consistent());
    }

    #[test]
    fn engines_agree_on_confidences(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let worlds = PossibleWorlds::enumerate(&collection, &dom).expect("small universe");
        prop_assume!(worlds.is_consistent());
        let gamma = LinearSystem::from_identity(&identity, &dom).expect("valid domain");
        let analysis = ConfidenceAnalysis::analyze(&identity, padding);
        for v in &dom {
            let fact = Fact::new("R", [*v]);
            let w = worlds.fact_confidence(&fact).expect("consistent");
            let g = gamma.confidence(gamma.var_of(&fact).expect("in domain")).expect("consistent");
            prop_assert_eq!(&w, &g);
            // Signature engine: named tuples via class lookup, others via padding.
            let tuple = vec![*v];
            let s = if identity.signature_of(&tuple) != 0 {
                analysis.confidence_of_tuple(&identity, &tuple).expect("consistent")
            } else if padding > 0 {
                analysis.padding_confidence().expect("padding exists")
            } else {
                continue;
            };
            prop_assert_eq!(&w, &s);
            prop_assert!(w.is_probability());
        }
    }

    #[test]
    fn witnesses_are_genuine(collection in collections()) {
        let identity = collection.as_identity().expect("identity views");
        // Padding 0: witnesses stay within the named tuples.
        if let pscds::core::consistency::IdentityConsistency::Consistent { witness, .. } =
            decide_identity(&identity, 0)
        {
            prop_assert!(in_poss(&witness, &collection).expect("evaluates"));
        }
    }

    #[test]
    fn certain_possible_lattice(collection in collections()) {
        let dom = domain();
        let worlds = PossibleWorlds::enumerate(&collection, &dom).expect("small universe");
        prop_assume!(worlds.is_consistent());
        let q = parse_rule("Ans(x) <- R(x)").expect("parses");
        let certain = worlds.certain_answer_cq(&q).expect("consistent");
        let possible = worlds.possible_answer_cq(&q).expect("consistent");
        prop_assert!(certain.is_subset(&possible));
        // The certain answer is contained in every single world's answer.
        for world in worlds.worlds() {
            let answer = q.evaluate(&world).expect("evaluates");
            prop_assert!(certain.iter().all(|f| answer.contains(f)));
            prop_assert!(answer.iter().all(|f| possible.contains(f)));
        }
        // Confidence characterizes both.
        for v in &dom {
            let conf = worlds.fact_confidence(&Fact::new("R", [*v])).expect("consistent");
            let ans = Fact::new("Ans", [*v]);
            prop_assert_eq!(certain.contains(&ans), conf == Rational::one());
            prop_assert_eq!(possible.contains(&ans), conf > Rational::zero());
        }
    }

    #[test]
    fn tightening_bounds_shrinks_poss(collection in collections()) {
        // Raising any source's bounds can only remove possible worlds.
        let dom = domain();
        let worlds = PossibleWorlds::enumerate(&collection, &dom).expect("small universe");
        let tightened = SourceCollection::from_sources(collection.sources().iter().map(|s| {
            let bump = |f: Frac| {
                // min(1, f + 1/4) in exact arithmetic.
                let bumped = Frac::new(f.num() * 4 + f.den(), f.den() * 4);
                if bumped.is_probability() { bumped } else { Frac::ONE }
            };
            SourceDescriptor::new(
                s.name(),
                s.view().clone(),
                s.extension().iter().cloned(),
                bump(s.completeness()),
                bump(s.soundness()),
            )
            .expect("valid descriptor")
        }));
        let tightened_worlds = PossibleWorlds::enumerate(&tightened, &dom).expect("small universe");
        prop_assert!(tightened_worlds.count() <= worlds.count());
        // And every tightened world is still a world of the original.
        for w in tightened_worlds.worlds() {
            prop_assert!(in_poss(&w, &collection).expect("evaluates"));
        }
    }

    #[test]
    fn padding_monotonicity_of_world_count(collection in collections()) {
        // Adding padding never decreases the world count.
        let identity = collection.as_identity().expect("identity views");
        let mut prev = UBig::zero();
        for padding in 0..=3u64 {
            let analysis = ConfidenceAnalysis::analyze(&identity, padding);
            prop_assert!(analysis.world_count() >= &prev);
            prev = analysis.world_count().clone();
        }
    }
}
