//! Golden tests for Example 5.1: the re-derived closed-form confidences
//! at `m = 1..=6`, pinned as explicit rationals and cross-checked against
//! every exact engine — the signature counter (serial and parallel at
//! several thread counts), the explicit Γ system, and the possible-world
//! oracle. A regression in any engine, or in the closed forms themselves,
//! trips these before the property tests do, with a readable diff.

use pscds::core::confidence::closed_form::{
    derived_confidence, derived_world_count, Example51Fact,
};
use pscds::core::confidence::{ConfidenceAnalysis, LinearSystem, PossibleWorlds};
use pscds::core::govern::Budget;
use pscds::core::paper::{example_5_1, example_5_1_domain};
use pscds::core::ParallelConfig;
use pscds::numeric::{Rational, UBig};
use pscds::relational::{Fact, Value};

/// One golden row: `(m, conf(a) = conf(c), conf(b), conf(d_i), |poss|)`
/// with every confidence as `(numerator, denominator)` over the common
/// denominator `2m + 5`.
type GoldenRow = (u64, (u64, u64), (u64, u64), (u64, u64), u64);

/// The golden table at `m = 1..=6`.
const GOLDEN: [GoldenRow; 6] = [
    (1, (4, 7), (6, 7), (2, 7), 7),
    (2, (5, 9), (8, 9), (2, 9), 9),
    (3, (6, 11), (10, 11), (2, 11), 11),
    (4, (7, 13), (12, 13), (2, 13), 13),
    (5, (8, 15), (14, 15), (2, 15), 15),
    (6, (9, 17), (16, 17), (2, 17), 17),
];

#[test]
fn golden_table_matches_the_closed_forms() {
    for (m, a, b, d, count) in GOLDEN {
        let expect = |(num, den): (u64, u64)| Rational::from_u64(num, den);
        assert_eq!(
            derived_confidence(Example51Fact::A, m),
            expect(a),
            "conf(a) at m={m}"
        );
        assert_eq!(
            derived_confidence(Example51Fact::C, m),
            expect(a),
            "conf(c) at m={m}"
        );
        assert_eq!(
            derived_confidence(Example51Fact::B, m),
            expect(b),
            "conf(b) at m={m}"
        );
        assert_eq!(
            derived_confidence(Example51Fact::D, m),
            expect(d),
            "conf(d) at m={m}"
        );
        assert_eq!(derived_world_count(m), count, "|poss| at m={m}");
    }
}

#[test]
fn signature_counter_reproduces_the_golden_table() {
    let identity = example_5_1().as_identity().expect("identity views");
    for (m, a, b, d, count) in GOLDEN {
        let analysis = ConfidenceAnalysis::analyze(&identity, m);
        assert_eq!(analysis.world_count(), &UBig::from(count), "m={m}");
        for (sym, (num, den)) in [("a", a), ("b", b), ("c", a)] {
            assert_eq!(
                analysis
                    .confidence_of_tuple(&identity, &[Value::sym(sym)])
                    .expect("consistent"),
                Rational::from_u64(num, den),
                "conf({sym}) at m={m}"
            );
        }
        assert_eq!(
            analysis.padding_confidence().expect("padding"),
            Rational::from_u64(d.0, d.1),
            "conf(d) at m={m}"
        );
    }
}

#[test]
fn parallel_counter_reproduces_the_golden_table() {
    let identity = example_5_1().as_identity().expect("identity views");
    for (m, a, b, d, count) in GOLDEN {
        for threads in [1usize, 2, 8] {
            let config = ParallelConfig::with_threads(threads);
            let analysis =
                ConfidenceAnalysis::analyze_parallel(&identity, m, &Budget::unlimited(), &config)
                    .expect("unlimited budget");
            assert_eq!(
                analysis.world_count(),
                &UBig::from(count),
                "m={m} t={threads}"
            );
            for (sym, (num, den)) in [("a", a), ("b", b), ("c", a)] {
                assert_eq!(
                    analysis
                        .confidence_of_tuple(&identity, &[Value::sym(sym)])
                        .expect("consistent"),
                    Rational::from_u64(num, den),
                    "conf({sym}) at m={m} t={threads}"
                );
            }
            assert_eq!(
                analysis.padding_confidence().expect("padding"),
                Rational::from_u64(d.0, d.1),
                "conf(d) at m={m} t={threads}"
            );
        }
    }
}

#[test]
fn gamma_and_worlds_oracle_reproduce_the_golden_table() {
    // The explicit Γ system and the brute-force oracle get slow fast, so
    // check only the low end of the table on them.
    let collection = example_5_1();
    let identity = collection.as_identity().expect("identity views");
    for (m, a, b, d, count) in &GOLDEN[..3] {
        let domain = example_5_1_domain(*m as usize);
        let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small universe");
        assert_eq!(worlds.count() as u64, *count, "oracle |poss| at m={m}");
        let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid domain");
        assert_eq!(
            gamma.count_solutions().expect("small"),
            *count,
            "Γ count at m={m}"
        );
        for (sym, (num, den)) in [("a", *a), ("b", *b), ("c", *a)] {
            let fact = Fact::new("R", [Value::sym(sym)]);
            let expected = Rational::from_u64(num, den);
            assert_eq!(
                worlds.fact_confidence(&fact).expect("consistent"),
                expected,
                "oracle conf({sym}) at m={m}"
            );
            assert_eq!(
                gamma
                    .confidence(gamma.var_of(&fact).expect("in domain"))
                    .expect("consistent"),
                expected,
                "Γ conf({sym}) at m={m}"
            );
        }
        // One padding constant stands in for all d_i by exchangeability.
        let d_fact = Fact::new("R", [Value::sym("d1")]);
        assert_eq!(
            worlds.fact_confidence(&d_fact).expect("consistent"),
            Rational::from_u64(d.0, d.1),
            "oracle conf(d1) at m={m}"
        );
    }
}

/// One golden circuit row: `(m, exact_nodes, canonical_nodes,
/// shared_nodes, edges)` for the circuit compiled from Example 5.1 over
/// `m` padding constants.
///
/// The skeleton is *independent of m*: Example 5.1 has two overlapping
/// sources and one padding class, and the residual states the DP can
/// reach do not grow with the padding-class size — only the binomial
/// edge weights do. That collapse (11 exact residual states, 9 after
/// canonical sharing, 16 weighted edges, for every m) is exactly what
/// makes the compiled form pseudo-polynomial, so a change in any of
/// these numbers is a compile-structure regression even if every
/// confidence still comes out right.
type GoldenCircuitRow = (u64, u64, u64, u64, u64);

/// The golden circuit-size table at `m = 1..=6`.
const GOLDEN_CIRCUIT: [GoldenCircuitRow; 6] = [
    (1, 11, 9, 2, 16),
    (2, 11, 9, 2, 16),
    (3, 11, 9, 2, 16),
    (4, 11, 9, 2, 16),
    (5, 11, 9, 2, 16),
    (6, 11, 9, 2, 16),
];

#[test]
fn circuit_reproduces_the_golden_tables() {
    use pscds::core::confidence::{
        analyze_circuit, compile_circuit, CircuitConfig, SignatureAnalysis,
    };

    let identity = example_5_1().as_identity().expect("identity views");
    for ((m, a, b, d, count), (mc, exact, canonical, shared, edges)) in
        GOLDEN.into_iter().zip(GOLDEN_CIRCUIT)
    {
        assert_eq!(m, mc, "golden tables out of step");
        let circuit = compile_circuit(
            SignatureAnalysis::new(&identity, m),
            &Budget::unlimited(),
            &CircuitConfig::default(),
        )
        .expect("unlimited budget");

        // Compile structure: the golden sizes, and the two arenas must
        // reconcile (every exact node is canonical-fresh or shared).
        let stats = circuit.stats();
        assert_eq!(stats.exact_nodes, exact, "exact nodes at m={m}");
        assert_eq!(stats.canonical_nodes, canonical, "canonical nodes at m={m}");
        assert_eq!(stats.shared_nodes, shared, "shared nodes at m={m}");
        assert_eq!(stats.edges, edges, "edges at m={m}");
        assert_eq!(
            stats.canonical_nodes + stats.shared_nodes,
            stats.exact_nodes,
            "arena accounting at m={m}"
        );

        // Values: one traversal reproduces the golden confidence table.
        let analysis = analyze_circuit(&circuit);
        assert_eq!(analysis.world_count(), &UBig::from(count), "m={m}");
        for (sym, (num, den)) in [("a", a), ("b", b), ("c", a)] {
            assert_eq!(
                analysis
                    .confidence_of_tuple(&identity, &[Value::sym(sym)])
                    .expect("consistent"),
                Rational::from_u64(num, den),
                "circuit conf({sym}) at m={m}"
            );
        }
        assert_eq!(
            analysis.padding_confidence().expect("padding"),
            Rational::from_u64(d.0, d.1),
            "circuit conf(d) at m={m}"
        );
    }
}
