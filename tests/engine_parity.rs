//! Differential parity harness for the parallel execution layer: on
//! random identity-view collections, every engine route to the same
//! semantics — exact oracle, signature decomposition, and the
//! work-partitioned parallel variants at several thread counts — must
//! produce *bit-identical* results. This is the determinism contract of
//! `pscds_core::partition` made executable (see DESIGN.md).

use proptest::prelude::*;
use pscds::core::confidence::{
    analyze_circuit, analyze_circuit_budgeted, analyze_circuit_conditional,
    analyze_circuit_conditional_budgeted, analyze_circuit_conditional_parallel,
    analyze_circuit_observed, analyze_circuit_parallel, analyze_circuit_topk,
    analyze_circuit_topk_budgeted, analyze_circuit_topk_parallel, compile_circuit,
    compile_circuit_observed, count_dp, count_dp_observed, count_dp_shared,
    count_dp_shared_parallel, count_intervals, count_intervals_budgeted, count_intervals_observed,
    count_intervals_parallel, CircuitConfig, ConfidenceAnalysis, DpConfig, LinearSystem,
    PossibleWorlds, SharedDpCache, SignatureAnalysis,
};
use pscds::core::consensus::{maximal_consistent_subsets, maximal_consistent_subsets_parallel};
use pscds::core::consistency::{
    decide_exhaustive, decide_exhaustive_parallel, decide_identity, decide_identity_parallel,
    find_witness_budgeted, find_witness_parallel,
};
use pscds::core::delta::{
    analyze_incremental, analyze_incremental_budgeted, analyze_incremental_parallel, DeltaBatch,
    DeltaSession, SourceDelta,
};
use pscds::core::govern::Budget;
use pscds::core::obs::ObsSession;
use pscds::core::{
    check_resilient, check_resilient_observed, check_resilient_policy, check_resilient_with,
    CoreError, LadderPolicy, ParallelConfig, SourceCollection, SourceDescriptor,
};
use pscds::numeric::{Frac, RowCache, UBig};
use pscds::relational::Value;

const DOMAIN: usize = 5;
/// Thread counts exercised for every instance: the serial legacy path,
/// a modest pool, and heavy oversubscription.
const THREADS: [usize; 3] = [1, 2, 8];

fn domain() -> Vec<Value> {
    (0..DOMAIN).map(|i| Value::sym(&format!("u{i}"))).collect()
}

/// Strategy: a random identity-view collection over the 5-element domain.
fn collections() -> impl Strategy<Value = SourceCollection> {
    let source = (
        proptest::collection::btree_set(0usize..DOMAIN, 0..=DOMAIN),
        0u64..=4,
        0u64..=4,
    );
    proptest::collection::vec(source, 1..=3).prop_map(|specs| {
        let dom = domain();
        let sources = specs
            .into_iter()
            .enumerate()
            .map(|(i, (ext, c, s))| {
                SourceDescriptor::identity(
                    format!("S{i}"),
                    &format!("V{i}"),
                    "R",
                    1,
                    ext.into_iter().map(|e| [dom[e]]),
                    Frac::new(c, 4),
                    Frac::new(s, 4),
                )
                .expect("valid descriptor")
            })
            .collect::<Vec<_>>();
        SourceCollection::from_sources(sources)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn consistency_parity_across_engines_and_thread_counts(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();

        // Ground truth: the exhaustive subset sweep.
        let oracle = decide_exhaustive(&collection, &dom).expect("small universe");
        // Serial signature solver agrees on the verdict.
        let serial_sig = decide_identity(&identity, padding);
        prop_assert_eq!(serial_sig.is_consistent(), oracle.is_some());
        // Serial witness search (first witness in enumeration order).
        let serial_witness =
            find_witness_budgeted(&collection, &dom, None, &unlimited).expect("small universe");

        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);
            // Exhaustive decision: the *same* first-found world.
            let par_oracle =
                decide_exhaustive_parallel(&collection, &dom, &unlimited, &config)
                    .expect("small universe");
            prop_assert_eq!(&par_oracle, &oracle);
            // Signature solver: the same witness and count vector.
            let par_sig =
                decide_identity_parallel(&identity, padding, &unlimited, &config)
                    .expect("unlimited budget");
            prop_assert_eq!(&par_sig, &serial_sig);
            // Minimal-witness search: the same (minimal) witness.
            let par_witness =
                find_witness_parallel(&collection, &dom, None, &unlimited, &config)
                    .expect("small universe");
            prop_assert_eq!(&par_witness, &serial_witness);
        }
    }

    #[test]
    fn confidence_parity_across_engines_and_thread_counts(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();

        let worlds = PossibleWorlds::enumerate(&collection, &dom).expect("small universe");
        let serial = ConfidenceAnalysis::analyze(&identity, padding);
        prop_assert_eq!(serial.world_count(), &UBig::from(worlds.count() as u64));

        // The memoized residual-state DP: one more engine route, required
        // to be bit-identical on every aggregate.
        let dp = ConfidenceAnalysis::analyze_dp(&identity, padding);
        prop_assert_eq!(dp.world_count(), serial.world_count());
        prop_assert_eq!(dp.feasible_vectors(), serial.feasible_vectors());
        // The budgeted DP twin, called directly: an unlimited budget must
        // be bit-identical to the unbudgeted route.
        let dp_budgeted = ConfidenceAnalysis::analyze_dp_budgeted(&identity, padding, &unlimited)
            .expect("unlimited budget");
        prop_assert_eq!(dp_budgeted.world_count(), serial.world_count());
        prop_assert_eq!(dp_budgeted.feasible_vectors(), serial.feasible_vectors());
        if serial.is_consistent() {
            for tuple in identity.all_tuples() {
                prop_assert_eq!(dp.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                    serial.confidence_of_tuple(&identity, &tuple).expect("consistent"));
            }
            if padding > 0 {
                prop_assert_eq!(dp.padding_confidence().expect("padding exists"),
                    serial.padding_confidence().expect("padding exists"));
            }
        }

        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);
            // Brute-force oracle: identical world masks in identical order.
            let par_worlds =
                PossibleWorlds::enumerate_parallel(&collection, &dom, &unlimited, &config)
                    .expect("small universe");
            prop_assert_eq!(par_worlds.masks(), worlds.masks());
            // Signature counter: identical totals and per-tuple confidences.
            let par = ConfidenceAnalysis::analyze_parallel(&identity, padding, &unlimited, &config)
                .expect("unlimited budget");
            prop_assert_eq!(par.world_count(), serial.world_count());
            prop_assert_eq!(par.feasible_vectors(),
                serial.feasible_vectors());
            // Partitioned DP: same contract at every thread count.
            let par_dp =
                ConfidenceAnalysis::analyze_dp_parallel(&identity, padding, &unlimited, &config)
                    .expect("unlimited budget");
            prop_assert_eq!(par_dp.world_count(), serial.world_count());
            prop_assert_eq!(par_dp.feasible_vectors(), serial.feasible_vectors());
            if serial.is_consistent() {
                for tuple in identity.all_tuples() {
                    prop_assert_eq!(par.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                        serial.confidence_of_tuple(&identity, &tuple).expect("consistent"));
                    prop_assert_eq!(par_dp.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                        serial.confidence_of_tuple(&identity, &tuple).expect("consistent"));
                }
                if padding > 0 {
                    prop_assert_eq!(par.padding_confidence().expect("padding exists"),
                        serial.padding_confidence().expect("padding exists"));
                    prop_assert_eq!(par_dp.padding_confidence().expect("padding exists"),
                        serial.padding_confidence().expect("padding exists"));
                }
            }
        }
    }

    /// Budget-interrupted runs resume cleanly: a tiny step allowance
    /// either completes (small instance) or trips with `BudgetExceeded`,
    /// and a rerun under an unlimited budget — reusing whatever state
    /// survives the interruption (the shared Pascal-row cache for the
    /// DP) — produces the bit-exact serial result.
    #[test]
    fn confidence_budget_interruption_is_clean(collection in collections(), max_steps in 1u64..200) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let serial = ConfidenceAnalysis::analyze(&identity, padding);

        // The DFS counter.
        match ConfidenceAnalysis::analyze_budgeted(&identity, padding, &Budget::with_max_steps(max_steps)) {
            Ok(done) => {
                prop_assert_eq!(done.world_count(), serial.world_count());
                prop_assert_eq!(done.feasible_vectors(), serial.feasible_vectors());
            }
            Err(CoreError::BudgetExceeded { .. }) => {
                let redo = ConfidenceAnalysis::analyze_budgeted(&identity, padding, &Budget::unlimited())
                    .expect("unlimited budget");
                prop_assert_eq!(redo.world_count(), serial.world_count());
                prop_assert_eq!(redo.feasible_vectors(), serial.feasible_vectors());
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }

        // The memoized DP, with the Pascal-row cache surviving the
        // interruption into the retry.
        let mut rows = RowCache::new();
        let config = DpConfig::default();
        match count_dp(
            SignatureAnalysis::new(&identity, padding),
            &Budget::with_max_steps(max_steps),
            &config,
            &mut rows,
        ) {
            Ok((done, _)) => {
                prop_assert_eq!(done.world_count(), serial.world_count());
                prop_assert_eq!(done.feasible_vectors(), serial.feasible_vectors());
            }
            Err(CoreError::BudgetExceeded { .. }) => {
                let (redo, _) = count_dp(
                    SignatureAnalysis::new(&identity, padding),
                    &Budget::unlimited(),
                    &config,
                    &mut rows,
                )
                .expect("unlimited budget");
                prop_assert_eq!(redo.world_count(), serial.world_count());
                prop_assert_eq!(redo.feasible_vectors(), serial.feasible_vectors());
                if serial.is_consistent() {
                    for tuple in identity.all_tuples() {
                        prop_assert_eq!(redo.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                            serial.confidence_of_tuple(&identity, &tuple).expect("consistent"));
                    }
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    /// The explicit Γ linear system (Section 5.1): `count_solutions` /
    /// `count_solutions_with` and their work-partitioned parallel twins
    /// sum contiguous sub-ranges of the same ascending assignment sweep,
    /// so every thread count must reproduce the serial counts exactly.
    #[test]
    fn gamma_count_parity_across_thread_counts(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let gamma = LinearSystem::from_identity(&identity, &dom).expect("small domain");
        let unlimited = Budget::unlimited();
        let serial_total = gamma.count_solutions().expect("≤26 variables");
        let fixed = [(0usize, true)];
        let serial_fixed = gamma.count_solutions_with(&fixed).expect("≤26 variables");
        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);
            let par_total = gamma
                .count_solutions_parallel(&unlimited, &config)
                .expect("≤26 variables");
            prop_assert_eq!(par_total, serial_total);
            let par_fixed = gamma
                .count_solutions_with_parallel(&fixed, &unlimited, &config)
                .expect("≤26 variables");
            prop_assert_eq!(par_fixed, serial_fixed);
        }
    }

    /// Graceful degradation: `check_resilient_with` must agree with the
    /// serial `check_resilient` — same engine, same verdict, same witness
    /// world — at every thread count.
    #[test]
    fn resilient_parity_across_thread_counts(collection in collections()) {
        let dom = domain();
        let unlimited = Budget::unlimited();
        let serial = check_resilient(&collection, &dom, &unlimited).expect("small universe");
        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);
            let par = check_resilient_with(&collection, &dom, &unlimited, &config)
                .expect("small universe");
            prop_assert_eq!(par.engine, serial.engine);
            prop_assert_eq!(par.consistent, serial.consistent);
            prop_assert_eq!(&par.witness, &serial.witness);
        }
    }

    /// The observed entry points (`count_dp_observed`,
    /// `check_resilient_observed`) and the shared-cache pair
    /// (`count_dp_shared` / `count_dp_shared_parallel`) are the plain
    /// engines plus telemetry: instrumentation must not change a single
    /// bit of the analysis, at any thread count, with the session
    /// enabled or disabled. (Determinism of the telemetry itself is
    /// tests/obs_determinism.rs.)
    #[test]
    fn observed_and_shared_engines_match_their_plain_twins(collection in collections()) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();
        let config = DpConfig::default();
        let serial = ConfidenceAnalysis::analyze_dp(&identity, padding);
        let serial_check = check_resilient(&collection, &dom, &unlimited).expect("small universe");

        let mut shared = SharedDpCache::new(&config);
        let (shared_run, _) = count_dp_shared(
            SignatureAnalysis::new(&identity, padding),
            &unlimited,
            &config,
            &mut shared,
        )
        .expect("unlimited budget");
        prop_assert_eq!(shared_run.world_count(), serial.world_count());
        prop_assert_eq!(shared_run.feasible_vectors(), serial.feasible_vectors());

        for threads in THREADS {
            let par = ParallelConfig::with_threads(threads);
            for enabled in [false, true] {
                let mut obs = if enabled {
                    ObsSession::in_memory()
                } else {
                    ObsSession::disabled()
                };
                let (observed, _) = count_dp_observed(
                    SignatureAnalysis::new(&identity, padding),
                    &unlimited,
                    &par,
                    &config,
                    &mut obs,
                )
                .expect("unlimited budget");
                prop_assert_eq!(observed.world_count(), serial.world_count());
                prop_assert_eq!(observed.feasible_vectors(), serial.feasible_vectors());

                let mut obs = if enabled {
                    ObsSession::in_memory()
                } else {
                    ObsSession::disabled()
                };
                let checked =
                    check_resilient_observed(&collection, &dom, &unlimited, &par, &mut obs)
                        .expect("small universe");
                prop_assert_eq!(checked.engine, serial_check.engine);
                prop_assert_eq!(checked.consistent, serial_check.consistent);
                prop_assert_eq!(&checked.witness, &serial_check.witness);
            }

            let mut fresh = SharedDpCache::new(&config);
            let (par_shared, _) = count_dp_shared_parallel(
                SignatureAnalysis::new(&identity, padding),
                &unlimited,
                &par,
                &config,
                &mut fresh,
            )
            .expect("unlimited budget");
            prop_assert_eq!(par_shared.world_count(), serial.world_count());
            prop_assert_eq!(par_shared.feasible_vectors(), serial.feasible_vectors());
        }
    }

    /// The partial-availability interval engine: `count_intervals`, the
    /// `count_intervals_budgeted` twin, and `count_intervals_parallel`
    /// must be bit-identical at every thread count, and — containment by
    /// construction — every bracket contains the fault-free point
    /// answer. `check_resilient_policy` with the default `LadderPolicy`
    /// is the policy-hoisted spelling of the historical ladder and must
    /// agree with `check_resilient_observed` bit-for-bit.
    #[test]
    fn interval_and_ladder_policy_parity_across_thread_counts(
        collection in collections(),
        missing_seed in 0usize..8,
    ) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();
        let missing = [missing_seed % collection.len()];

        let serial = count_intervals(&identity, padding, &missing);
        let budgeted = count_intervals_budgeted(&identity, padding, &missing, &unlimited);
        match (&serial, &budgeted) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b);
                prop_assert!(a.all_contain_point());
            }
            (Err(CoreError::InconsistentCollection),
             Err(CoreError::InconsistentCollection)) => {}
            (a, b) => return Err(TestCaseError::fail(format!(
                "twins disagree: {a:?} vs {b:?}"
            ))),
        }
        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);
            let par = count_intervals_parallel(&identity, padding, &missing, &unlimited, &config);
            match (&serial, &par) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(CoreError::InconsistentCollection),
                 Err(CoreError::InconsistentCollection)) => {}
                (a, b) => return Err(TestCaseError::fail(format!(
                    "parallel twin disagrees at {threads} threads: {a:?} vs {b:?}"
                ))),
            }

            // count_intervals_observed is the parallel engine plus
            // telemetry: same brackets, session enabled or disabled.
            for enabled in [false, true] {
                let mut obs = if enabled {
                    ObsSession::in_memory()
                } else {
                    ObsSession::disabled()
                };
                let watched = count_intervals_observed(
                    &identity, padding, &missing, &unlimited, &config, &mut obs,
                );
                match (&serial, &watched) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                    (Err(CoreError::InconsistentCollection),
                     Err(CoreError::InconsistentCollection)) => {}
                    (a, b) => return Err(TestCaseError::fail(format!(
                        "observed twin disagrees at {threads} threads \
                         (enabled={enabled}): {a:?} vs {b:?}"
                    ))),
                }
            }

            let mut obs = ObsSession::disabled();
            let observed = check_resilient_observed(&collection, &dom, &unlimited, &config, &mut obs)
                .expect("small universe");
            let mut obs = ObsSession::disabled();
            let policied = check_resilient_policy(
                &collection,
                &dom,
                &unlimited,
                &config,
                &LadderPolicy::default(),
                &mut obs,
            )
            .expect("small universe");
            prop_assert_eq!(policied.engine, observed.engine);
            prop_assert_eq!(policied.consistent, observed.consistent);
            prop_assert_eq!(&policied.witness, &observed.witness);
        }
    }

    /// Incremental maintenance is not a new semantics, just a cheaper
    /// route to the old one: after ANY prefix of a delta stream, a
    /// maintained [`DeltaSession`] must answer bit-identically to
    /// building the analysis directly from the accumulated collection —
    /// verdict, world count, feasible-vector count, and every per-tuple
    /// confidence — and `analyze_incremental` / `_budgeted` /
    /// `_parallel` must agree at every thread count.
    #[test]
    fn incremental_parity_over_delta_streams(
        collection in collections(),
        stream in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..3, 0usize..DOMAIN, 0usize..2),
                0..4,
            ),
            1..5,
        ),
    ) {
        let dom = domain();
        let identity = collection.as_identity().expect("identity views");
        let n_sources = identity.sources.len();
        // Fix the universe at the full domain so no insert can overflow.
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();

        // One maintained session per thread count, replaying in lockstep.
        let mut sessions: Vec<DeltaSession> = THREADS
            .iter()
            .map(|_| DeltaSession::new(&collection, padding).expect("identity views"))
            .collect();
        let _ = analyze_incremental(&mut sessions[0]);

        for ops in &stream {
            let batch = DeltaBatch {
                deltas: ops
                    .iter()
                    .map(|&(src, val, insert)| {
                        let src = src % n_sources;
                        let insert = insert == 1;
                        let fact = pscds::relational::Fact::new(
                            format!("V{src}").as_str(),
                            [dom[val]],
                        );
                        SourceDelta {
                            source: format!("S{src}"),
                            delete: if insert { vec![] } else { vec![fact.clone()] },
                            insert: if insert { vec![fact] } else { vec![] },
                        }
                    })
                    .collect(),
            };
            for session in &mut sessions {
                session.apply_batch(&batch).expect("in-universe ops");
            }

            // Ground truth: analyze the accumulated state from scratch.
            let maintained = sessions[0].collection().clone();
            let scratch =
                ConfidenceAnalysis::analyze(&maintained, sessions[0].padding());

            let first = analyze_incremental_budgeted(&mut sessions[0], &unlimited)
                .expect("unlimited budget");
            prop_assert_eq!(first.world_count(), scratch.world_count());
            prop_assert_eq!(first.feasible_vectors(), scratch.feasible_vectors());
            prop_assert_eq!(first.is_consistent(), scratch.is_consistent());
            for (session, threads) in sessions.iter_mut().zip(THREADS).skip(1) {
                let config = ParallelConfig::with_threads(threads);
                let parallel =
                    analyze_incremental_parallel(session, &unlimited, &config)
                        .expect("unlimited budget");
                prop_assert_eq!(parallel.world_count(), first.world_count());
                prop_assert_eq!(parallel.feasible_vectors(), first.feasible_vectors());
                if scratch.is_consistent() {
                    for tuple in maintained.all_tuples() {
                        prop_assert_eq!(
                            parallel
                                .confidence_of_tuple(&maintained, &tuple)
                                .expect("consistent"),
                            scratch
                                .confidence_of_tuple(&maintained, &tuple)
                                .expect("consistent")
                        );
                    }
                }
            }
            if scratch.is_consistent() {
                for tuple in maintained.all_tuples() {
                    prop_assert_eq!(
                        first
                            .confidence_of_tuple(&maintained, &tuple)
                            .expect("consistent"),
                        scratch
                            .confidence_of_tuple(&maintained, &tuple)
                            .expect("consistent")
                    );
                }
            }
        }
    }

    /// The compiled circuit is a fourth engine route to the same
    /// semantics: `compile_circuit` once, then `analyze_circuit` (plus
    /// the conditional and top-k traversals) must be bit-identical to
    /// the uncompiled DFS and DP counters on every aggregate and every
    /// per-tuple confidence, with `_budgeted` and `_parallel` twins
    /// agreeing at every thread count.
    #[test]
    fn circuit_parity_across_engines_and_thread_counts(collection in collections()) {
        let identity = collection.as_identity().expect("identity views");
        let padding = DOMAIN as u64 - identity.all_tuples().len() as u64;
        let unlimited = Budget::unlimited();

        let serial = ConfidenceAnalysis::analyze(&identity, padding);
        let dp = ConfidenceAnalysis::analyze_dp(&identity, padding);
        let circuit = compile_circuit(
            SignatureAnalysis::new(&identity, padding),
            &unlimited,
            &CircuitConfig::default(),
        )
        .expect("unlimited budget");

        // One traversal of the compiled form reproduces both uncompiled
        // engines bit-for-bit.
        let traversed = analyze_circuit(&circuit);
        prop_assert_eq!(traversed.world_count(), serial.world_count());
        prop_assert_eq!(traversed.world_count(), dp.world_count());
        prop_assert_eq!(traversed.feasible_vectors(), serial.feasible_vectors());
        prop_assert_eq!(traversed.is_consistent(), serial.is_consistent());
        let budgeted = analyze_circuit_budgeted(&circuit, &unlimited).expect("unlimited budget");
        prop_assert_eq!(budgeted.world_count(), serial.world_count());
        prop_assert_eq!(budgeted.feasible_vectors(), serial.feasible_vectors());

        if serial.is_consistent() {
            for tuple in identity.all_tuples() {
                let reference = serial.confidence_of_tuple(&identity, &tuple).expect("consistent");
                prop_assert_eq!(
                    traversed.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                    reference.clone()
                );
                prop_assert_eq!(
                    dp.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                    reference.clone()
                );
                // Conditioning on the empty event is the plain confidence.
                prop_assert_eq!(
                    analyze_circuit_conditional(&circuit, &identity, &tuple, &[])
                        .expect("consistent"),
                    reference.clone()
                );
                prop_assert_eq!(
                    analyze_circuit_conditional_budgeted(
                        &circuit, &identity, &tuple, &[], &unlimited
                    )
                    .expect("consistent"),
                    reference
                );
            }
            if padding > 0 {
                prop_assert_eq!(
                    traversed.padding_confidence().expect("padding exists"),
                    serial.padding_confidence().expect("padding exists")
                );
            }
            // Top-k is a prefix of the full sorted table; ask for
            // everything and it *is* the full sorted table.
            let full = analyze_circuit_topk(&circuit, usize::MAX).expect("consistent");
            let mut expected: Vec<_> = identity
                .all_tuples()
                .into_iter()
                .map(|t| {
                    let conf = serial.confidence_of_tuple(&identity, &t).expect("consistent");
                    (t, conf)
                })
                .collect();
            expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            prop_assert_eq!(&full, &expected);
            prop_assert_eq!(
                analyze_circuit_topk_budgeted(&circuit, usize::MAX, &unlimited)
                    .expect("consistent"),
                full.clone()
            );

            for threads in THREADS {
                let config = ParallelConfig::with_threads(threads);
                let par = analyze_circuit_parallel(&circuit, &unlimited, &config)
                    .expect("unlimited budget");
                prop_assert_eq!(par.world_count(), serial.world_count());
                prop_assert_eq!(par.feasible_vectors(), serial.feasible_vectors());
                for tuple in identity.all_tuples() {
                    prop_assert_eq!(
                        par.confidence_of_tuple(&identity, &tuple).expect("consistent"),
                        serial.confidence_of_tuple(&identity, &tuple).expect("consistent")
                    );
                    prop_assert_eq!(
                        analyze_circuit_conditional_parallel(
                            &circuit, &identity, &tuple, &[], &unlimited, &config
                        )
                        .expect("consistent"),
                        analyze_circuit_conditional(&circuit, &identity, &tuple, &[])
                            .expect("consistent")
                    );
                }
                prop_assert_eq!(
                    analyze_circuit_topk_parallel(&circuit, usize::MAX, &unlimited, &config)
                        .expect("consistent"),
                    full.clone()
                );

                // The observed pair (compile_circuit_observed +
                // analyze_circuit_observed) is compile-then-traverse
                // plus telemetry: bit-identical results, session
                // enabled or disabled.
                for enabled in [false, true] {
                    let mut obs = if enabled {
                        ObsSession::in_memory()
                    } else {
                        ObsSession::disabled()
                    };
                    let recompiled = compile_circuit_observed(
                        SignatureAnalysis::new(&identity, padding),
                        &unlimited,
                        &CircuitConfig::default(),
                        &mut obs,
                    )
                    .expect("unlimited budget");
                    let watched = analyze_circuit_observed(
                        &recompiled, &unlimited, &config, &mut obs,
                    )
                    .expect("unlimited budget");
                    prop_assert_eq!(watched.world_count(), serial.world_count());
                    prop_assert_eq!(watched.feasible_vectors(), serial.feasible_vectors());
                }
            }
        }
    }

    #[test]
    fn consensus_parity_across_thread_counts(collection in collections()) {
        let padding = 2u64;
        let serial = maximal_consistent_subsets(&collection, padding).expect("small collection");
        for threads in THREADS {
            let config = ParallelConfig::with_threads(threads);
            let par = maximal_consistent_subsets_parallel(
                &collection,
                padding,
                &Budget::unlimited(),
                &config,
            )
            .expect("small collection");
            prop_assert_eq!(&par, &serial);
        }
    }
}

/// Generated from the lint registry: the L1 `engine-twins` rule
/// re-discovers every engine entry point in `crates/core/src` from
/// source, and this test fails if any non-exempt engine base is missing
/// from this file — so adding a new `check_*` / `analyze_*` / `count_*`
/// engine forces a parity case here before `pscds-lint` (and this suite)
/// goes green. Keeping the check inside the harness means the coverage
/// list can never drift from the registry that enforces it.
#[test]
fn parity_harness_covers_every_registered_engine() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = pscds_analysis::Workspace::load(root).expect("workspace sources load");
    let bases = pscds_analysis::lints::engine_twins::engine_bases(&ws);
    assert!(
        !bases.is_empty(),
        "engine discovery broke: the registry found no engine bases in crates/core/src"
    );
    let harness = std::fs::read_to_string(root.join("tests/engine_parity.rs"))
        .expect("harness source readable");
    for base in &bases {
        if base.allowed {
            continue;
        }
        assert!(
            harness.contains(&base.name),
            "engine `{}` ({}:{}) is registered by the engine-twins rule but has no parity \
             case in tests/engine_parity.rs",
            base.name,
            base.file,
            base.line
        );
    }
    // And the full rule must be clean on the live tree: twins declared,
    // parity references present.
    let violations = pscds_analysis::lints::engine_twins::run(&ws);
    assert!(
        violations.is_empty(),
        "engine-twins violations on the live tree:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
