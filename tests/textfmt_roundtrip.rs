//! Round-trip property: any generated collection survives
//! `format_collection ∘ parse_collection` unchanged — across random
//! identity collections, mirror fleets and climate scenarios (join views,
//! built-ins, quoted constants).

use pscds::core::textfmt::{format_collection, parse_collection};
use pscds::datagen::climate::{generate as climate, ClimateConfig};
use pscds::datagen::mirrors::{generate as mirrors, MirrorConfig};
use pscds::datagen::random_sources::{generate as random_sources, RandomIdentityConfig};

#[test]
fn random_identity_collections_round_trip() {
    for seed in 0..15u64 {
        for planted in [true, false] {
            let cfg = RandomIdentityConfig {
                n_sources: 4,
                domain_size: 7,
                extension_density: 0.5,
                planted,
                world_density: 0.5,
                bound_denominator: 5,
                seed,
            };
            let scenario = random_sources(&cfg).expect("valid config");
            let text = format_collection(&scenario.collection);
            let reparsed = parse_collection(&text).expect("formatter output must parse");
            assert_eq!(
                reparsed, scenario.collection,
                "seed {seed} planted {planted}\n{text}"
            );
        }
    }
}

#[test]
fn mirror_fleets_round_trip() {
    for seed in 0..10u64 {
        let cfg = MirrorConfig {
            n_objects: 6,
            n_obsolete: 3,
            n_mirrors: 4,
            staleness: 0.3,
            obsolescence: 0.4,
            seed,
        };
        let scenario = mirrors(&cfg).expect("valid config");
        let text = format_collection(&scenario.collection);
        let reparsed = parse_collection(&text).expect("formatter output must parse");
        assert_eq!(reparsed, scenario.collection, "seed {seed}");
    }
}

#[test]
fn climate_scenarios_round_trip() {
    // Join views with symbolic country constants: the formatter must quote
    // or case them so they parse back as constants, not variables.
    let cfg = ClimateConfig {
        countries: vec!["Canada".into(), "US".into()],
        stations_per_country: 2,
        first_year: 1900,
        years: 2,
        months: 2,
        dropout: 0.2,
        corruption: 0.1,
        seed: 5,
    };
    let scenario = climate(&cfg).expect("valid config");
    let text = format_collection(&scenario.collection);
    let reparsed = parse_collection(&text).expect("formatter output must parse");
    assert_eq!(reparsed, scenario.collection);
}
