//! End-to-end integration test: every result of the paper exercised on
//! its own Example 5.1, across crate boundaries.

use pscds::core::confidence::closed_form::{derived_confidence, Example51Fact};
use pscds::core::confidence::{ConfidenceAnalysis, LinearSystem, PossibleWorlds};
use pscds::core::consistency::{
    decide_identity, find_witness_bounded, lemma31_bound, shrink_witness,
};
use pscds::core::measures::in_poss;
use pscds::core::paper::{example_5_1, example_5_1_domain};
use pscds::core::templates::verify_theorem_4_1;
use pscds::numeric::{Rational, UBig};
use pscds::relational::parser::parse_rule;
use pscds::relational::{Fact, Value};

#[test]
fn section_3_consistency() {
    let collection = example_5_1();
    // Identity solver.
    let identity = collection.as_identity().expect("identity views");
    let verdict = decide_identity(&identity, 0);
    assert!(verdict.is_consistent());
    // Exhaustive bounded search, witness within the Lemma 3.1 bound.
    let witness = find_witness_bounded(&collection, &example_5_1_domain(1), None)
        .expect("evaluates")
        .expect("consistent");
    assert!(witness.len() <= lemma31_bound(&collection));
    assert!(in_poss(&witness, &collection).expect("evaluates"));
}

#[test]
fn lemma_3_1_shrinking_all_worlds() {
    let collection = example_5_1();
    let worlds = PossibleWorlds::enumerate(&collection, &example_5_1_domain(2)).expect("small");
    for g in worlds.worlds() {
        let d = shrink_witness(&collection, &g).expect("evaluates");
        assert!(d.is_subset_of(&g));
        assert!(in_poss(&d, &collection).expect("evaluates"));
        assert!(d.len() <= lemma31_bound(&collection));
    }
}

#[test]
fn section_4_templates() {
    for m in 0..=2usize {
        let report = verify_theorem_4_1(&example_5_1(), &example_5_1_domain(m)).expect("small");
        assert!(report.holds, "m = {m}");
        assert_eq!(report.poss_count, 2 * m + 5);
    }
}

#[test]
fn section_5_confidences_three_engines() {
    let collection = example_5_1();
    let identity = collection.as_identity().expect("identity views");
    for m in 0..=3usize {
        let domain = example_5_1_domain(m);
        let worlds = PossibleWorlds::enumerate(&collection, &domain).expect("small");
        let gamma = LinearSystem::from_identity(&identity, &domain).expect("valid");
        let analysis = ConfidenceAnalysis::analyze(&identity, m as u64);
        assert_eq!(
            analysis.world_count(),
            &UBig::from(worlds.count() as u64),
            "m = {m}"
        );
        assert_eq!(
            gamma.count_solutions().expect("small") as usize,
            worlds.count()
        );
        for sym in ["a", "b", "c"] {
            let fact = Fact::new("R", [Value::sym(sym)]);
            let w = worlds.fact_confidence(&fact).expect("consistent");
            let g = gamma
                .confidence(gamma.var_of(&fact).expect("in domain"))
                .expect("consistent");
            let s = analysis
                .confidence_of_tuple(&identity, &[Value::sym(sym)])
                .expect("consistent");
            assert_eq!(w, g, "{sym} at m={m}");
            assert_eq!(w, s, "{sym} at m={m}");
        }
    }
}

#[test]
fn closed_forms_at_scale() {
    let identity = example_5_1().as_identity().expect("identity views");
    for m in [100u64, 10_000, 1_000_000] {
        let analysis = ConfidenceAnalysis::analyze(&identity, m);
        assert_eq!(
            analysis
                .confidence_of_tuple(&identity, &[Value::sym("b")])
                .expect("consistent"),
            derived_confidence(Example51Fact::B, m)
        );
        assert_eq!(
            analysis.padding_confidence().expect("padding"),
            derived_confidence(Example51Fact::D, m)
        );
    }
}

#[test]
fn answers_and_confidence_cohere() {
    let collection = example_5_1();
    let worlds = PossibleWorlds::enumerate(&collection, &example_5_1_domain(1)).expect("small");
    let q = parse_rule("Ans(x) <- R(x)").expect("parses");
    let certain = worlds.certain_answer_cq(&q).expect("consistent");
    let possible = worlds.possible_answer_cq(&q).expect("consistent");
    assert!(certain.is_subset(&possible));
    // Certain ⇔ confidence 1; possible ⇔ confidence > 0.
    for fact in &possible {
        let base = Fact::new("R", fact.args.clone());
        let conf = worlds.fact_confidence(&base).expect("consistent");
        assert!(conf > Rational::zero());
        assert_eq!(certain.contains(fact), conf == Rational::one());
    }
}
